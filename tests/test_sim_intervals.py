"""Tests for IntervalSet, including the preemption finish_time query."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import IntervalSet


class TestNormalization:
    def test_empty(self):
        s = IntervalSet.empty()
        assert len(s) == 0
        assert s.total == 0.0
        assert s.is_empty()

    def test_merge_overlapping(self):
        s = IntervalSet.from_pairs([(0.0, 2.0), (1.0, 3.0)])
        assert list(s) == [(0.0, 3.0)]

    def test_merge_touching(self):
        s = IntervalSet.from_pairs([(0.0, 1.0), (1.0, 2.0)])
        assert list(s) == [(0.0, 2.0)]

    def test_sorts(self):
        s = IntervalSet.from_pairs([(5.0, 6.0), (1.0, 2.0)])
        assert list(s) == [(1.0, 2.0), (5.0, 6.0)]

    def test_drops_empty_intervals(self):
        s = IntervalSet.from_pairs([(1.0, 1.0), (2.0, 3.0)])
        assert list(s) == [(2.0, 3.0)]

    def test_from_events(self):
        s = IntervalSet.from_events([0.0, 10.0], [1.0, 0.5])
        assert list(s) == [(0.0, 1.0), (10.0, 10.5)]

    def test_from_events_negative_duration(self):
        with pytest.raises(ValueError):
            IntervalSet.from_events([0.0], [-1.0])


class TestQueries:
    def setup_method(self):
        self.s = IntervalSet.from_pairs([(1.0, 2.0), (4.0, 6.0)])

    def test_total(self):
        assert self.s.total == pytest.approx(3.0)

    def test_contains_point(self):
        assert self.s.contains_point(1.5)
        assert not self.s.contains_point(2.0)  # half-open
        assert self.s.contains_point(4.0)
        assert not self.s.contains_point(0.0)
        assert not self.s.contains_point(3.0)

    def test_overlap(self):
        assert self.s.overlap(0.0, 10.0) == pytest.approx(3.0)
        assert self.s.overlap(1.5, 4.5) == pytest.approx(1.0)
        assert self.s.overlap(2.0, 4.0) == 0.0
        assert self.s.overlap(5.0, 5.0) == 0.0

    def test_clip(self):
        assert list(self.s.clip(1.5, 5.0)) == [(1.5, 2.0), (4.0, 5.0)]
        assert self.s.clip(2.0, 4.0).is_empty()

    def test_union(self):
        other = IntervalSet.from_pairs([(1.5, 4.5)])
        assert list(self.s.union(other)) == [(1.0, 6.0)]

    def test_complement_within(self):
        free = self.s.complement_within(0.0, 7.0)
        assert list(free) == [(0.0, 1.0), (2.0, 4.0), (6.0, 7.0)]

    def test_complement_of_empty(self):
        free = IntervalSet.empty().complement_within(2.0, 3.0)
        assert list(free) == [(2.0, 3.0)]

    def test_equality_and_hash(self):
        again = IntervalSet.from_pairs([(1.0, 2.0), (4.0, 6.0)])
        assert self.s == again
        assert hash(self.s) == hash(again)


class TestFinishTime:
    def test_no_interference(self):
        s = IntervalSet.empty()
        assert s.finish_time(1.0, 2.5) == pytest.approx(3.5)

    def test_zero_work(self):
        s = IntervalSet.from_pairs([(0.0, 10.0)])
        assert s.finish_time(5.0, 0.0) == 5.0

    def test_work_pushed_past_busy_interval(self):
        s = IntervalSet.from_pairs([(2.0, 3.0)])
        # 2s of work from t=1: 1s before the busy interval, then wait 1s, 1s after
        assert s.finish_time(1.0, 2.0) == pytest.approx(4.0)

    def test_start_inside_busy_interval(self):
        s = IntervalSet.from_pairs([(0.0, 5.0)])
        assert s.finish_time(2.0, 1.0) == pytest.approx(6.0)

    def test_multiple_interruptions(self):
        s = IntervalSet.from_pairs([(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)])
        # 3.5s of work from 0: gaps [0,1),[2,3),[4,5),[6,...)
        assert s.finish_time(0.0, 3.5) == pytest.approx(6.5)

    def test_work_fits_before_first_interval(self):
        s = IntervalSet.from_pairs([(10.0, 20.0)])
        assert s.finish_time(0.0, 5.0) == pytest.approx(5.0)

    def test_start_after_all_intervals(self):
        s = IntervalSet.from_pairs([(0.0, 1.0)])
        assert s.finish_time(2.0, 3.0) == pytest.approx(5.0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet.empty().finish_time(0.0, -1.0)


# -- property-based -----------------------------------------------------------

interval_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=5.0),
    ),
    max_size=12,
).map(lambda pairs: [(s, s + d) for s, d in pairs])


@given(pairs=interval_lists)
@settings(max_examples=100)
def test_normalized_invariants(pairs):
    s = IntervalSet.from_pairs(pairs)
    items = list(s)
    # disjoint, sorted, non-empty intervals
    for (a1, b1), (a2, b2) in zip(items, items[1:]):
        assert b1 < a2
    for a, b in items:
        assert b > a
    # total measure never exceeds naive sum and is non-negative
    assert 0.0 <= s.total <= sum(b - a for a, b in pairs) + 1e-9


@given(pairs=interval_lists, start=st.floats(min_value=0.0, max_value=60.0),
       work=st.floats(min_value=0.0, max_value=20.0))
@settings(max_examples=100)
def test_finish_time_consistency(pairs, start, work):
    """finish_time(t0, W) == t_end such that free time in [t0, t_end) == W."""
    s = IntervalSet.from_pairs(pairs)
    t_end = s.finish_time(start, work)
    assert t_end >= start + work - 1e-9  # busy time only adds delay
    free = (t_end - start) - s.overlap(start, t_end)
    assert free == pytest.approx(work, rel=1e-9, abs=1e-9)


@given(pairs=interval_lists, a=st.floats(min_value=0.0, max_value=60.0),
       width=st.floats(min_value=0.0, max_value=20.0))
@settings(max_examples=100)
def test_complement_partitions_window(pairs, a, width):
    b = a + width
    s = IntervalSet.from_pairs(pairs)
    inside = s.overlap(a, b)
    free = s.complement_within(a, b).total
    assert inside + free == pytest.approx(max(0.0, b - a), rel=1e-9, abs=1e-9)
