"""Integration tests: the paper's qualitative findings must hold end-to-end.

Each test runs a reduced-scale version of one of the paper's experiments
and asserts the *direction* of the result (who wins, roughly by how much),
mirroring the evaluation narrative:

* Table 2 magnitudes (Section 5.1),
* socket-crossing and SMT jumps in syncbench (Figure 1),
* BabelStream scaling (Figure 2),
* variability grows near saturation (Figure 3),
* pinning shrinks variability dramatically (Figure 4, Section 5.2),
* ST beats MT for stability (Figure 5, Section 5.3),
* cross-NUMA frequency dips on Vera, steadier Dardel (Fig 6/7, Sec 5.4).

These are slower than unit tests (seconds each) but far below full scale.
"""

import numpy as np
import pytest

from repro.harness import ExperimentConfig, Runner
from repro.harness import experiments
from repro.stats import compare_samples, summarize
from repro.units import ms


def run_matrix(platform, benchmark, threads, *, places="cores", proc_bind="close",
               schedule="dynamic", chunk=1, runs=3, seed=202, **params):
    cfg = ExperimentConfig(
        platform=platform,
        benchmark=benchmark,
        num_threads=threads,
        places=places if proc_bind != "false" else None,
        proc_bind=proc_bind,
        schedule=schedule,
        schedule_chunk=chunk,
        runs=runs,
        seed=seed,
        benchmark_params=params,
    )
    result = Runner(cfg).run()
    return result


class TestTable2Magnitudes:
    """Absolute schedbench dynamic_1 times land near the paper's values."""

    def test_dardel_4_threads(self):
        m = run_matrix("dardel", "schedbench", 4, runs=2,
                       outer_reps=15).runs_matrix("dynamic_1")
        assert m.mean() == pytest.approx(ms(124.0), rel=0.02)

    def test_dardel_254_threads(self):
        m = run_matrix("dardel", "schedbench", 254, places="threads", runs=1,
                       outer_reps=10, seed=11).runs_matrix("dynamic_1")
        # paper: ~154.2 ms (plus occasional +9% derated runs)
        assert ms(150) < m.mean() < ms(175)

    def test_vera_4_threads(self):
        m = run_matrix("vera", "schedbench", 4, runs=2,
                       outer_reps=15).runs_matrix("dynamic_1")
        assert m.mean() == pytest.approx(ms(136.5), rel=0.02)

    def test_vera_30_threads(self):
        m = run_matrix("vera", "schedbench", 30, runs=2,
                       outer_reps=15).runs_matrix("dynamic_1")
        assert m.mean() == pytest.approx(ms(164.7), rel=0.03)

    def test_ordering_matches_paper(self):
        """dardel@4 < vera@4 < dardel@254 < vera@30 (Table 2)."""
        vals = {}
        for plat, n, places in (("dardel", 4, "cores"), ("vera", 4, "cores"),
                                ("dardel", 254, "threads"), ("vera", 30, "cores")):
            m = run_matrix(plat, "schedbench", n, places=places, runs=1,
                           outer_reps=8, seed=77).runs_matrix("dynamic_1")
            vals[(plat, n)] = float(np.median(m))
        assert (
            vals[("dardel", 4)]
            < vals[("vera", 4)]
            < vals[("dardel", 254)]
            < vals[("vera", 30)]
        )


class TestFigure1SyncbenchScaling:
    def test_overhead_grows_with_threads_vera(self):
        """EPCC's reported reduction overhead grows with the thread count."""
        means = []
        for n in (2, 8, 30):
            m = run_matrix("vera", "syncbench", n, runs=2, outer_reps=20,
                           constructs=("reduction",)
                           ).runs_matrix("reduction.overhead")
            means.append(float(m.mean()))
        assert means[0] < means[1] < means[2]

    def test_socket_crossing_jump_vera(self):
        """Reduction overhead jumps when the second socket is used."""
        over = {}
        for n in (16, 30):
            m = run_matrix("vera", "syncbench", n, runs=2, outer_reps=20,
                           seed=31, constructs=("reduction",)
                           ).runs_matrix("reduction.overhead")
            over[n] = float(m.mean())
        assert over[30] > 1.4 * over[16]

    def test_smt_jump_dardel(self):
        """Using SMT siblings (254 threads) raises reduction cost over 128."""
        from repro.types import SyncConstruct
        from repro.omp import OMPEnvironment, OpenMPRuntime
        from repro.platform import dardel
        from repro.types import ProcBind

        plat = dardel()
        costs = {}
        for n, places in ((128, "cores"), (254, "threads")):
            env = OMPEnvironment(num_threads=n, places=places,
                                 proc_bind=ProcBind.CLOSE)
            rt = OpenMPRuntime(plat, env)
            team = rt.resolve_bound_team()
            costs[n] = rt.sync_cost.construct_cost(SyncConstruct.REDUCTION, team)
        assert costs[254] > 1.5 * costs[128]


class TestFigure2StreamScaling:
    def test_time_decreases_with_threads(self):
        means = []
        for n in (2, 8, 30):
            m = run_matrix("vera", "babelstream", n, runs=1, seed=5,
                           num_times=6).runs_matrix("triad")
            means.append(m.mean())
        assert means[0] > means[1] > means[2]


class TestFigure3SaturationVariability:
    def test_syncbench_variability_grows_near_saturation_dardel(self):
        """Normalized max spread larger at 254 threads than at 16."""
        worst = {}
        for n, places in ((16, "cores"), (254, "threads")):
            m = run_matrix("dardel", "syncbench", n, places=places, runs=3,
                           outer_reps=30, seed=17,
                           constructs=("reduction",)).runs_matrix("reduction")
            worst[n] = max(summarize(row).norm_max for row in m)
        assert worst[254] > worst[16]


class TestFigure4Pinning:
    def test_pinning_reduces_syncbench_spread(self):
        """Unpinned reduction@128 spreads orders of magnitude; pinned is tight."""
        pinned = run_matrix("dardel", "syncbench", 128, runs=3, outer_reps=30,
                            seed=4, constructs=("reduction",)
                            ).runs_matrix("reduction")
        unpinned = run_matrix("dardel", "syncbench", 128, proc_bind="false",
                              runs=3, outer_reps=30, seed=4,
                              constructs=("reduction",)).runs_matrix("reduction")
        pinned_ratio = pinned.max() / pinned.min()
        unpinned_ratio = unpinned.max() / unpinned.min()
        assert unpinned_ratio > 10 * pinned_ratio
        assert unpinned_ratio > 50  # paper: >3 orders of magnitude at full scale

    def test_pinning_reduces_stream_spread(self):
        pinned = run_matrix("dardel", "babelstream", 128, runs=3, seed=4,
                            num_times=15).runs_matrix("triad")
        unpinned = run_matrix("dardel", "babelstream", 128, proc_bind="false",
                              runs=3, seed=4, num_times=15).runs_matrix("triad")
        assert unpinned.max() / unpinned.min() > 1.5 * (pinned.max() / pinned.min())

    def test_distributions_statistically_different(self):
        pinned = run_matrix("dardel", "syncbench", 128, runs=2, outer_reps=25,
                            seed=9, constructs=("reduction",)
                            ).runs_matrix("reduction").ravel()
        unpinned = run_matrix("dardel", "syncbench", 128, proc_bind="false",
                              runs=2, outer_reps=25, seed=9,
                              constructs=("reduction",)
                              ).runs_matrix("reduction").ravel()
        r = compare_samples(unpinned, pinned)
        assert r.mean_ratio > 1.0
        assert r.variance_ratio > 1.0


class TestFigure5SMT:
    def test_mt_raises_schedbench_variability(self):
        st = run_matrix("dardel", "schedbench", 128, places="cores", runs=2,
                        outer_reps=20, seed=12).runs_matrix("dynamic_1")
        mt = run_matrix("dardel", "schedbench", 128, places="threads", runs=2,
                        outer_reps=20, seed=12).runs_matrix("dynamic_1")
        st_cv = np.mean([summarize(r).cv for r in st])
        mt_cv = np.mean([summarize(r).cv for r in mt])
        assert mt_cv > 2 * st_cv

    def test_mt_raises_syncbench_cv(self):
        st = run_matrix("dardel", "syncbench", 32, places="cores", runs=2,
                        outer_reps=25, seed=13,
                        constructs=("reduction",)).runs_matrix("reduction")
        mt = run_matrix("dardel", "syncbench", 32, places="threads", runs=2,
                        outer_reps=25, seed=13,
                        constructs=("reduction",)).runs_matrix("reduction")
        st_cv = np.mean([summarize(r).cv for r in st])
        mt_cv = np.mean([summarize(r).cv for r in mt])
        assert mt_cv > 1.5 * st_cv


class TestFigures6And7Frequency:
    def test_cross_numa_dips_on_vera(self):
        art = experiments.figure6(runs=2, outer_reps=12, seed=3)
        one = art.data["one-numa (cpus 0-15)"]
        two = art.data["two-numa (cpus 0-7,16-23)"]
        assert two["dip_occupancy"] > 5 * max(one["dip_occupancy"], 1e-6)
        assert two["pooled_cv"] > one["pooled_cv"]
        assert np.mean(two["run_means"]) > np.mean(one["run_means"])

    def test_dardel_steadier_than_vera(self):
        """Sec 5.4: Dardel exhibits less frequency variation."""
        from repro.platform import dardel, vera

        assert (
            dardel().freq_spec.dips.cross_numa_rate
            < vera().freq_spec.dips.cross_numa_rate
        )


class TestArtifactRendering:
    def test_table2_quick_renders(self):
        art = experiments.table2(runs=2, outer_reps=6, seed=1)
        text = art.render()
        assert "dardel@4" in text and "vera@30" in text
        assert art.data["run_means"]["dardel@4"].shape == (2,)

    def test_figure1_quick_renders(self):
        art = experiments.figure1(
            runs=1, outer_reps=5, seed=1,
            dardel_threads=(4, 128), vera_threads=(2, 30),
        )
        assert "dardel" in art.render()
        assert len(art.data["vera"]["threads"]) == 2
