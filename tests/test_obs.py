"""Tests for the observability layer: tracing, metrics, OBS001, telemetry.

The contract under test (docs/observability.md):

* tracing off → results byte-identical to a tracer-free build, at one
  boolean test of overhead per episode;
* tracing on → the trace is a pure function of (config, seed): identical
  bytes whether the real execution was serial, pooled, or cache-replayed;
* harness metrics never leak into result artifacts.
"""

import json
import textwrap

import numpy as np
import pytest

from repro.analysis import lint_source
from repro.errors import ReproError
from repro.harness.config import ExperimentConfig
from repro.harness.parallel import Sweep
from repro.harness.report import render_telemetry
from repro.harness.results import RunRecord
from repro.harness.runner import Runner
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    SpanTracer,
    Tracer,
    validate_chrome,
)
from repro.obs.annotate import build_trace, write_trace
from repro.sim.clock import Clock
from repro.sim.engine import Engine

QUICK = {"outer_reps": 4}


def _cfg(**overrides) -> ExperimentConfig:
    base = dict(
        platform="toy", benchmark="syncbench", num_threads=4,
        runs=2, seed=17, benchmark_params=QUICK,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _task_cfg(**overrides) -> ExperimentConfig:
    base = dict(
        platform="toy", benchmark="taskbench", num_threads=4,
        runs=2, seed=7, benchmark_params={"outer_reps": 3},
    )
    base.update(overrides)
    return ExperimentConfig(**base)


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------


class TestNullTracer:
    def test_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        # every emission is a no-op
        NULL_TRACER.begin_process(1, "x")
        NULL_TRACER.begin_run(0)
        NULL_TRACER.thread_name(0, "t0")
        NULL_TRACER.span(0, "s", 0.0, 1.0)
        NULL_TRACER.instant(0, "i", 0.0)
        NULL_TRACER.counter("c", 0.0, 1.0)

    def test_satisfies_protocol(self):
        assert isinstance(NULL_TRACER, Tracer)
        assert isinstance(SpanTracer(), Tracer)

    def test_stateless_singleton(self):
        assert not hasattr(NullTracer(), "__dict__")


class TestSpanTracer:
    def test_records_and_counts(self):
        tr = SpanTracer()
        tr.begin_process(0, "cfg")
        tr.span(1, "work", 0.0, 1e-6, cat="sim", args={"k": 1})
        tr.instant(0, "mark", 2e-6)
        tr.counter("depth", 3e-6, 4)
        assert tr.n_events == 3
        assert tr.span_names() == {"work"}

    def test_negative_span_rejected(self):
        tr = SpanTracer()
        with pytest.raises(ReproError):
            tr.span(0, "bad", 2.0, 1.0)

    def test_begin_run_lays_runs_back_to_back(self):
        tr = SpanTracer()
        tr.begin_process(0, "cfg")
        tr.begin_run(0)
        tr.span(0, "a", 0.0, 1e-6)
        tr.begin_run(1)
        tr.span(0, "a", 0.0, 1e-6)
        events = tr.to_chrome()["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 2
        # run 1's span starts strictly after run 0's span ends
        assert spans[1]["ts"] > spans[0]["ts"] + spans[0]["dur"]

    def test_thread_names_first_writer_wins(self):
        tr = SpanTracer()
        tr.begin_process(0, "cfg")
        tr.thread_name(1, "thread 1 (cpu 0)")
        tr.thread_name(1, "thread 1 (cpu 5)")
        meta = [
            e for e in tr.to_chrome()["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert meta[0]["args"]["name"] == "thread 1 (cpu 0)"

    def test_write_is_deterministic_bytes(self, tmp_path):
        def build():
            tr = SpanTracer()
            tr.begin_process(0, "cfg")
            tr.span(2, "b", 0.0, 2e-6)
            tr.span(1, "a", 0.0, 1e-6, args={"x": 1})
            tr.counter("c", 1e-6, 2)
            return tr

        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        build().write(p1)
        build().write(p2)
        assert p1.read_bytes() == p2.read_bytes()

    def test_chrome_payload_validates(self):
        tr = SpanTracer()
        tr.begin_process(0, "cfg")
        tr.thread_name(0, "t0")
        tr.span(0, "s", 0.0, 1e-6)
        tr.instant(0, "i", 0.0, args={"k": "v"})
        tr.counter("c", 0.0, 1.0)
        n = validate_chrome(tr.to_chrome())
        assert n == tr.n_events + 2  # + process_name and thread_name metadata


class TestValidateChrome:
    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            validate_chrome({})
        with pytest.raises(ReproError):
            validate_chrome({"traceEvents": []})

    def test_rejects_missing_keys(self):
        with pytest.raises(ReproError, match="lacks"):
            validate_chrome({"traceEvents": [{"ph": "X", "name": "x"}]})

    def test_rejects_bad_phase_and_dur(self):
        ok = {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0, "dur": 1}
        assert validate_chrome({"traceEvents": [ok]}) == 1
        with pytest.raises(ReproError, match="phase"):
            validate_chrome({"traceEvents": [{**ok, "ph": "Z"}]})
        with pytest.raises(ReproError, match="dur"):
            validate_chrome({"traceEvents": [{**ok, "dur": -1}]})

    def test_rejects_valueless_counter(self):
        bad = {"ph": "C", "name": "c", "pid": 0, "tid": 0, "ts": 0}
        with pytest.raises(ReproError, match="value"):
            validate_chrome({"traceEvents": [bad]})


class TestEngineTracing:
    def test_engine_emits_one_run_span(self):
        tr = SpanTracer()
        tr.begin_process(0, "engine")
        eng = Engine(clock=Clock(), tracer=tr)
        for i in range(5):
            eng.schedule_at(float(i), lambda: None)
        eng.run()
        assert tr.span_names() == {"engine.run"}
        assert tr.n_events == 1  # one coarse span per run(), never per event

    def test_default_engine_uses_null_tracer(self):
        assert Engine().tracer is NULL_TRACER


# ---------------------------------------------------------------------------
# Zero-overhead / determinism contract
# ---------------------------------------------------------------------------


class TestTracingDeterminism:
    def test_traced_results_equal_untraced(self):
        for cfg in (_cfg(), _task_cfg()):
            tr = SpanTracer()
            tr.begin_process(0, cfg.display_label)
            traced = Runner(cfg, tracer=tr).run()
            plain = Runner(cfg).run()
            assert tr.n_events > 0
            for a, b in zip(plain.records, traced.records):
                assert a.labels() == b.labels()
                for k in a.series:
                    assert np.array_equal(a.series[k], b.series[k]), k

    def test_annotation_pass_is_reproducible(self, tmp_path):
        cfgs = [_cfg(runs=1)]
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        n1 = write_trace(cfgs, p1)
        n2 = write_trace(cfgs, p2)
        assert n1 == n2 > 0
        assert p1.read_bytes() == p2.read_bytes()

    def test_trace_mode_independence(self, tmp_path):
        """Serial, pooled, and cache-replayed executions annotate to the
        identical trace bytes (the --trace contract)."""
        from repro.harness.cache import ResultCache

        cfgs = [_cfg(runs=2), _cfg(runs=2, num_threads=2)]
        cache = ResultCache(tmp_path / "cache")

        Sweep(jobs=1).run(cfgs)
        p_serial = tmp_path / "serial.json"
        write_trace(cfgs, p_serial)

        Sweep(jobs=2, cache=cache).run(cfgs)
        p_pool = tmp_path / "pool.json"
        write_trace(cfgs, p_pool)

        Sweep(jobs=1, cache=cache).run(cfgs)  # pure replay
        assert cache.hits == len(cfgs)
        p_cached = tmp_path / "cached.json"
        write_trace(cfgs, p_cached)

        assert p_serial.read_bytes() == p_pool.read_bytes() == p_cached.read_bytes()

    def test_trace_covers_the_span_taxonomy(self):
        tracer = build_trace([_task_cfg(runs=1)])
        names = tracer.span_names()
        assert "parallel.fork" in names       # region fork
        assert "parallel.join" in names       # join barrier (top span)
        assert "barrier.gather" in names      # per-round decomposition
        assert "engine.run" in names          # engine coarse span
        kinds = {"task.body", "deque.pop", "steal", "idle.backoff"}
        assert kinds & names                  # scheduler internals
        # OS-noise tracks exist (tick spans on CPU_TRACK_BASE + cpu tids)
        from repro.obs.tracer import CPU_TRACK_BASE

        events = tracer.to_chrome()["traceEvents"]
        assert any(
            e["ph"] == "X" and e["tid"] >= CPU_TRACK_BASE for e in events
        )

    def test_processes_follow_config_order(self):
        cfgs = [_cfg(runs=1), _cfg(runs=1, num_threads=2)]
        events = build_trace(cfgs).to_chrome()["traceEvents"]
        procs = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert procs == {
            0: cfgs[0].display_label, 1: cfgs[1].display_label,
        }


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(2)
        assert reg.counter("hits").value == 3
        with pytest.raises(ReproError):
            c.inc(-1)

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        reg.gauge("workers").set(4)
        h = reg.histogram("wall")
        h.observe(1.0)
        h.observe(3.0)
        assert reg.gauge("workers").value == 4.0
        assert (h.count, h.total, h.minimum, h.maximum, h.mean) == (2, 4.0, 1.0, 3.0, 2.0)

    def test_labels_separate_instruments(self):
        reg = MetricsRegistry()
        reg.counter("n", axis="threads").inc()
        reg.counter("n", axis="runtime").inc(5)
        assert reg.counter("n", axis="threads").value == 1
        assert reg.counter("n", axis="runtime").value == 5
        assert len(reg) == 2

    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("hits", cache="disk").inc(7)
        reg.gauge("workers").set(3)
        reg.histogram("wall", phase="run").observe(0.5)
        reg.histogram("empty")  # created but never observed
        data = json.loads(json.dumps(reg.to_dict()))
        back = MetricsRegistry.from_dict(data)
        assert back.to_dict() == reg.to_dict()
        assert back.counter("hits", cache="disk").value == 7
        h = back.histogram("wall", phase="run")
        assert (h.count, h.total) == (1, 0.5)

    def test_empty_histogram_serializes_null_bounds(self):
        reg = MetricsRegistry()
        reg.histogram("empty")
        entry = reg.to_dict()["histograms"][0]
        assert entry["min"] is None and entry["max"] is None


# ---------------------------------------------------------------------------
# Harness wiring: worker stamping, sweep metrics, telemetry rendering
# ---------------------------------------------------------------------------


class TestWorkerStamping:
    def test_serial_sweep_stamps_main(self):
        res = Sweep(jobs=1).run([_cfg(runs=2)])[0]
        for rec in res.records:
            assert rec.worker_id == "main"
            assert rec.wall_seconds is not None and rec.wall_seconds >= 0

    def test_pool_sweep_stamps_worker_pids(self):
        res = Sweep(jobs=2).run([_cfg(runs=2)])[0]
        for rec in res.records:
            assert rec.worker_id is not None and rec.worker_id.startswith("pid")
            assert rec.wall_seconds is not None and rec.wall_seconds >= 0

    def test_stamps_excluded_from_dict(self):
        from repro.harness.results import ExperimentResult

        cfg = _cfg(runs=1)
        plain = ExperimentResult(
            config=cfg,
            records=(RunRecord(run_index=0, series={"a": np.arange(3.0)}),),
        )
        stamped = ExperimentResult(
            config=cfg,
            records=(
                RunRecord(
                    run_index=0, series={"a": np.arange(3.0)},
                    worker_id="pid42", wall_seconds=1.5,
                ),
            ),
        )
        assert plain.to_dict() == stamped.to_dict()
        res_plain = Sweep(jobs=1).run([_cfg(runs=1)])[0]
        direct = Runner(_cfg(runs=1)).run()
        assert res_plain.records[0].worker_id == "main"
        assert direct.records[0].worker_id is None
        assert res_plain.to_dict() == direct.to_dict()
        assert "worker_id" not in json.dumps(res_plain.to_dict())


class TestSweepMetrics:
    def test_counts_and_walls(self, tmp_path):
        from repro.harness.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        metrics = MetricsRegistry()
        cfgs = [_cfg(runs=2), _cfg(runs=2, num_threads=2)]
        Sweep(jobs=1, cache=cache, metrics=metrics).run(cfgs)
        assert metrics.counter("configs_total").value == 2
        assert metrics.counter("configs_simulated").value == 2
        assert metrics.counter("cache_misses").value == 2
        assert metrics.counter("cache_stores").value == 2
        assert metrics.histogram("run_wall_seconds").count == 4
        assert metrics.histogram("config_wall_seconds").count == 2
        assert metrics.gauge("pool_workers").value == 1

        replay = MetricsRegistry()
        Sweep(jobs=1, cache=cache, metrics=replay).run(cfgs)
        assert replay.counter("cache_hits").value == 2
        assert replay.counter("configs_cached").value == 2
        assert replay.counter("configs_simulated").value == 0

    def test_pool_utilization_recorded(self):
        metrics = MetricsRegistry()
        Sweep(jobs=2, metrics=metrics).run([_cfg(runs=2)])
        assert 0.0 <= metrics.gauge("pool_utilization").value <= 1.0
        assert metrics.gauge("pool_workers_used").value >= 1
        assert metrics.histogram("queue_wait_seconds").count == 2

    def test_study_axis_walls(self):
        from repro.harness.study import Study

        metrics = MetricsRegistry()
        study = Study(_cfg(runs=1)).grid(num_threads=[2, 4])
        study.run(jobs=1, metrics=metrics)
        h2 = metrics.histogram("axis_wall_seconds", axis="num_threads", value=2)
        h4 = metrics.histogram("axis_wall_seconds", axis="num_threads", value=4)
        assert h2.count == 1 and h4.count == 1

    def test_metrics_do_not_change_results(self):
        cfgs = [_cfg(runs=2)]
        with_metrics = Sweep(jobs=1, metrics=MetricsRegistry()).run(cfgs)[0]
        without = Sweep(jobs=1).run(cfgs)[0]
        assert with_metrics.to_dict() == without.to_dict()


class TestRenderTelemetry:
    def test_renders_sections(self):
        reg = MetricsRegistry()
        reg.counter("cache_hits").inc(3)
        reg.gauge("pool_workers").set(4)
        reg.histogram("run_wall_seconds", worker="main").observe(0.25)
        text = render_telemetry(reg)
        assert "harness telemetry" in text
        assert "cache_hits" in text
        assert "run_wall_seconds{worker=main}" in text

    def test_empty_registry(self):
        assert "no metrics" in render_telemetry(MetricsRegistry())


# ---------------------------------------------------------------------------
# Bench trajectory (append-only history)
# ---------------------------------------------------------------------------


class TestBenchTrajectory:
    REPORT1 = {
        "schema": 1, "quick": True,
        "engine": {"callback_events_per_sec": 100},
        "figure8_smoke": {"events_per_sec": 10},
    }
    REPORT2 = {
        "schema": 1, "quick": True,
        "engine": {"callback_events_per_sec": 120},
        "figure8_smoke": {"events_per_sec": 12},
    }

    def test_history_is_append_only(self, tmp_path):
        from repro.sim.bench import write_report

        out = tmp_path / "BENCH.json"
        write_report(dict(self.REPORT1), out, stamp="r1")
        write_report(dict(self.REPORT2), out, stamp="r2")
        report3 = write_report(dict(self.REPORT1), out)

        data = json.loads(out.read_text())
        assert data == report3
        traj = data["trajectory"]
        assert [e.get("stamp") for e in traj] == ["r1", "r2"]
        assert traj[0]["engine"]["callback_events_per_sec"] == 100
        assert traj[1]["engine"]["callback_events_per_sec"] == 120
        # the headline numbers are the fresh run's
        assert data["engine"]["callback_events_per_sec"] == 100

    def test_baseline_still_carried(self, tmp_path):
        from repro.sim.bench import write_report

        out = tmp_path / "BENCH.json"
        prior = dict(
            self.REPORT1,
            baseline_pre_overhaul={
                "quick": True, "engine": {"callback_events_per_sec": 50},
            },
        )
        out.write_text(json.dumps(prior))
        report = write_report(dict(self.REPORT2), out)
        assert report["baseline_pre_overhaul"]["engine"][
            "callback_events_per_sec"] == 50
        assert report["speedup_vs_baseline"]["callback_events_per_sec"] == 2.4
        assert len(report["trajectory"]) == 1


# ---------------------------------------------------------------------------
# OBS001 — guarded trace emission
# ---------------------------------------------------------------------------

SIM = ("repro", "sim", "fake")
HARNESS = ("repro", "harness", "fake")


def obs_findings(source, module_parts=SIM):
    return lint_source(
        textwrap.dedent(source), rule_ids=["OBS001"], module_parts=module_parts
    )


class TestOBS001:
    def test_unguarded_emission_flagged(self):
        out = obs_findings(
            """
            def step(self, tracer, t):
                tracer.span(0, "work", t, t + 1.0)
            """
        )
        assert len(out) == 1
        assert out[0].rule == "OBS001"
        assert "span" in out[0].message

    def test_unguarded_counter_on_attribute_flagged(self):
        out = obs_findings(
            """
            def step(self, t):
                self.tracer.counter("depth", t, 3)
            """
        )
        assert len(out) == 1

    def test_hoisted_bool_guard_accepted(self):
        out = obs_findings(
            """
            def run(self, tracer):
                tracing = tracer.enabled
                for t in range(10):
                    if tracing:
                        tracer.span(0, "ev", t, t + 1)
            """
        )
        assert out == []

    def test_direct_enabled_guard_accepted(self):
        out = obs_findings(
            """
            def run(self):
                if self.tracer.enabled and self.pending:
                    self.tracer.instant(0, "mark", 0.0)
            """
        )
        assert out == []

    def test_guard_return_helper_accepted(self):
        out = obs_findings(
            '''
            def trace_fork(tracer, outcome, t0):
                """Docstrings don't hide the guard."""
                if not tracer.enabled:
                    return 0
                tracer.span(1, "wakeup", t0, t0 + 1.0)
                return 1
            '''
        )
        assert out == []

    def test_non_tracer_receiver_ignored(self):
        out = obs_findings(
            """
            def f(page):
                page.span(0, "css", 0, 1)
            """
        )
        assert out == []

    def test_harness_package_out_of_scope(self):
        out = obs_findings(
            """
            def f(tracer):
                tracer.begin_run(0)
            """,
            module_parts=HARNESS,
        )
        assert out == []

    def test_registered_in_catalog(self):
        from repro.analysis import available_rules

        assert "OBS001" in available_rules()

    def test_instrumented_tree_is_clean(self):
        from repro.analysis import lint_paths

        report = lint_paths(
            [str(__import__("pathlib").Path(__file__).parent.parent / "src")],
            rule_ids=["OBS001"],
        )
        assert report.findings == ()
