"""Tests for repro.units."""

import math

import pytest

from repro import units


class TestTimeConversions:
    def test_us_roundtrip(self):
        assert units.to_us(units.us(15.0)) == pytest.approx(15.0)

    def test_ms_roundtrip(self):
        assert units.to_ms(units.ms(124.02)) == pytest.approx(124.02)

    def test_ns_roundtrip(self):
        assert units.to_ns(units.ns(74.0)) == pytest.approx(74.0)

    def test_us_is_seconds(self):
        assert units.us(1_000_000) == pytest.approx(1.0)

    def test_constants_consistent(self):
        assert units.USEC == 1e-6
        assert units.MSEC == 1e-3
        assert units.NSEC == 1e-9


class TestFrequencyConversions:
    def test_ghz(self):
        assert units.ghz(2.25) == pytest.approx(2.25e9)

    def test_mhz(self):
        assert units.mhz(2250) == pytest.approx(2.25e9)

    def test_to_khz_matches_sysfs_convention(self):
        # sysfs scaling_cur_freq reports kHz: 2.25 GHz -> 2250000
        assert units.to_khz(units.ghz(2.25)) == pytest.approx(2_250_000)

    def test_to_ghz(self):
        assert units.to_ghz(3.4e9) == pytest.approx(3.4)


class TestDataConversions:
    def test_gib(self):
        assert units.gib(1) == 2**30

    def test_gb_per_s_roundtrip(self):
        assert units.to_gb_per_s(units.gb_per_s(204.8)) == pytest.approx(204.8)

    def test_babelstream_array_size(self):
        # paper: array size 2^25 doubles = 256 MiB
        nbytes = 2**25 * 8
        assert nbytes == 256 * units.MIB


class TestFormatting:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (1.5e-6, "1.500 us"),
            (0.25, "250.000 ms"),
            (2.0, "2.000 s"),
            (5e-9, "5.0 ns"),
        ],
    )
    def test_fmt_time(self, seconds, expected):
        assert units.fmt_time(seconds) == expected

    def test_fmt_time_nan(self):
        assert units.fmt_time(math.nan) == "nan"

    def test_fmt_freq_ghz(self):
        assert units.fmt_freq(2.25e9) == "2.250 GHz"

    def test_fmt_freq_mhz(self):
        assert units.fmt_freq(800e6) == "800.0 MHz"

    def test_fmt_bytes(self):
        assert units.fmt_bytes(2**25 * 8) == "256.0 MiB"
        assert units.fmt_bytes(512) == "512 B"
        assert units.fmt_bytes(4 * units.GIB) == "4.0 GiB"
        assert units.fmt_bytes(3 * units.KIB) == "3.0 KiB"
