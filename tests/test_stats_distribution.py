"""Tests for distribution characterization (repro.stats.distribution)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.stats import (
    bimodality_coefficient,
    fit_lognormal,
    is_bimodal,
    lognormal_ks,
    tail_fraction,
)


class TestLognormalFit:
    def test_constant_sample(self):
        fit = fit_lognormal([2.0, 2.0, 2.0])
        assert fit.median == pytest.approx(2.0)
        assert fit.sigma == 0.0
        assert fit.mean == pytest.approx(2.0)

    def test_recovers_parameters(self):
        rng = np.random.default_rng(1)
        x = rng.lognormal(mean=1.0, sigma=0.3, size=5000)
        fit = fit_lognormal(x)
        assert fit.mu == pytest.approx(1.0, abs=0.02)
        assert fit.sigma == pytest.approx(0.3, abs=0.02)

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            fit_lognormal([1.0, 0.0])

    def test_mean_exceeds_median(self):
        rng = np.random.default_rng(2)
        fit = fit_lognormal(rng.lognormal(0.0, 0.8, 1000))
        assert fit.mean > fit.median


class TestLognormalKS:
    def test_lognormal_sample_passes(self):
        rng = np.random.default_rng(3)
        x = rng.lognormal(0.0, 0.4, 400)
        _, p = lognormal_ks(x)
        assert p > 0.05

    def test_bimodal_sample_fails(self):
        rng = np.random.default_rng(4)
        x = np.concatenate([
            rng.lognormal(0.0, 0.05, 300),
            rng.lognormal(4.0, 0.05, 150),
        ])
        _, p = lognormal_ks(x)
        assert p < 1e-6

    def test_constant_sample_trivially_consistent(self):
        stat, p = lognormal_ks(np.full(20, 3.0))
        assert stat == 0.0 and p == 1.0


class TestBimodality:
    def test_normal_sample_unimodal(self):
        rng = np.random.default_rng(5)
        x = rng.normal(10, 1, 1000)
        assert not is_bimodal(x)

    def test_two_modes_detected(self):
        rng = np.random.default_rng(6)
        x = np.concatenate([rng.normal(1, 0.05, 500), rng.normal(9, 0.05, 500)])
        assert is_bimodal(x)
        assert bimodality_coefficient(x) > 0.8

    def test_validation(self):
        with pytest.raises(ReproError):
            bimodality_coefficient([1.0, 2.0])


class TestTailFraction:
    def test_clean_sample_no_tail(self):
        assert tail_fraction(np.full(50, 1.0) + np.linspace(0, 0.01, 50)) == 0.0

    def test_disturbed_fraction_measured(self):
        x = np.concatenate([np.full(80, 1.0), np.full(20, 10.0)])
        assert tail_fraction(x, k=2.0) == pytest.approx(0.2)

    def test_k_validation(self):
        with pytest.raises(ReproError):
            tail_fraction([1.0, 2.0, 3.0, 4.0], k=1.0)


class TestOnSimulatorOutput:
    """Characterize actual benchmark output: pinned ~ log-normal,
    unpinned ~ heavy-tailed/bimodal (the Figure 4b distinction)."""

    @pytest.fixture(scope="class")
    def matrices(self):
        from repro.harness import ExperimentConfig, Runner

        out = {}
        for bind in ("close", "false"):
            cfg = ExperimentConfig(
                platform="dardel", benchmark="syncbench", num_threads=128,
                places="cores" if bind == "close" else None, proc_bind=bind,
                runs=2, seed=66,
                benchmark_params={"outer_reps": 40, "constructs": ("reduction",)},
            )
            out[bind] = Runner(cfg).run().runs_matrix("reduction").ravel()
        return out

    def test_unpinned_has_heavier_tail(self, matrices):
        assert tail_fraction(matrices["false"], k=3.0) > tail_fraction(
            matrices["close"], k=3.0
        )

    def test_unpinned_larger_bimodality(self, matrices):
        assert bimodality_coefficient(matrices["false"]) > bimodality_coefficient(
            matrices["close"]
        )
