"""Tests for the static-analysis framework (``repro.analysis``).

Each rule family gets positive fixtures (the violation is caught) and
negative fixtures (the sanctioned idiom passes).  Fixture snippets are
fed through :func:`repro.analysis.lint_source` — the exact production
pipeline — with ``module_parts`` positioning them inside the package
tree so package-scoped rules apply.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    Finding,
    available_rules,
    format_json,
    get_rules,
    lint_paths,
    lint_source,
)
from repro.cli import main
from repro.errors import AnalysisError

REPO_ROOT = Path(__file__).resolve().parent.parent

SIM = ("repro", "sim", "fake")
TASKING = ("repro", "omp", "tasking", "fake")
HARNESS = ("repro", "harness", "fake")


def findings(source, rule, module_parts=SIM):
    """Lint *source* with one rule and return the findings."""
    return lint_source(
        textwrap.dedent(source), rule_ids=[rule], module_parts=module_parts
    )


# ---------------------------------------------------------------------------
# DET001 — ambient nondeterminism
# ---------------------------------------------------------------------------


class TestDET001:
    def test_stdlib_random_flagged(self):
        out = findings(
            """
            import random

            def draw():
                return random.random()
            """,
            "DET001",
        )
        assert len(out) == 1
        assert out[0].rule == "DET001"
        assert "random.random" in out[0].message

    def test_random_import_alias_resolved(self):
        out = findings(
            """
            import random as rnd

            def draw():
                return rnd.gauss(0, 1)
            """,
            "DET001",
        )
        assert len(out) == 1

    def test_unseeded_default_rng_flagged(self):
        out = findings(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
            "DET001",
        )
        assert len(out) == 1
        assert "entropy" in out[0].message

    def test_seeded_default_rng_allowed(self):
        out = findings(
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
            "DET001",
        )
        assert out == []

    def test_numpy_global_state_flagged(self):
        out = findings(
            """
            import numpy as np

            def jitter(n):
                np.random.seed(0)
                return np.random.normal(size=n)
            """,
            "DET001",
        )
        assert len(out) == 2
        assert all("global RandomState" in f.message for f in out)

    def test_wall_clock_flagged(self):
        out = findings(
            """
            import time

            def stamp():
                return time.perf_counter()
            """,
            "DET001",
        )
        assert len(out) == 1
        assert "wall-clock" in out[0].message

    def test_id_keyed_data_flagged(self):
        out = findings(
            """
            def key_for(obj):
                return id(obj)
            """,
            "DET001",
        )
        assert len(out) == 1
        assert "memory address" in out[0].message

    def test_named_stream_draws_allowed(self):
        out = findings(
            """
            def body(rng):
                return rng.normal(0.0, 1.0)
            """,
            "DET001",
        )
        assert out == []

    def test_out_of_scope_package_not_checked(self):
        out = lint_source(
            "import random\nx = random.random()\n",
            rule_ids=["DET001"],
            module_parts=("repro", "plotting", "fake"),
        )
        assert out == []


# ---------------------------------------------------------------------------
# DET002 — set iteration
# ---------------------------------------------------------------------------


class TestDET002:
    def test_for_over_set_literal_flagged(self):
        out = findings(
            """
            def run():
                for x in {1, 2, 3}:
                    print(x)
            """,
            "DET002",
        )
        assert len(out) == 1
        assert "replay-unstable" in out[0].message

    def test_for_over_set_variable_flagged(self):
        out = findings(
            """
            def run(items):
                pending = set(items)
                for x in pending:
                    print(x)
            """,
            "DET002",
        )
        assert len(out) == 1

    def test_comprehension_over_set_flagged(self):
        out = findings(
            """
            def run(items):
                s = frozenset(items)
                return [x + 1 for x in s]
            """,
            "DET002",
        )
        assert len(out) == 1

    def test_set_algebra_flagged(self):
        out = findings(
            """
            def run(a, b):
                sa = set(a)
                for x in sa - set(b):
                    print(x)
            """,
            "DET002",
        )
        assert len(out) == 1

    def test_sorted_set_allowed(self):
        out = findings(
            """
            def run(items):
                pending = set(items)
                for x in sorted(pending):
                    print(x)
            """,
            "DET002",
        )
        assert out == []

    def test_list_iteration_allowed(self):
        out = findings(
            """
            def run(items):
                seq = list(items)
                for x in seq:
                    print(x)
            """,
            "DET002",
        )
        assert out == []

    def test_name_reassigned_to_list_not_flagged(self):
        out = findings(
            """
            def run(items):
                xs = set(items)
                xs = sorted(xs)
                for x in xs:
                    print(x)
            """,
            "DET002",
        )
        assert out == []


# ---------------------------------------------------------------------------
# DET003 — cache-key purity
# ---------------------------------------------------------------------------

# indented to match the fixture bodies so the concatenation dedents cleanly
_DET003_PREAMBLE = """
            from dataclasses import dataclass
"""


class TestDET003:
    def test_unstable_field_type_flagged(self):
        out = findings(
            _DET003_PREAMBLE
            + """
            @dataclass(frozen=True)
            class Config:
                name: str
                payload: dict

                def to_dict(self):
                    return {"name": self.name, "payload": self.payload}
            """,
            "DET003",
            module_parts=HARNESS,
        )
        assert len(out) == 1
        assert "payload" in out[0].message
        assert "field path" in out[0].message

    def test_field_missing_from_to_dict_flagged(self):
        out = findings(
            _DET003_PREAMBLE
            + """
            @dataclass(frozen=True)
            class Config:
                name: str
                reps: int

                def to_dict(self):
                    return {"name": self.name}
            """,
            "DET003",
            module_parts=HARNESS,
        )
        assert len(out) == 1
        assert "reps" in out[0].message
        assert "NOT invalidate" in out[0].message

    def test_stable_fields_pass(self):
        out = findings(
            _DET003_PREAMBLE
            + """
            @dataclass(frozen=True)
            class Config:
                name: str
                reps: int
                scale: float | None

                def to_dict(self):
                    return {
                        "name": self.name,
                        "reps": self.reps,
                        "scale": self.scale,
                    }
            """,
            "DET003",
            module_parts=HARNESS,
        )
        assert out == []

    def test_jsonify_wrapped_field_passes(self):
        out = findings(
            _DET003_PREAMBLE
            + """
            def _jsonify(v):
                return v

            @dataclass(frozen=True)
            class Config:
                params: dict

                def to_dict(self):
                    return {"params": _jsonify(dict(self.params))}
            """,
            "DET003",
            module_parts=HARNESS,
        )
        assert out == []

    def test_non_frozen_dataclass_not_checked(self):
        out = findings(
            _DET003_PREAMBLE
            + """
            @dataclass
            class Mutable:
                payload: dict

                def to_dict(self):
                    return {"payload": self.payload}
            """,
            "DET003",
            module_parts=HARNESS,
        )
        assert out == []


# ---------------------------------------------------------------------------
# DET004 — shard/manifest identity purity
# ---------------------------------------------------------------------------


class TestDET004:
    def test_pid_in_shard_scope_flagged(self):
        out = findings(
            """
            import os

            def shard_index_of(key, n):
                return (int(key[:16], 16) + os.getpid()) % n
            """,
            "DET004",
            module_parts=HARNESS,
        )
        assert len(out) == 1
        assert "os.getpid" in out[0].message
        assert "pure functions of config content" in out[0].message

    def test_wall_clock_in_manifest_scope_flagged(self):
        out = findings(
            """
            import time

            def write_shard_manifest(cache, entries):
                return {"written_at": time.time(), "entries": entries}
            """,
            "DET004",
            module_parts=HARNESS,
        )
        assert len(out) == 1
        assert "time.time" in out[0].message

    def test_hostname_in_sharded_class_flagged(self):
        out = findings(
            """
            import socket

            class ShardedBackend:
                def execute(self, pending):
                    return socket.gethostname()
            """,
            "DET004",
            module_parts=HARNESS,
        )
        assert len(out) == 1
        assert "socket.gethostname" in out[0].message

    def test_random_in_shard_scope_flagged(self):
        out = findings(
            """
            import random

            def pick_shard(keys, n):
                return random.choice(range(n))
            """,
            "DET004",
            module_parts=HARNESS,
        )
        assert len(out) == 1
        assert "different" in out[0].message
        assert "partitions" in out[0].message

    def test_pure_shard_assignment_passes(self):
        out = findings(
            """
            def shard_index_of(key, shard_count):
                return int(key[:16], 16) % shard_count
            """,
            "DET004",
            module_parts=HARNESS,
        )
        assert out == []

    def test_pid_outside_shard_scopes_passes(self):
        """Helpers outside shard/manifest scopes may use pids (tmp-file
        suffixes in _atomic_write_json are the sanctioned pattern)."""
        out = findings(
            """
            import os

            def _atomic_write_json(path, payload):
                tmp = path.with_suffix(f".tmp.{os.getpid()}")
                return tmp
            """,
            "DET004",
            module_parts=HARNESS,
        )
        assert out == []

    def test_only_applies_to_harness_package(self):
        out = findings(
            """
            import os

            def shard_helper():
                return os.getpid()
            """,
            "DET004",
            module_parts=("repro", "obs", "fake"),
        )
        assert out == []


# ---------------------------------------------------------------------------
# DET005 — job-service identity purity
# ---------------------------------------------------------------------------

SERVE = ("repro", "serve", "fake")


class TestDET005:
    def test_wall_clock_anywhere_in_serve_flagged(self):
        out = findings(
            """
            import time

            def handle_submit(spec):
                return {"received_at": time.time(), "spec": spec}
            """,
            "DET005",
            module_parts=SERVE,
        )
        assert len(out) == 1
        assert "time.time" in out[0].message

    def test_uuid4_job_id_flagged(self):
        out = findings(
            """
            import uuid

            def job_id_for(seq, fingerprint):
                return str(uuid.uuid4())
            """,
            "DET005",
            module_parts=SERVE,
        )
        assert len(out) == 1
        assert "uuid.uuid4" in out[0].message
        assert "dedup" in out[0].message

    def test_random_in_serve_flagged(self):
        out = findings(
            """
            import random

            def pick_worker(workers):
                return random.choice(workers)
            """,
            "DET005",
            module_parts=SERVE,
        )
        assert len(out) == 1
        assert "random.choice" in out[0].message

    def test_monotonic_outside_clock_scope_flagged(self):
        out = findings(
            """
            import time

            def submit(spec):
                started = time.monotonic()
                return started
            """,
            "DET005",
            module_parts=SERVE,
        )
        assert len(out) == 1
        assert "monotonic_clock" in out[0].message

    def test_monotonic_in_clock_helper_passes(self):
        out = findings(
            """
            import time

            def monotonic_clock():
                return time.monotonic()
            """,
            "DET005",
            module_parts=SERVE,
        )
        assert out == []

    def test_monotonic_in_telemetry_scope_passes(self):
        out = findings(
            """
            import time

            def telemetry_snapshot(metrics):
                return {"at": time.perf_counter()}
            """,
            "DET005",
            module_parts=SERVE,
        )
        assert out == []

    def test_identity_scope_bans_even_monotonic(self):
        """A clock-named helper does not excuse identity scopes: a
        fingerprint function may never read any clock."""
        out = findings(
            """
            import time

            class SpecFingerprint:
                def clock_salt(self):
                    return time.monotonic()
            """,
            "DET005",
            module_parts=SERVE,
        )
        assert len(out) == 1

    def test_pure_fingerprint_passes(self):
        out = findings(
            """
            import hashlib
            import json

            def spec_fingerprint(keys):
                blob = json.dumps(sorted(keys))
                return hashlib.sha256(blob.encode()).hexdigest()
            """,
            "DET005",
            module_parts=SERVE,
        )
        assert out == []

    def test_only_applies_to_serve_package(self):
        out = findings(
            """
            import time

            def handle_submit(spec):
                return time.time()
            """,
            "DET005",
            module_parts=HARNESS,
        )
        assert out == []


# ---------------------------------------------------------------------------
# PERF001 — __slots__ discipline
# ---------------------------------------------------------------------------


class TestPERF001:
    def test_plain_class_without_slots_flagged(self):
        out = findings(
            """
            class Hot:
                def __init__(self):
                    self.x = 0
            """,
            "PERF001",
        )
        assert len(out) == 1
        assert "__slots__" in out[0].message

    def test_dataclass_without_slots_flagged(self):
        out = findings(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Hot:
                x: int
            """,
            "PERF001",
        )
        assert len(out) == 1
        assert "slots=True" in out[0].message

    def test_slotted_class_passes(self):
        out = findings(
            """
            class Hot:
                __slots__ = ("x",)

                def __init__(self):
                    self.x = 0
            """,
            "PERF001",
        )
        assert out == []

    def test_slots_dataclass_passes(self):
        out = findings(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Hot:
                x: int
            """,
            "PERF001",
        )
        assert out == []

    def test_exception_subclass_exempt(self):
        out = findings(
            """
            class HotError(Exception):
                pass

            class WorseError(HotError):
                pass
            """,
            "PERF001",
        )
        assert out == []

    def test_tasking_package_in_scope(self):
        out = findings(
            "class Hot:\n    pass\n", "PERF001", module_parts=TASKING
        )
        assert len(out) == 1

    def test_cold_package_not_checked(self):
        out = lint_source(
            "class Cold:\n    pass\n",
            rule_ids=["PERF001"],
            module_parts=("repro", "osnoise", "fake"),
        )
        assert out == []


# ---------------------------------------------------------------------------
# PERF002 — closure allocation in loops
# ---------------------------------------------------------------------------


class TestPERF002:
    def test_lambda_in_loop_flagged(self):
        out = findings(
            """
            def run(engine, events):
                for ev in events:
                    engine.schedule_at(ev.t, lambda: ev.fire())
            """,
            "PERF002",
        )
        assert len(out) == 1
        assert "lambda" in out[0].message

    def test_def_in_while_loop_flagged(self):
        out = findings(
            """
            def run(queue):
                while queue:
                    def step():
                        queue.pop()
                    step()
            """,
            "PERF002",
        )
        assert len(out) == 1
        assert "step" in out[0].message

    def test_function_level_def_allowed(self):
        out = findings(
            """
            def run(engine, events):
                def fire(ev):
                    ev.fire()
                for ev in events:
                    engine.schedule_at(ev.t, fire)
            """,
            "PERF002",
        )
        assert out == []

    def test_module_level_lambda_allowed(self):
        out = findings("key = lambda ev: ev.t\n", "PERF002")
        assert out == []


# ---------------------------------------------------------------------------
# PERF003 — per-repetition loops in fused-path scopes
# ---------------------------------------------------------------------------

FUSED = ("repro", "sim", "fused")


class TestPERF003:
    def test_rep_loop_in_fused_module_flagged(self):
        out = findings(
            """
            def rows(batch, p):
                for r in range(p.outer_reps):
                    batch.execute(r)
            """,
            "PERF003",
            module_parts=FUSED,
        )
        assert len(out) == 1
        assert "range(outer_reps)" in out[0].message

    def test_rep_loop_in_fused_function_flagged_anywhere(self):
        out = findings(
            """
            def fork_bound_fused(streams, runs):
                for r in range(runs):
                    streams.draw(r)
            """,
            "PERF003",
            module_parts=("repro", "sched", "model"),
        )
        assert len(out) == 1
        assert "fork_bound_fused" in out[0].message

    def test_arithmetic_and_attribute_args_flagged(self):
        out = findings(
            """
            def rows(batch, config):
                for r in range(config.n_reps - 1):
                    batch.execute(r)
            """,
            "PERF003",
            module_parts=FUSED,
        )
        assert len(out) == 1
        assert "range(n_reps)" in out[0].message

    def test_step_loop_over_array_shape_allowed(self):
        out = findings(
            """
            def rows(batch, rep_times):
                for step in range(rep_times.shape[1]):
                    batch.execute(rep_times[:, step])
            """,
            "PERF003",
            module_parts=FUSED,
        )
        assert out == []

    def test_non_range_iteration_allowed(self):
        out = findings(
            """
            def rows(batch, groups, rows):
                for idx in groups:
                    batch.execute(idx)
                for i, row in enumerate(rows):
                    row.finish(i)
            """,
            "PERF003",
            module_parts=FUSED,
        )
        assert out == []

    def test_scalar_engine_rep_loop_allowed(self):
        # the scalar engine's per-rep loop is the golden reference, not a
        # fused scope — PERF003 must not fire outside fused code
        out = findings(
            """
            def measure(ctx, p):
                for rep in range(p.outer_reps):
                    ctx.advance(1.0)
            """,
            "PERF003",
            module_parts=("repro", "bench", "epcc", "syncbench"),
        )
        assert out == []


# ---------------------------------------------------------------------------
# API001 — driver registration
# ---------------------------------------------------------------------------


class TestAPI001:
    def test_unregistered_driver_flagged(self):
        out = findings(
            """
            def figure99(platform) -> ExperimentArtifact:
                return ExperimentArtifact()
            """,
            "API001",
            module_parts=HARNESS,
        )
        assert len(out) == 1
        assert "figure99" in out[0].message
        assert "@experiment" in out[0].message

    def test_registered_driver_passes(self):
        out = findings(
            """
            from repro.harness.experiments import experiment

            @experiment("the missing figure")
            def figure99(platform) -> ExperimentArtifact:
                return ExperimentArtifact()
            """,
            "API001",
            module_parts=HARNESS,
        )
        assert out == []

    def test_private_helper_exempt(self):
        out = findings(
            """
            def _assemble(platform) -> ExperimentArtifact:
                return ExperimentArtifact()
            """,
            "API001",
            module_parts=HARNESS,
        )
        assert out == []

    def test_non_driver_function_ignored(self):
        out = findings(
            """
            def summarize(records) -> dict:
                return {}
            """,
            "API001",
            module_parts=HARNESS,
        )
        assert out == []


# ---------------------------------------------------------------------------
# framework: registry, baseline, output formats
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_rule_families_registered(self):
        assert {
            "DET001", "DET002", "DET003", "DET004", "DET005", "PERF001",
            "PERF002", "API001",
        } <= set(available_rules())

    def test_unknown_rule_raises(self):
        with pytest.raises(AnalysisError, match="NOPE999"):
            get_rules(["NOPE999"])

    def test_every_rule_documents_itself(self):
        for rule in get_rules():
            assert rule.title
            assert rule.rationale
            assert rule.fix_hint


class TestBaseline:
    def _finding(self, snippet="x = time.time()"):
        return Finding(
            rule="DET001",
            path="src/repro/sim/fake.py",
            line=3,
            col=4,
            message="wall clock",
            snippet=snippet,
        )

    def test_round_trip(self, tmp_path):
        entry = BaselineEntry.from_finding(self._finding(), reason="measured")
        path = tmp_path / "baseline.json"
        Baseline([entry]).save(path)
        loaded = Baseline.load(path)
        assert loaded.match(self._finding()) is not None

    def test_match_is_line_number_free(self):
        entry = BaselineEntry.from_finding(self._finding(), reason="measured")
        moved = Finding(
            rule="DET001",
            path="src/repro/sim/fake.py",
            line=300,
            col=8,
            message="wall clock",
            snippet="x   =  time.time()",  # same code, different whitespace
        )
        assert Baseline([entry]).match(moved) is not None

    def test_stale_entries_reported(self):
        entry = BaselineEntry.from_finding(self._finding(), reason="measured")
        bl = Baseline([entry])
        assert bl.stale_entries() == [entry]
        bl.match(self._finding())
        assert bl.stale_entries() == []

    def test_reason_is_mandatory(self):
        with pytest.raises(AnalysisError, match="reason"):
            BaselineEntry("DET001", "src/repro/sim/fake.py", "x = 1", "  ")

    def test_bad_file_raises(self, tmp_path):
        p = tmp_path / "broken.json"
        p.write_text("[]")
        with pytest.raises(AnalysisError, match="entries"):
            Baseline.load(p)


class TestJsonOutput:
    def test_schema(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        report = lint_paths([tmp_path])
        payload = json.loads(format_json(report))
        assert set(payload) == {
            "version", "ok", "files_checked", "rules", "findings",
            "suppressed", "stale_baseline",
        }
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        (f,) = payload["findings"]
        assert f["rule"] == "DET001"
        assert f["line"] == 2
        assert f["severity"] == "error"
        assert f["fix_hint"]

    def test_suppressed_findings_carry_reason(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        first = lint_paths([tmp_path])
        baseline = Baseline(
            [
                BaselineEntry.from_finding(f, reason="fixture exception")
                for f in first.findings
            ]
        )
        report = lint_paths([tmp_path], baseline=baseline)
        assert report.ok
        payload = json.loads(format_json(report))
        assert payload["findings"] == []
        (s,) = payload["suppressed"]
        assert s["reason"] == "fixture exception"


# ---------------------------------------------------------------------------
# the repo lints clean against its own committed baseline
# ---------------------------------------------------------------------------


class TestSelfLint:
    def test_src_is_clean_under_committed_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        report = lint_paths([REPO_ROOT / "src"], baseline=baseline)
        assert report.findings == (), "\n".join(
            f.render() for f in report.findings
        )
        assert report.stale_entries == (), (
            "baseline entries matched nothing — fixed? remove them"
        )

    def test_committed_baseline_entries_all_have_reasons(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert baseline.entries, "committed baseline should not be empty"
        for entry in baseline.entries:
            assert entry.reason.strip()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCli:
    def test_clean_tree_exits_zero(self):
        rc = main(
            [
                "lint",
                str(REPO_ROOT / "src"),
                "--baseline",
                str(REPO_ROOT / "lint-baseline.json"),
            ]
        )
        assert rc == 0

    def test_synthetic_violation_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        rc = main(["lint", str(bad), "--no-baseline"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import random\nx = random.random()\n\n"
            "class Hot:\n    pass\n"
        )
        rc = main(["lint", str(bad), "--rule", "PERF001", "--no-baseline"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "PERF001" in out
        assert "DET001" not in out

    def test_json_format_parses(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        rc = main(["lint", str(bad), "--format", "json", "--no-baseline"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"]

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "DET001", "DET002", "DET003", "DET004", "DET005", "PERF001",
            "PERF002", "API001",
        ):
            assert rule_id in out

    def test_module_invocation_smoke(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "DET001" in proc.stdout
