"""Tests for the frequency/DVFS substrate."""

import numpy as np
import pytest

from repro.errors import FrequencyError
from repro.freq import (
    BoostTable,
    CpuFreqSysfs,
    DerateProcess,
    DipProcess,
    FrequencyModel,
    FrequencySpec,
    PerformanceGovernor,
    PowersaveGovernor,
    OndemandGovernor,
    SchedutilGovernor,
    make_governor,
)
from repro.rng import RngFactory
from repro.topology import TopologyBuilder
from repro.units import ghz


@pytest.fixture
def machine():
    return TopologyBuilder("toy").add_sockets(2, 1, 4, smt=1).build()


def simple_spec(**kwargs):
    defaults = dict(
        min_hz=ghz(1.0),
        base_hz=ghz(2.0),
        boost=BoostTable.from_ghz([(2, 3.0), (4, 2.6), (8, 2.2)]),
        pstate_step_hz=25e6,
    )
    defaults.update(kwargs)
    return FrequencySpec(**defaults)


class TestBoostTable:
    def test_lookup(self):
        t = BoostTable.from_ghz([(2, 3.7), (16, 3.1), (32, 2.8)])
        assert t.freq_for(1) == ghz(3.7)
        assert t.freq_for(2) == ghz(3.7)
        assert t.freq_for(3) == ghz(3.1)
        assert t.freq_for(16) == ghz(3.1)
        assert t.freq_for(17) == ghz(2.8)
        assert t.freq_for(500) == ghz(2.8)  # beyond table: all-core floor

    def test_properties(self):
        t = BoostTable.from_ghz([(2, 3.7), (32, 2.8)])
        assert t.single_core_boost == ghz(3.7)
        assert t.all_core_floor == ghz(2.8)

    def test_flat(self):
        t = BoostTable.flat(ghz(2.0))
        assert t.freq_for(1) == t.freq_for(1000) == ghz(2.0)

    def test_validation(self):
        with pytest.raises(FrequencyError):
            BoostTable(())
        with pytest.raises(FrequencyError):
            BoostTable.from_ghz([(2, 3.0), (2, 2.8)])  # non-increasing counts
        with pytest.raises(FrequencyError):
            BoostTable.from_ghz([(2, 3.0), (4, 3.5)])  # increasing freq
        with pytest.raises(FrequencyError):
            t = BoostTable.from_ghz([(2, 3.0)])
            t.freq_for(-1)


class TestGovernors:
    def test_performance(self):
        g = PerformanceGovernor()
        assert g.target_freq(1e9, 3e9, 0.0) == 3e9
        assert g.target_freq(1e9, 3e9, 1.0) == 3e9

    def test_powersave(self):
        g = PowersaveGovernor()
        assert g.target_freq(1e9, 3e9, 1.0) == 1e9

    def test_ondemand_threshold(self):
        g = OndemandGovernor(up_threshold=0.8)
        assert g.target_freq(1e9, 3e9, 0.9) == 3e9
        mid = g.target_freq(1e9, 3e9, 0.4)
        assert 1e9 < mid < 3e9

    def test_schedutil_curve(self):
        g = SchedutilGovernor()
        assert g.target_freq(1e9, 3e9, 1.0) == 3e9
        assert g.target_freq(1e9, 3e9, 0.0) == 1e9
        assert g.target_freq(1e9, 3e9, 0.5) == pytest.approx(1.25 * 0.5 * 3e9)

    def test_make_governor(self):
        assert make_governor("performance").name == "performance"
        with pytest.raises(FrequencyError):
            make_governor("warp-speed")

    def test_input_validation(self):
        g = PerformanceGovernor()
        with pytest.raises(FrequencyError):
            g.target_freq(-1.0, 3e9, 0.5)
        with pytest.raises(FrequencyError):
            g.target_freq(1e9, 3e9, 1.5)
        with pytest.raises(FrequencyError):
            g.target_freq(3e9, 1e9, 0.5)


class TestDipProcess:
    def test_zero_rate_no_dips(self, machine):
        p = DipProcess(base_rate=0.0, cross_numa_rate=0.0)
        rng = RngFactory(1).stream("dips")
        assert p.sample(0.0, 100.0, (0,), False, rng) == []

    def test_cross_numa_raises_rate(self):
        p = DipProcess(base_rate=0.5, cross_numa_rate=4.0)
        assert p.rate(False) == 0.5
        assert p.rate(True) == 4.5

    def test_sample_statistics(self):
        p = DipProcess(base_rate=5.0, duration_median=0.01)
        rng = RngFactory(2).stream("dips")
        dips = p.sample(0.0, 200.0, (0,), False, rng)
        # expect ~1000 dips; Poisson fluctuation well within +-20%
        assert 800 < len(dips) < 1200
        for d in dips[:50]:
            assert 0.0 <= d.start < 200.0
            assert d.duration > 0
            assert 0.0 < d.depth <= 1.0

    def test_per_socket_sampling(self):
        p = DipProcess(base_rate=2.0)
        rng = RngFactory(3).stream("dips")
        dips = p.sample(0.0, 50.0, (0, 1), False, rng)
        sockets = {d.socket_id for d in dips}
        assert sockets == {0, 1}

    def test_validation(self):
        with pytest.raises(FrequencyError):
            DipProcess(base_rate=-1.0)
        with pytest.raises(FrequencyError):
            DipProcess(depth_low=0.9, depth_high=0.5)


class TestDerateProcess:
    def test_probability_scales_with_load(self):
        p = DerateProcess(prob_at_full_load=0.1, load_exponent=2.0)
        assert p.probability(1.0) == pytest.approx(0.1)
        assert p.probability(0.5) == pytest.approx(0.025)
        assert p.probability(0.0) == 0.0

    def test_sample_factor_bounds(self):
        p = DerateProcess(prob_at_full_load=1.0, depth_low=0.88, depth_high=0.94)
        rng = RngFactory(4).stream("derate")
        for _ in range(20):
            f = p.sample_factor(1.0, rng)
            assert 0.88 <= f <= 0.94

    def test_zero_probability_never_derates(self):
        p = DerateProcess(prob_at_full_load=0.0)
        rng = RngFactory(5).stream("derate")
        assert all(p.sample_factor(1.0, rng) == 1.0 for _ in range(50))


class TestFrequencyModel:
    def test_steady_plan_performance_governor(self, machine):
        spec = simple_spec()
        model = FrequencyModel(machine, spec)
        rng = RngFactory(1).stream("freq")
        plan = model.plan(0.0, 1.0, active_cpus=[0, 1], governor=PerformanceGovernor(), rng=rng)
        # 2 active cores -> boost 3.0 GHz for every cpu (performance governor)
        assert plan.freq_at(0, 0.5) == pytest.approx(ghz(3.0))
        assert plan.freq_at(7, 0.5) == pytest.approx(ghz(3.0))

    def test_boost_depends_on_active_cores(self, machine):
        spec = simple_spec()
        model = FrequencyModel(machine, spec)
        rng = RngFactory(1).stream("freq")
        plan = model.plan(0.0, 1.0, active_cpus=list(range(6)), governor=PerformanceGovernor(), rng=rng)
        assert plan.freq_at(0, 0.5) == pytest.approx(ghz(2.2))

    def test_duration_for_cycles(self, machine):
        model = FrequencyModel(machine, simple_spec())
        rng = RngFactory(1).stream("freq")
        plan = model.plan(0.0, 1.0, [0], PerformanceGovernor(), rng)
        # 3 GHz: 3e9 cycles take 1 second
        assert plan.duration_for_cycles(0, 0.0, 3.0e9) == pytest.approx(1.0)
        assert plan.duration_for_cycles(0, 0.0, 0.0) == 0.0

    def test_dips_lower_frequency(self, machine):
        spec = simple_spec(
            dips=DipProcess(base_rate=50.0, duration_median=0.01, depth_low=0.7, depth_high=0.8)
        )
        model = FrequencyModel(machine, spec)
        rng = RngFactory(7).stream("freq")
        plan = model.plan(0.0, 2.0, [0, 1], PerformanceGovernor(), rng)
        assert len(plan.dips) > 0
        trace = plan.trace(0)
        assert trace.min_value(0.0, 2.0) < ghz(3.0) * 0.85

    def test_derate_affects_whole_window(self, machine):
        spec = simple_spec(derate=DerateProcess(prob_at_full_load=1.0, load_exponent=0.0))
        model = FrequencyModel(machine, spec)
        rng = RngFactory(8).stream("freq")
        plan = model.plan(0.0, 1.0, [0, 1], PerformanceGovernor(), rng)
        f = plan.freq_at(0, 0.5)
        assert f < ghz(3.0) * 0.95

    def test_determinism(self, machine):
        spec = simple_spec(jitter_amplitude=0.01, jitter_rate=5.0,
                           dips=DipProcess(base_rate=2.0))
        model = FrequencyModel(machine, spec)
        p1 = model.plan(0.0, 1.0, [0], PerformanceGovernor(), RngFactory(9).stream("f"))
        p2 = model.plan(0.0, 1.0, [0], PerformanceGovernor(), RngFactory(9).stream("f"))
        np.testing.assert_array_equal(p1.snapshot(0.5), p2.snapshot(0.5))

    def test_snapshot_shape(self, machine):
        model = FrequencyModel(machine, simple_spec())
        plan = model.plan(0.0, 1.0, [0], PerformanceGovernor(), RngFactory(1).stream("f"))
        assert plan.snapshot(0.1).shape == (machine.n_cpus,)

    def test_quantization(self, machine):
        spec = simple_spec(jitter_amplitude=0.02, jitter_rate=50.0)
        model = FrequencyModel(machine, spec)
        plan = model.plan(0.0, 1.0, [0], PerformanceGovernor(), RngFactory(3).stream("f"))
        values = plan.trace(0).values
        steps = values / spec.pstate_step_hz
        np.testing.assert_allclose(steps, np.round(steps), atol=1e-9)

    def test_spec_validation(self):
        with pytest.raises(FrequencyError):
            simple_spec(min_hz=ghz(3.0), base_hz=ghz(2.0))
        with pytest.raises(FrequencyError):
            simple_spec(base_hz=ghz(3.5))  # above single-core boost

    def test_machine_wide_plan_samples_dips_on_every_socket(self, machine):
        """machine_wide=True (unbound teams): dip/derate triggers must not be
        anchored to the initial placement's sockets."""
        spec = simple_spec(
            dips=DipProcess(base_rate=40.0, duration_median=0.01,
                            depth_low=0.7, depth_high=0.8)
        )
        model = FrequencyModel(machine, spec)
        # team only on socket 0 (cpus 0-3); machine-wide triggers still
        # reach socket 1
        plan = model.plan(
            0.0, 3.0, [0, 1], PerformanceGovernor(),
            RngFactory(4).stream("freq"), machine_wide=True,
        )
        assert {d.socket_id for d in plan.dips} == {0, 1}

    def test_machine_wide_keeps_team_boost_limit(self, machine):
        """The boost limit still follows the team's active-core count."""
        model = FrequencyModel(machine, simple_spec())
        plan = model.plan(
            0.0, 1.0, [0, 1], PerformanceGovernor(),
            RngFactory(1).stream("freq"), machine_wide=True,
        )
        # 2 active cores -> 3.0 GHz everywhere, not the 8-core 2.2 GHz floor
        assert plan.freq_at(0, 0.5) == pytest.approx(ghz(3.0))
        assert plan.freq_at(7, 0.5) == pytest.approx(ghz(3.0))


class TestSysfs:
    def test_read_paths(self, machine):
        spec = simple_spec()
        model = FrequencyModel(machine, spec)
        plan = model.plan(0.0, 1.0, [0, 1], PerformanceGovernor(), RngFactory(1).stream("f"))
        fs = CpuFreqSysfs(spec, plan, "performance")
        khz = int(fs.read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq", 0.5))
        assert khz == pytest.approx(3_000_000)
        assert fs.read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor", 0.0) == "performance"
        assert int(fs.read("/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq", 0.0)) == 3_000_000
        assert int(fs.read("/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_min_freq", 0.0)) == 1_000_000
        assert "performance" in fs.read(
            "/sys/devices/system/cpu/cpu0/cpufreq/scaling_available_governors", 0.0
        )

    def test_bad_paths(self, machine):
        spec = simple_spec()
        model = FrequencyModel(machine, spec)
        plan = model.plan(0.0, 1.0, [0], PerformanceGovernor(), RngFactory(1).stream("f"))
        fs = CpuFreqSysfs(spec, plan, "performance")
        with pytest.raises(FrequencyError):
            fs.read("/sys/nonsense", 0.0)
        with pytest.raises(FrequencyError):
            fs.read("/sys/devices/system/cpu/cpu999/cpufreq/scaling_cur_freq", 0.0)
        with pytest.raises(FrequencyError):
            fs.read("/sys/devices/system/cpu/cpu0/cpufreq/energy_bias", 0.0)

    def test_snapshot_khz(self, machine):
        spec = simple_spec()
        model = FrequencyModel(machine, spec)
        plan = model.plan(0.0, 1.0, [0], PerformanceGovernor(), RngFactory(1).stream("f"))
        fs = CpuFreqSysfs(spec, plan, "performance")
        snap = fs.snapshot_khz(0.5)
        assert snap.shape == (machine.n_cpus,)
        assert snap.dtype == np.int64

    def test_path_for(self, machine):
        spec = simple_spec()
        model = FrequencyModel(machine, spec)
        plan = model.plan(0.0, 1.0, [0], PerformanceGovernor(), RngFactory(1).stream("f"))
        fs = CpuFreqSysfs(spec, plan, "performance")
        path = fs.path_for(3)
        assert path == "/sys/devices/system/cpu/cpu3/cpufreq/scaling_cur_freq"
        assert fs.read(path, 0.0)
