"""Tests for the OS-noise substrate."""

import numpy as np
import pytest

from repro.errors import NoiseModelError
from repro.osnoise import (
    IdleFirstPlacement,
    NoiseModel,
    PinnedPlacement,
    PoissonSource,
    TimerTickSource,
    dardel_noise,
    noisy_profile,
    quiet_profile,
    vera_noise,
)
from repro.rng import RngFactory
from repro.topology import TopologyBuilder, dardel_topology
from repro.units import us


@pytest.fixture
def machine():
    # 2 sockets x 1 numa x 4 cores, SMT-2 -> 16 cpus, siblings (c, c+8)
    return TopologyBuilder("toy").add_sockets(2, 1, 4, smt=2).build()


class TestTimerTickSource:
    def test_tick_count_matches_rate(self):
        src = TimerTickSource(hz=250.0, duration_mean=us(2), duration_jitter=us(1))
        rng = RngFactory(1).stream("ticks")
        events = src.sample(0.0, 1.0, busy_cpus=[3], rng=rng)
        assert 248 <= len(events) <= 251
        assert all(e.cpu == 3 for e in events)

    def test_only_busy_cpus_tick(self):
        src = TimerTickSource()
        rng = RngFactory(1).stream("ticks")
        events = src.sample(0.0, 0.1, busy_cpus=[1, 5], rng=rng)
        assert {e.cpu for e in events} == {1, 5}

    def test_no_busy_no_ticks(self):
        src = TimerTickSource()
        rng = RngFactory(1).stream("ticks")
        assert src.sample(0.0, 1.0, busy_cpus=[], rng=rng) == []

    def test_durations_in_band(self):
        src = TimerTickSource(duration_mean=us(2), duration_jitter=us(1))
        rng = RngFactory(2).stream("ticks")
        events = src.sample(0.0, 0.5, busy_cpus=[0], rng=rng)
        for e in events:
            assert us(1) <= e.duration <= us(3)

    def test_validation(self):
        with pytest.raises(NoiseModelError):
            TimerTickSource(hz=0)
        with pytest.raises(NoiseModelError):
            TimerTickSource(duration_mean=us(1), duration_jitter=us(2))


class TestPoissonSource:
    def test_event_count(self):
        src = PoissonSource(rate=100.0, duration_median=us(100))
        rng = RngFactory(3).stream("poisson")
        events = src.sample(0.0, 10.0, busy_cpus=[], rng=rng)
        assert 850 < len(events) < 1150

    def test_affinity_respected(self):
        src = PoissonSource(rate=50.0, affinity=(0, 5), kind="irq")
        rng = RngFactory(4).stream("poisson")
        events = src.sample(0.0, 5.0, busy_cpus=[], rng=rng)
        assert {e.cpu for e in events} <= {0, 5}

    def test_unaffine_events_unplaced(self):
        src = PoissonSource(rate=50.0)
        rng = RngFactory(4).stream("poisson")
        events = src.sample(0.0, 1.0, busy_cpus=[], rng=rng)
        assert all(e.cpu is None for e in events)

    def test_duration_cap(self):
        src = PoissonSource(rate=200.0, duration_median=us(500), duration_sigma=3.0,
                            duration_cap=us(1000))
        rng = RngFactory(5).stream("poisson")
        events = src.sample(0.0, 5.0, busy_cpus=[], rng=rng)
        assert max(e.duration for e in events) <= us(1000)

    def test_zero_rate(self):
        src = PoissonSource(rate=0.0)
        rng = RngFactory(5).stream("poisson")
        assert src.sample(0.0, 100.0, busy_cpus=[], rng=rng) == []

    def test_validation(self):
        with pytest.raises(NoiseModelError):
            PoissonSource(rate=-1.0)
        with pytest.raises(NoiseModelError):
            PoissonSource(affinity=())


class TestIdleFirstPlacement:
    def test_prefers_fully_idle_cores(self, machine):
        src = PoissonSource(rate=500.0)
        rng = RngFactory(6).stream("x")
        events = src.sample(0.0, 1.0, busy_cpus=[], rng=rng)
        policy = IdleFirstPlacement()
        # busy: cpu 0..3 (cores 0..3 of socket 0). Fully idle cores: 4..7.
        placed = policy.place(events, machine, busy_cpus=[0, 1, 2, 3], rng=rng)
        idle_core_cpus = {4, 5, 6, 7, 12, 13, 14, 15}
        assert all(e.cpu in idle_core_cpus for e in placed)

    def test_falls_back_to_siblings(self, machine):
        # all 8 cores have thread0 busy -> only siblings idle
        busy = list(range(8))
        src = PoissonSource(rate=200.0)
        rng = RngFactory(7).stream("x")
        events = src.sample(0.0, 1.0, busy_cpus=busy, rng=rng)
        placed = IdleFirstPlacement().place(events, machine, busy, rng)
        assert all(8 <= e.cpu < 16 for e in placed)

    def test_preempts_when_saturated(self, machine):
        busy = list(range(16))
        src = PoissonSource(rate=200.0)
        rng = RngFactory(8).stream("x")
        events = src.sample(0.0, 1.0, busy_cpus=busy, rng=rng)
        placed = IdleFirstPlacement().place(events, machine, busy, rng)
        assert all(0 <= e.cpu < 16 for e in placed)
        # noise now lands on busy cpus
        assert any(e.cpu in set(busy) for e in placed)

    def test_affine_events_untouched(self, machine):
        src = PoissonSource(rate=100.0, affinity=(2,), kind="irq")
        rng = RngFactory(9).stream("x")
        events = src.sample(0.0, 1.0, busy_cpus=[], rng=rng)
        placed = IdleFirstPlacement().place(events, machine, [0, 1], rng)
        assert all(e.cpu == 2 for e in placed)

    def test_bad_busy_cpu(self, machine):
        with pytest.raises(NoiseModelError):
            IdleFirstPlacement().place([], machine, [999], RngFactory(1).stream("x"))


class TestPinnedPlacement:
    def test_places_on_fixed_set(self, machine):
        src = PoissonSource(rate=100.0)
        rng = RngFactory(10).stream("x")
        events = src.sample(0.0, 1.0, busy_cpus=[], rng=rng)
        placed = PinnedPlacement([3]).place(events, machine, [], rng)
        assert all(e.cpu == 3 for e in placed)

    def test_empty_set_rejected(self):
        with pytest.raises(NoiseModelError):
            PinnedPlacement([])


class TestNoiseModel:
    def test_realize_builds_interval_sets(self, machine):
        model = NoiseModel(machine, dardel_noise().sources[:2])  # ticks + daemons
        rng = RngFactory(11).stream("noise")
        real = model.realize(0.0, 1.0, busy_cpus=[0, 1], rng=rng)
        stolen0 = real.stolen_on(0)
        assert stolen0.total > 0  # ticks on busy cpu 0
        assert real.total_stolen(0, 0.0, 1.0) == pytest.approx(stolen0.total)

    def test_quiet_profile_is_silent(self, machine):
        model = NoiseModel(machine, quiet_profile().sources)
        real = model.realize(0.0, 10.0, [0], RngFactory(1).stream("n"))
        assert real.stolen_on(0).is_empty()
        assert real.events == ()

    def test_sibling_pressure(self, machine):
        # noise pinned on cpu 8 (sibling of cpu 0 in core 0)
        model = NoiseModel(
            machine,
            [PoissonSource(rate=50.0, duration_median=us(100))],
            placement=PinnedPlacement([8]),
        )
        real = model.realize(0.0, 1.0, busy_cpus=[0], rng=RngFactory(2).stream("n"))
        assert real.sibling_pressure_on(0).total > 0
        assert real.stolen_on(0).is_empty()

    def test_spare_cpus_absorb_daemons(self, machine):
        """The paper's spare-2-cpus strategy: daemons land on idle cpus."""
        model = NoiseModel(machine, [PoissonSource(rate=100.0)])
        busy = list(range(14))  # spare cpus 14, 15
        real = model.realize(0.0, 1.0, busy, RngFactory(3).stream("n"))
        for cpu in busy:
            assert real.stolen_on(cpu).is_empty()

    def test_count_by_kind(self, machine):
        # dardel's irq affinity targets cpu 128, so use the tick+daemon
        # sources only on this 16-cpu toy machine
        sources = [s for s in dardel_noise().sources if s.kind in ("tick", "daemon")]
        model = NoiseModel(machine, sources)
        real = model.realize(0.0, 0.5, [0], RngFactory(4).stream("n"))
        counts = real.count_by_kind()
        assert counts.get("tick", 0) > 0

    def test_profile_from_other_machine_rejected(self, machine):
        # the full dardel profile pins IRQs to cpu 128 — not on this machine
        model = NoiseModel(machine, dardel_noise().sources)
        with pytest.raises(NoiseModelError):
            model.realize(0.0, 0.5, [0], RngFactory(4).stream("n"))

    def test_determinism(self, machine):
        model = NoiseModel(machine, vera_noise().sources)
        r1 = model.realize(0.0, 1.0, [0, 1], RngFactory(5).stream("n"))
        r2 = model.realize(0.0, 1.0, [0, 1], RngFactory(5).stream("n"))
        assert r1.events == r2.events


class TestProfiles:
    def test_presets_exist(self):
        assert dardel_noise().sources
        assert vera_noise().sources
        assert not quiet_profile().sources

    def test_dardel_irq_affinity_matches_topology(self):
        m = dardel_topology()
        irq = [s for s in dardel_noise().sources if s.kind == "irq"][0]
        for cpu in irq.affinity:
            assert cpu < m.n_cpus
        # cpu0 and its SMT sibling
        assert irq.affinity == (0, 128)
        assert m.siblings_of(0) == (128,)

    def test_scaled(self):
        base = dardel_noise()
        loud = base.scaled(10.0)
        base_daemon = [s for s in base.sources if s.kind == "daemon"][0]
        loud_daemon = [s for s in loud.sources if s.kind == "daemon"][0]
        assert loud_daemon.rate == pytest.approx(10 * base_daemon.rate)
        # tick rate unchanged
        base_tick = [s for s in base.sources if s.kind == "tick"][0]
        loud_tick = [s for s in loud.sources if s.kind == "tick"][0]
        assert loud_tick.hz == base_tick.hz

    def test_without(self):
        p = dardel_noise().without("rare")
        assert all(s.kind != "rare" for s in p.sources)
        assert len(p.sources) == len(dardel_noise().sources) - 1

    def test_noisy_profile_louder(self):
        base_rate = sum(
            s.rate for s in dardel_noise().sources if isinstance(s, PoissonSource)
        )
        loud_rate = sum(
            s.rate for s in noisy_profile().sources if isinstance(s, PoissonSource)
        )
        assert loud_rate > 5 * base_rate
