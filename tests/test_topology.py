"""Tests for the topology substrate (builder, machine invariants, presets)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import (
    CpuSet,
    TopologyBuilder,
    dardel_topology,
    vera_topology,
)


class TestBuilder:
    def test_toy_machine(self):
        m = TopologyBuilder("toy").add_sockets(2, 1, 4, smt=2).build()
        assert m.n_sockets == 2
        assert m.n_numa == 2
        assert m.n_cores == 8
        assert m.n_cpus == 16
        assert m.smt_level == 2

    def test_linux_sibling_numbering(self):
        m = TopologyBuilder("toy").add_sockets(1, 1, 4, smt=2).build()
        # cpu ids 0..3 are thread 0 of cores 0..3; 4..7 are the siblings
        assert m.cores[0].cpu_ids == (0, 4)
        assert m.cores[3].cpu_ids == (3, 7)
        assert m.hwthread(5).smt_index == 1
        assert m.hwthread(5).core_id == 1

    def test_no_sockets_rejected(self):
        with pytest.raises(TopologyError):
            TopologyBuilder("x").build()

    def test_bad_shapes_rejected(self):
        with pytest.raises(TopologyError):
            TopologyBuilder("x").add_socket(0, 4)
        with pytest.raises(TopologyError):
            TopologyBuilder("x").add_socket(1, 0)
        with pytest.raises(TopologyError):
            TopologyBuilder("x").add_sockets(1, 1, 1, smt=0)

    def test_irregular_sockets(self):
        m = (
            TopologyBuilder("mixed")
            .add_socket(2, 4)
            .add_socket(1, 8)
            .build()
        )
        assert m.n_numa == 3
        assert m.n_cores == 16
        assert len(m.sockets[0].core_ids) == 8
        assert len(m.sockets[1].core_ids) == 8


class TestMachineLookups:
    def setup_method(self):
        self.m = TopologyBuilder("toy").add_sockets(2, 2, 2, smt=2).build()

    def test_core_of(self):
        for cpu in range(self.m.n_cpus):
            core = self.m.core_of(cpu)
            assert cpu in core.cpu_ids

    def test_siblings(self):
        m = self.m
        c0 = m.cores[0]
        a, b = c0.cpu_ids
        assert m.siblings_of(a) == (b,)
        assert m.siblings_of(b) == (a,)

    def test_numa_partition(self):
        cores_seen = [c for d in self.m.numa_domains for c in d.core_ids]
        assert sorted(cores_seen) == list(range(self.m.n_cores))

    def test_primary_cpus(self):
        primaries = self.m.primary_cpus()
        assert len(primaries) == self.m.n_cores
        for cpu in primaries:
            assert self.m.hwthread(cpu).smt_index == 0

    def test_span_helpers(self):
        m = self.m
        d0 = m.numa_domains[0]
        assert m.numa_span(d0.cpu_ids) == 1
        assert m.socket_span(m.all_cpus()) == 2
        assert m.cores_spanned(m.cores[0].cpu_ids) == 1

    def test_bad_cpu_raises(self):
        with pytest.raises(TopologyError):
            self.m.hwthread(9999)

    def test_distance_matrix(self):
        m = self.m
        assert m.distance(0, 0) == 10
        assert m.distance(0, 1) == 12  # same socket
        assert m.distance(0, 2) == 32  # cross socket

    def test_arrays(self):
        numa = self.m.numa_ids_array()
        core = self.m.core_ids_array()
        assert numa.shape == (self.m.n_cpus,)
        for cpu in range(self.m.n_cpus):
            assert numa[cpu] == self.m.hwthread(cpu).numa_id
            assert core[cpu] == self.m.hwthread(cpu).core_id


class TestPresets:
    def test_dardel_shape(self):
        m = dardel_topology()
        assert m.name == "dardel"
        assert m.n_sockets == 2
        assert m.n_numa == 8
        assert m.n_cores == 128
        assert m.n_cpus == 256
        assert m.smt_level == 2
        # quad-NUMA per socket, 16 cores per domain
        for d in m.numa_domains:
            assert len(d.core_ids) == 16

    def test_dardel_sibling_convention(self):
        m = dardel_topology()
        # core c owns cpus {c, c+128}
        assert m.cores[0].cpu_ids == (0, 128)
        assert m.cores[127].cpu_ids == (127, 255)

    def test_vera_shape(self):
        m = vera_topology()
        assert m.name == "vera"
        assert m.n_sockets == 2
        assert m.n_numa == 2
        assert m.n_cores == 32
        assert m.n_cpus == 32
        assert m.smt_level == 1

    def test_summary_strings(self):
        assert "256 hardware threads" in dardel_topology().summary()
        assert "32 hardware threads" in vera_topology().summary()


class TestCpuSet:
    def test_parse_and_str_roundtrip(self):
        s = CpuSet.parse("0-3,8,10-11")
        assert s.as_tuple() == (0, 1, 2, 3, 8, 10, 11)
        assert str(s) == "0-3,8,10-11"

    def test_parse_empty(self):
        assert len(CpuSet.parse("")) == 0
        assert not CpuSet.parse(" ")

    def test_parse_errors(self):
        for bad in ("a", "3-1", "1,,2", "1-x"):
            with pytest.raises(TopologyError):
                CpuSet.parse(bad)

    def test_negative_rejected(self):
        with pytest.raises(TopologyError):
            CpuSet([-1])

    def test_dedup_and_order(self):
        assert CpuSet([3, 1, 3, 2]).as_tuple() == (1, 2, 3)

    def test_algebra(self):
        a = CpuSet([0, 1, 2])
        b = CpuSet([2, 3])
        assert (a | b).as_tuple() == (0, 1, 2, 3)
        assert (a & b).as_tuple() == (2,)
        assert (a - b).as_tuple() == (0, 1)
        assert CpuSet([0]).issubset(a)
        assert a.isdisjoint(CpuSet([9]))

    def test_range(self):
        assert CpuSet.range(2, 5).as_tuple() == (2, 3, 4)

    def test_immutable_and_hashable(self):
        s = CpuSet([1, 2])
        with pytest.raises(AttributeError):
            s._cpus = ()
        assert hash(CpuSet([1, 2])) == hash(s)


@given(cpus=st.lists(st.integers(min_value=0, max_value=300), max_size=40))
@settings(max_examples=100)
def test_cpuset_roundtrip_property(cpus):
    s = CpuSet(cpus)
    assert CpuSet.parse(str(s)) == s
    assert len(s) == len(set(cpus))


@given(
    a=st.lists(st.integers(min_value=0, max_value=64), max_size=20),
    b=st.lists(st.integers(min_value=0, max_value=64), max_size=20),
)
@settings(max_examples=100)
def test_cpuset_algebra_matches_set_semantics(a, b):
    sa, sb = CpuSet(a), CpuSet(b)
    assert set(sa | sb) == set(a) | set(b)
    assert set(sa & sb) == set(a) & set(b)
    assert set(sa - sb) == set(a) - set(b)
