"""Tests for the EPCC benchmark machinery and drivers."""

import numpy as np
import pytest

from repro.bench import (
    BabelStream,
    BabelStreamParams,
    Schedbench,
    SchedbenchParams,
    Syncbench,
    SyncbenchParams,
    epcc_stats,
    get_benchmark,
    available_benchmarks,
    target_innerreps,
)
from repro.errors import BenchmarkError
from repro.omp import OMPEnvironment
from repro.omp.runtime import OpenMPRuntime
from repro.platform import toy, vera
from repro.rng import RngFactory
from repro.types import ProcBind, ScheduleKind, StreamKernel, SyncConstruct
from repro.units import ms, us


def make_ctx(platform, n_threads=4, bound=True, run_index=0, seed=5, horizon=2.0,
              places="cores"):
    env = OMPEnvironment(
        num_threads=n_threads,
        places=places if bound else None,
        proc_bind=ProcBind.CLOSE if bound else ProcBind.FALSE,
    )
    rt = OpenMPRuntime(platform, env)
    return rt.start_run(run_index, RngFactory(seed), horizon)


class TestEpccCommon:
    def test_stats_fields(self):
        s = epcc_stats(np.asarray([1.0, 2.0, 3.0]))
        assert s.mean == 2.0
        assert s.n == 3
        assert s.norm_min == pytest.approx(0.5)
        assert s.norm_max == pytest.approx(1.5)

    def test_outlier_counting(self):
        x = np.ones(100)
        x[3] = 50.0
        assert epcc_stats(x).n_outliers == 1

    def test_stats_validation(self):
        with pytest.raises(BenchmarkError):
            epcc_stats(np.asarray([]))
        with pytest.raises(BenchmarkError):
            epcc_stats(np.asarray([-1.0]))

    def test_target_innerreps_power_of_two(self):
        reps = target_innerreps(us(1000), us(8))
        assert reps == 128
        assert reps & (reps - 1) == 0

    def test_target_innerreps_minimum_one(self):
        assert target_innerreps(us(1), us(100)) == 1

    def test_target_innerreps_validation(self):
        with pytest.raises(BenchmarkError):
            target_innerreps(0.0, 1.0)
        with pytest.raises(BenchmarkError):
            target_innerreps(1.0, 0.0)


class TestSyncbench:
    def test_measure_shapes(self):
        ctx = make_ctx(toy())
        bench = Syncbench(SyncbenchParams(outer_reps=12))
        m = bench.measure(ctx, SyncConstruct.BARRIER)
        assert m.rep_times.shape == (12,)
        assert np.all(m.rep_times > 0)
        assert m.innerreps >= 1
        assert m.overheads.shape == (12,)

    def test_cursor_advances(self):
        ctx = make_ctx(toy())
        bench = Syncbench(SyncbenchParams(outer_reps=5))
        t0 = ctx.t
        bench.measure(ctx, SyncConstruct.BARRIER)
        assert ctx.t > t0

    def test_reduction_slower_than_barrier(self):
        ctx = make_ctx(toy(), n_threads=8)
        bench = Syncbench(SyncbenchParams(outer_reps=10))
        red = bench.measure(ctx, SyncConstruct.REDUCTION)
        bar = bench.measure(ctx, SyncConstruct.BARRIER)
        # overhead per construct instance: reduction >> barrier
        assert red.overhead_stats.mean > bar.overhead_stats.mean

    def test_measure_all(self):
        ctx = make_ctx(toy(), horizon=5.0)
        bench = Syncbench(SyncbenchParams(outer_reps=4))
        out = bench.measure_all(
            ctx, (SyncConstruct.BARRIER, SyncConstruct.CRITICAL)
        )
        assert set(out) == {SyncConstruct.BARRIER, SyncConstruct.CRITICAL}

    def test_determinism(self):
        p = toy()
        bench = Syncbench(SyncbenchParams(outer_reps=8))
        a = bench.measure(make_ctx(p, seed=3), SyncConstruct.SINGLE)
        b = bench.measure(make_ctx(p, seed=3), SyncConstruct.SINGLE)
        np.testing.assert_array_equal(a.rep_times, b.rep_times)

    def test_different_seeds_differ(self):
        p = toy()
        bench = Syncbench(SyncbenchParams(outer_reps=8))
        a = bench.measure(make_ctx(p, seed=3), SyncConstruct.SINGLE)
        b = bench.measure(make_ctx(p, seed=4), SyncConstruct.SINGLE)
        assert not np.array_equal(a.rep_times, b.rep_times)

    def test_params_validation(self):
        with pytest.raises(BenchmarkError):
            SyncbenchParams(outer_reps=0)
        with pytest.raises(BenchmarkError):
            SyncbenchParams(test_time=0.0)
        with pytest.raises(BenchmarkError):
            SyncbenchParams(smt_efficiency=0.0)

    def test_unbound_team_reforks(self):
        ctx = make_ctx(toy(), bound=False)
        bench = Syncbench(SyncbenchParams(outer_reps=6))
        m = bench.measure(ctx, SyncConstruct.PARALLEL)
        assert m.rep_times.shape == (6,)


class TestSchedbench:
    def test_table1_defaults(self):
        p = SchedbenchParams()
        assert p.outer_reps == 100
        assert p.delay_time == pytest.approx(us(15))
        assert p.itersperthr == 8192

    def test_measure_static(self):
        ctx = make_ctx(toy(), horizon=60.0)
        bench = Schedbench(SchedbenchParams(outer_reps=5, itersperthr=256))
        m = bench.measure(ctx, ScheduleKind.STATIC)
        assert m.label == "static"
        assert m.rep_times.shape == (5,)
        # 256 iters x 15us at calibration, derated by all-core boost
        assert m.stats.mean > 256 * us(15) * 0.9

    def test_dynamic_slower_than_static(self):
        ctx = make_ctx(toy(), horizon=60.0)
        bench = Schedbench(SchedbenchParams(outer_reps=5, itersperthr=256))
        st = bench.measure(ctx, ScheduleKind.STATIC)
        dy = bench.measure(ctx, ScheduleKind.DYNAMIC, 1)
        assert dy.stats.mean > st.stats.mean

    def test_labels(self):
        ctx = make_ctx(toy(), horizon=120.0)
        bench = Schedbench(SchedbenchParams(outer_reps=2, itersperthr=64))
        suite = bench.measure_suite(ctx)
        assert set(suite) == {"static", "static_1", "dynamic_1", "guided_1"}

    def test_params_validation(self):
        with pytest.raises(BenchmarkError):
            SchedbenchParams(outer_reps=0)
        with pytest.raises(BenchmarkError):
            SchedbenchParams(itersperthr=-1)
        with pytest.raises(BenchmarkError):
            SchedbenchParams(smt_efficiency=1.5)

    def test_vera_4thread_calibration(self):
        """Table 2: Vera @ 4 threads ~ 136.5 ms (+-2%)."""
        plat = vera()
        env = OMPEnvironment(num_threads=4, places="cores", proc_bind=ProcBind.CLOSE)
        rt = OpenMPRuntime(plat, env)
        bench = Schedbench(SchedbenchParams(outer_reps=10))
        ctx = rt.start_run(0, RngFactory(42), horizon=bench.horizon_estimate(4))
        m = bench.measure(ctx, ScheduleKind.DYNAMIC, 1)
        assert m.stats.mean == pytest.approx(ms(136.5), rel=0.02)


class TestBabelStream:
    def test_paper_array_size(self):
        p = BabelStreamParams()
        assert p.array_size == 2**25
        assert p.array_bytes == 256 * 2**20

    def test_kernel_bytes(self):
        p = BabelStreamParams()
        assert p.kernel_bytes(StreamKernel.COPY) == 2 * p.array_bytes
        assert p.kernel_bytes(StreamKernel.TRIAD) == 3 * p.array_bytes

    def test_run_shapes(self):
        ctx = make_ctx(toy(), horizon=30.0)
        bench = BabelStream(BabelStreamParams(num_times=7))
        sm = bench.run(ctx)
        for kernel in StreamKernel:
            assert sm.times[kernel].shape == (7,)
            assert np.all(sm.times[kernel] > 0)

    def test_add_triad_slower_than_copy(self):
        ctx = make_ctx(toy(), horizon=30.0)
        bench = BabelStream(BabelStreamParams(num_times=5))
        sm = bench.run(ctx)
        assert sm.times[StreamKernel.ADD].mean() > sm.times[StreamKernel.COPY].mean()

    def test_normalized_min_max_brackets_one(self):
        ctx = make_ctx(toy(), horizon=30.0)
        bench = BabelStream(BabelStreamParams(num_times=10))
        sm = bench.run(ctx)
        lo, hi = sm.normalized_min_max(StreamKernel.TRIAD)
        assert lo <= 1.0 <= hi

    def test_bandwidth_positive(self):
        ctx = make_ctx(toy(), horizon=30.0)
        bench = BabelStream(BabelStreamParams(num_times=5))
        sm = bench.run(ctx)
        assert sm.bandwidth(StreamKernel.COPY, bench.params) > 1e9

    def test_more_threads_faster(self):
        plat = toy()
        bench = BabelStream(BabelStreamParams(num_times=5))
        t2 = bench.run(make_ctx(plat, n_threads=2, horizon=60.0))
        t8 = bench.run(make_ctx(plat, n_threads=8, horizon=60.0))
        assert (
            t8.times[StreamKernel.COPY].mean() < t2.times[StreamKernel.COPY].mean()
        )

    def test_params_validation(self):
        with pytest.raises(BenchmarkError):
            BabelStreamParams(array_size=0)
        with pytest.raises(BenchmarkError):
            BabelStreamParams(num_times=0)


class TestRegistry:
    def test_lookup(self):
        assert type(get_benchmark("syncbench")).__name__ == "Syncbench"
        assert type(get_benchmark("SCHEDBENCH")).__name__ == "Schedbench"
        assert type(get_benchmark("babelstream")).__name__ == "BabelStream"

    def test_unknown(self):
        with pytest.raises(BenchmarkError):
            get_benchmark("linpack")

    def test_available(self):
        assert set(available_benchmarks()) == {
            "babelstream", "schedbench", "syncbench", "taskbench",
        }
