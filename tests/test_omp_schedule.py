"""Tests for worksharing-loop schedule models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.omp.schedule import ScheduleCostParams, chunk_sequence, plan_loop
from repro.types import ScheduleKind
from repro.units import us


class TestChunkSequence:
    def test_static_unchunked_blocks(self):
        chunks = chunk_sequence(ScheduleKind.STATIC, 10, 4, None)
        assert chunks == [3, 3, 2, 2]
        assert sum(chunks) == 10

    def test_static_unchunked_fewer_iters_than_threads(self):
        chunks = chunk_sequence(ScheduleKind.STATIC, 2, 4, None)
        assert chunks == [1, 1]

    def test_static_chunked(self):
        chunks = chunk_sequence(ScheduleKind.STATIC, 10, 4, 3)
        assert chunks == [3, 3, 3, 1]

    def test_dynamic_chunk1(self):
        chunks = chunk_sequence(ScheduleKind.DYNAMIC, 5, 2, 1)
        assert chunks == [1] * 5

    def test_dynamic_default_chunk_is_1(self):
        assert chunk_sequence(ScheduleKind.DYNAMIC, 3, 2, None) == [1, 1, 1]

    def test_guided_decays(self):
        chunks = chunk_sequence(ScheduleKind.GUIDED, 100, 4, 1)
        assert sum(chunks) == 100
        assert chunks[0] == 25  # ceil(100/4)
        assert all(a >= b for a, b in zip(chunks, chunks[1:]))

    def test_guided_respects_min_chunk(self):
        chunks = chunk_sequence(ScheduleKind.GUIDED, 100, 4, 10)
        assert all(c >= 10 for c in chunks[:-1])
        assert sum(chunks) == 100

    def test_validation(self):
        with pytest.raises(ScheduleError):
            chunk_sequence(ScheduleKind.STATIC, 0, 4, None)
        with pytest.raises(ScheduleError):
            chunk_sequence(ScheduleKind.STATIC, 10, 0, None)
        with pytest.raises(ScheduleError):
            chunk_sequence(ScheduleKind.DYNAMIC, 10, 4, 0)


@given(
    kind=st.sampled_from(list(ScheduleKind)),
    total=st.integers(min_value=1, max_value=5000),
    n=st.integers(min_value=1, max_value=64),
    chunk=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
)
@settings(max_examples=200)
def test_chunks_partition_iteration_space(kind, total, n, chunk):
    chunks = chunk_sequence(kind, total, n, chunk)
    assert sum(chunks) == total
    assert all(c > 0 for c in chunks)


class TestScheduleCostParams:
    def test_latency_grows_with_threads(self):
        p = ScheduleCostParams()
        assert p.dequeue_latency(254) > p.dequeue_latency(4)
        assert p.queue_service(254) > p.queue_service(4)

    def test_validation(self):
        with pytest.raises(ScheduleError):
            ScheduleCostParams(lat_base=-1.0)


class TestPlanLoop:
    def setup_method(self):
        self.params = ScheduleCostParams()

    def test_static_exact_partition(self):
        plan = plan_loop(ScheduleKind.STATIC, 100, 4, None, us(10), self.params)
        assert plan.per_thread_work.sum() == pytest.approx(100 * us(10))
        assert plan.queue_serialization == 0.0
        assert plan.n_chunks == 4

    def test_static_chunked_balance(self):
        plan = plan_loop(ScheduleKind.STATIC, 1000, 4, 1, us(1), self.params)
        np.testing.assert_allclose(plan.per_thread_work, 250 * us(1))

    def test_dynamic_overhead_scales_with_chunks(self):
        fine = plan_loop(ScheduleKind.DYNAMIC, 1000, 4, 1, us(1), self.params)
        coarse = plan_loop(ScheduleKind.DYNAMIC, 1000, 4, 100, us(1), self.params)
        assert fine.per_thread_overhead[0] > coarse.per_thread_overhead[0]
        assert fine.queue_serialization > coarse.queue_serialization

    def test_dynamic_queue_floor(self):
        plan = plan_loop(ScheduleKind.DYNAMIC, 10_000, 64, 1, 0.0, self.params)
        assert plan.queue_serialization == pytest.approx(
            10_000 * self.params.queue_service(64)
        )

    def test_guided_fewer_chunks_than_dynamic(self):
        dyn = plan_loop(ScheduleKind.DYNAMIC, 10_000, 8, 1, us(1), self.params)
        gui = plan_loop(ScheduleKind.GUIDED, 10_000, 8, 1, us(1), self.params)
        assert gui.n_chunks < dyn.n_chunks
        assert gui.queue_serialization < dyn.queue_serialization

    def test_makespan_estimate(self):
        plan = plan_loop(ScheduleKind.STATIC, 100, 4, None, us(10), self.params)
        assert plan.makespan_estimate == pytest.approx(25 * us(10), rel=0.01)

    def test_negative_work_rejected(self):
        with pytest.raises(ScheduleError):
            plan_loop(ScheduleKind.STATIC, 10, 2, None, -1.0, self.params)


class TestTable2Calibration:
    """The dequeue-cost law must land in the Table 2 ballpark (see platform)."""

    def test_dardel_4_thread_overhead(self):
        from repro.platform import dardel

        p = dardel().sched_cost_params
        # 8192 dequeues x dequeue_latency(4) ~ 1.0 ms
        overhead = 8192 * p.dequeue_latency(4)
        assert 0.8e-3 < overhead < 1.4e-3

    def test_dardel_254_thread_overhead(self):
        from repro.platform import dardel

        p = dardel().sched_cost_params
        # with the cross-socket latency factor (1.3 at 254 threads) this
        # lands at the ~5 ms Table 2 requires
        overhead = 8192 * p.dequeue_latency(254) * 1.3
        assert 4.5e-3 < overhead < 6.5e-3

    def test_queue_not_binding_at_254(self):
        from repro.platform import dardel

        p = dardel().sched_cost_params
        # queue serialization must stay below the ~154 ms compute time
        assert 8192 * 254 * p.queue_service(254) < 0.150
