"""Tests for the OS scheduler model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.rng import RngFactory
from repro.sched import (
    BalancerModel,
    MigrationModel,
    RunqueueState,
    SchedParams,
    SchedulerModel,
    WakeupPlacer,
)
from repro.topology import TopologyBuilder, dardel_topology
from repro.units import ms, us


@pytest.fixture
def machine():
    return TopologyBuilder("toy").add_sockets(2, 1, 4, smt=2).build()  # 16 cpus


class TestSchedParams:
    def test_defaults_valid(self):
        SchedParams()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SchedParams(wake_ipi_cost=-1.0)
        with pytest.raises(ConfigurationError):
            SchedParams(stacking_prob_per_thread=2.0)
        with pytest.raises(ConfigurationError):
            SchedParams(stacking_share=0.0)
        with pytest.raises(ConfigurationError):
            SchedParams(sched_delay_median=0.0)
        with pytest.raises(ConfigurationError):
            SchedParams(fork_wake_fraction=1.5)


class TestRunqueueState:
    def test_add_remove(self, machine):
        rq = RunqueueState(machine)
        rq.add(3)
        rq.add(3)
        assert rq.nr_running(3) == 2
        rq.remove(3)
        assert rq.nr_running(3) == 1

    def test_remove_too_many(self, machine):
        rq = RunqueueState(machine)
        with pytest.raises(SimulationError):
            rq.remove(0)

    def test_move(self, machine):
        rq = RunqueueState(machine)
        rq.add(0)
        rq.move(0, 5)
        assert rq.nr_running(0) == 0
        assert rq.nr_running(5) == 1

    def test_idle_queries(self, machine):
        rq = RunqueueState(machine)
        rq.add(0)  # core 0 busy on thread0
        assert 0 not in rq.idle_cpus()
        assert 8 in rq.idle_cpus()  # sibling idle
        assert 0 not in rq.idle_cores()
        assert 1 in rq.idle_cores()

    def test_stacked(self, machine):
        rq = RunqueueState(machine)
        rq.add(2)
        rq.add(2)
        assert rq.stacked_cpus() == [2]

    def test_load_fraction(self, machine):
        rq = RunqueueState(machine)
        assert rq.load_fraction() == 0.0
        for c in range(8):
            rq.add(c)
        assert rq.load_fraction() == pytest.approx(0.5)

    def test_bad_cpu(self, machine):
        with pytest.raises(SimulationError):
            RunqueueState(machine).add(99)


class TestWakeupPlacer:
    def test_prefers_idle_core_same_numa(self, machine):
        params = SchedParams(stacking_prob_per_thread=0.0)
        placer = WakeupPlacer(machine, params)
        rq = RunqueueState(machine)
        rq.add(0)  # waker on cpu 0 (socket 0: cpus 0-3 + siblings 8-11)
        rng = RngFactory(1).stream("wake")
        for _ in range(20):
            cpu = placer.place_one(0, rq, rng)
            # an idle core's thread0 in the waker's NUMA domain (socket0)
            assert cpu in {1, 2, 3}

    def test_no_stacking_when_disabled_and_idle_exists(self, machine):
        params = SchedParams(stacking_prob_per_thread=0.0)
        placer = WakeupPlacer(machine, params)
        rng = RngFactory(2).stream("wake")
        cpus = placer.place_team(8, master_cpu=0, rng=rng)
        assert len(set(cpus)) == 8  # no two threads share a cpu

    def test_team_fills_cores_before_siblings(self, machine):
        params = SchedParams(stacking_prob_per_thread=0.0)
        placer = WakeupPlacer(machine, params)
        rng = RngFactory(3).stream("wake")
        cpus = placer.place_team(8, master_cpu=0, rng=rng)
        cores = {machine.hwthread(c).core_id for c in cpus}
        assert len(cores) == 8  # one thread per core when cores suffice

    def test_oversubscription_stacks(self, machine):
        params = SchedParams(stacking_prob_per_thread=0.0)
        placer = WakeupPlacer(machine, params)
        rng = RngFactory(4).stream("wake")
        cpus = placer.place_team(20, master_cpu=0, rng=rng)  # > 16 cpus
        assert len(cpus) == 20
        counts = {}
        for c in cpus:
            counts[c] = counts.get(c, 0) + 1
        assert max(counts.values()) >= 2

    def test_stacking_shortcut_occurs(self, machine):
        params = SchedParams(stacking_prob_per_thread=0.5)
        placer = WakeupPlacer(machine, params)
        rng = RngFactory(5).stream("wake")
        stacked_runs = 0
        for i in range(30):
            cpus = placer.place_team(8, master_cpu=0, rng=rng)
            if len(set(cpus)) < 8:
                stacked_runs += 1
        assert stacked_runs > 5


class TestBalancer:
    def test_no_episodes_without_stacking(self):
        b = BalancerModel(SchedParams())
        eps = b.episodes_for_placement([0, 1, 2], 0.0, RngFactory(1).stream("b"))
        assert eps == []

    def test_episodes_for_stacked_threads(self):
        b = BalancerModel(SchedParams())
        eps = b.episodes_for_placement([0, 1, 1], 5.0, RngFactory(2).stream("b"))
        assert {e.thread for e in eps} == {1, 2}
        for e in eps:
            assert e.start == 5.0
            assert e.duration > 0
            assert e.share == pytest.approx(0.5)
            assert e.slowdown_factor() == pytest.approx(2.0)

    def test_triple_stacking_lower_share(self):
        b = BalancerModel(SchedParams())
        eps = b.episodes_for_placement([0, 1, 1, 1], 0.0, RngFactory(3).stream("b"))
        assert {e.thread for e in eps} == {1, 2, 3}
        for e in eps:
            assert e.share <= 0.5

    def test_episode_duration_scale(self):
        params = SchedParams(balance_latency_median=ms(10), balance_latency_sigma=0.5)
        b = BalancerModel(params)
        rng = RngFactory(4).stream("b")
        durations = [b.episode_duration(rng) for _ in range(500)]
        assert ms(5) < float(np.median(durations)) < ms(20)


class TestMigrationModel:
    def test_rate(self, machine):
        params = SchedParams(migration_rate_unbound=2.0)
        m = MigrationModel(machine, params)
        rng = RngFactory(5).stream("mig")
        events = m.sample([0, 1, 2, 3], 0.0, 10.0, rng)
        # expect ~ 4 threads * 2/s * 10s = 80
        assert 50 < len(events) < 115
        assert events == sorted(events, key=lambda e: e.t)

    def test_zero_rate(self, machine):
        params = SchedParams(migration_rate_unbound=0.0)
        m = MigrationModel(machine, params)
        assert m.sample([0], 0.0, 100.0, RngFactory(1).stream("m")) == []

    def test_destination_outside_team(self, machine):
        params = SchedParams(migration_rate_unbound=5.0)
        m = MigrationModel(machine, params)
        team = [0, 1, 2, 3]
        events = m.sample(team, 0.0, 5.0, RngFactory(6).stream("m"))
        for e in events:
            assert e.dst_cpu not in set(team)
            assert e.penalty == params.migration_penalty

    def test_expected_migrations(self, machine):
        params = SchedParams(migration_rate_unbound=0.5)
        m = MigrationModel(machine, params)
        assert m.expected_migrations(8, 10.0) == pytest.approx(40.0)


class TestSchedulerModel:
    def test_fork_bound_keeps_cpus(self, machine):
        model = SchedulerModel(machine)
        out = model.fork_bound([0, 1, 2, 3], RngFactory(7).stream("f"))
        assert out.cpus == (0, 1, 2, 3)
        assert out.episodes == ()
        assert out.wake_delays[0] == 0.0  # master never pays wake
        assert np.all(out.wake_delays >= 0)

    def test_fork_unbound_places_team(self, machine):
        model = SchedulerModel(machine, SchedParams(stacking_prob_per_thread=0.0))
        out = model.fork_unbound(8, master_cpu=0, t_start=0.0,
                                 rng=RngFactory(8).stream("f"))
        assert out.n_threads == 8
        assert out.cpus[0] == 0
        assert out.stacked_threads() == ()

    def test_fork_unbound_stacking_adds_delay(self, machine):
        model = SchedulerModel(machine, SchedParams(stacking_prob_per_thread=1.0))
        out = model.fork_unbound(8, master_cpu=0, t_start=0.0,
                                 rng=RngFactory(9).stream("f"))
        assert out.episodes  # everything stacked
        stacked = [t for t in out.stacked_threads() if t != 0]
        assert any(out.wake_delays[t] > us(100) for t in stacked)

    def test_determinism(self, machine):
        model = SchedulerModel(machine)
        a = model.fork_unbound(8, 0, 0.0, RngFactory(10).stream("f"))
        b = model.fork_unbound(8, 0, 0.0, RngFactory(10).stream("f"))
        assert a.cpus == b.cpus
        np.testing.assert_array_equal(a.wake_delays, b.wake_delays)

    def test_dardel_scale_placement(self):
        machine = dardel_topology()
        model = SchedulerModel(machine, SchedParams(stacking_prob_per_thread=0.0))
        out = model.fork_unbound(128, master_cpu=0, t_start=0.0,
                                 rng=RngFactory(11).stream("f"))
        # 128 threads on 128 cores: every thread gets its own core
        cores = {machine.hwthread(c).core_id for c in out.cpus}
        assert len(cores) == 128
