"""Tests for the parallel-region executor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.freq.dvfs import FrequencyModel
from repro.freq.governor import PerformanceGovernor
from repro.omp import NoiseMode, RegionExecutor, RegionParams, Team
from repro.osnoise.model import NoiseModel, NoiseRealization, PlacedEvent
from repro.osnoise.source import PoissonSource
from repro.osnoise.placement import PinnedPlacement
from repro.platform import toy
from repro.rng import RngFactory
from repro.sched.balancer import StackingEpisode
from repro.units import ms, us


@pytest.fixture
def platform():
    return toy()


def make_executor(platform, busy_cpus, noise_events=(), horizon=10.0):
    """Executor with a deterministic noise realization."""
    model = FrequencyModel(platform.machine, platform.freq_spec)
    plan = model.plan(0.0, horizon, busy_cpus, PerformanceGovernor(),
                      RngFactory(1).stream("freq"))
    noise = NoiseRealization(platform.machine, list(noise_events))
    return RegionExecutor(plan, noise, platform.region_params), plan


class TestPureCompute:
    def test_duration_matches_frequency(self, platform):
        # 2 active cores -> 3.0 GHz; calibration = 3.0 GHz -> work unchanged
        ex, plan = make_executor(platform, [0, 1])
        team = Team(platform.machine, (0, 1), bound=True)
        res = ex.execute(0.0, team, np.asarray([ms(1), ms(1)]))
        assert res.duration == pytest.approx(ms(1), rel=1e-6)

    def test_boost_derates_many_cores(self, platform):
        # 8 active cores -> 2.2 GHz vs calibration 3.0 GHz
        cpus = list(range(8))
        ex, plan = make_executor(platform, cpus)
        team = Team(platform.machine, tuple(cpus), bound=True)
        res = ex.execute(0.0, team, np.full(8, ms(1)))
        assert res.duration == pytest.approx(ms(1) * 3.0 / 2.2, rel=1e-3)

    def test_slowest_thread_dominates(self, platform):
        ex, _ = make_executor(platform, [0, 1])
        team = Team(platform.machine, (0, 1), bound=True)
        res = ex.execute(0.0, team, np.asarray([ms(1), ms(3)]))
        assert res.duration == pytest.approx(ms(3), rel=1e-6)

    def test_zero_work(self, platform):
        ex, _ = make_executor(platform, [0])
        team = Team(platform.machine, (0,), bound=True)
        res = ex.execute(5.0, team, np.asarray([0.0]))
        assert res.duration == 0.0
        assert res.start == 5.0

    def test_work_shape_validated(self, platform):
        ex, _ = make_executor(platform, [0, 1])
        team = Team(platform.machine, (0, 1), bound=True)
        with pytest.raises(SimulationError):
            ex.execute(0.0, team, np.asarray([ms(1)]))


class TestSMTSharing:
    def test_mt_team_slower(self, platform):
        m = platform.machine
        st_team = Team(m, (0, 1), bound=True)
        mt_team = Team(m, (0, 8), bound=True)  # same core
        ex_st, _ = make_executor(platform, [0, 1])
        ex_mt, _ = make_executor(platform, [0, 8])
        work = np.full(2, ms(1))
        d_st = ex_st.execute(0.0, st_team, work).duration
        d_mt = ex_mt.execute(0.0, mt_team, work).duration
        assert d_mt > d_st / platform.region_params.smt_efficiency * 0.9
        assert d_mt > d_st


class TestNoiseAggregation:
    def make_noise(self, machine, events):
        return NoiseRealization(machine, events)

    def test_max_mode_single_thread_noise(self, platform):
        m = platform.machine
        events = [PlacedEvent(start=us(100), duration=us(200), kind="daemon", cpu=0)]
        ex, _ = make_executor(platform, [0, 1], noise_events=events)
        team = Team(m, (0, 1), bound=True)
        res = ex.execute(0.0, team, np.full(2, ms(1)), noise_mode=NoiseMode.MAX)
        assert res.duration == pytest.approx(ms(1) + us(200), rel=1e-3)

    def test_max_mode_takes_worst_thread(self, platform):
        m = platform.machine
        events = [
            PlacedEvent(us(10), us(100), "daemon", cpu=0),
            PlacedEvent(us(10), us(300), "daemon", cpu=1),
        ]
        ex, _ = make_executor(platform, [0, 1], noise_events=events)
        team = Team(m, (0, 1), bound=True)
        res = ex.execute(0.0, team, np.full(2, ms(1)), noise_mode=NoiseMode.MAX)
        assert res.duration == pytest.approx(ms(1) + us(300), rel=1e-3)

    def test_sync_sum_adds_all(self, platform):
        m = platform.machine
        events = [
            PlacedEvent(us(10), us(100), "daemon", cpu=0),
            PlacedEvent(us(10), us(300), "daemon", cpu=1),
        ]
        ex, _ = make_executor(platform, [0, 1], noise_events=events)
        team = Team(m, (0, 1), bound=True)
        res = ex.execute(0.0, team, np.full(2, ms(1)), noise_mode=NoiseMode.SYNC_SUM)
        kappa = platform.region_params.sync_noise_kappa
        assert res.duration == pytest.approx(ms(1) + kappa * us(400), rel=1e-3)

    def test_balanced_spreads_noise(self, platform):
        m = platform.machine
        events = [PlacedEvent(us(10), us(400), "daemon", cpu=0)]
        ex, _ = make_executor(platform, [0, 1], noise_events=events)
        team = Team(m, (0, 1), bound=True)
        res = ex.execute(0.0, team, np.full(2, ms(1)), noise_mode=NoiseMode.BALANCED)
        assert res.duration == pytest.approx(ms(1) + us(200), rel=1e-3)

    def test_noise_outside_window_ignored(self, platform):
        m = platform.machine
        events = [PlacedEvent(start=5.0, duration=us(500), kind="daemon", cpu=0)]
        ex, _ = make_executor(platform, [0], noise_events=events)
        team = Team(m, (0,), bound=True)
        res = ex.execute(0.0, team, np.asarray([ms(1)]))
        assert res.duration == pytest.approx(ms(1), rel=1e-3)

    def test_sibling_pressure_slows(self, platform):
        m = platform.machine
        # noise on cpu 8 = sibling of team thread on cpu 0
        events = [PlacedEvent(us(10), us(400), "daemon", cpu=8)]
        ex, _ = make_executor(platform, [0], noise_events=events)
        team = Team(m, (0,), bound=True)
        res = ex.execute(0.0, team, np.asarray([ms(1)]))
        expected_extra = platform.region_params.smt_noise_penalty * us(400)
        assert res.duration == pytest.approx(ms(1) + expected_extra, rel=1e-2)


class TestSchedulerArtifacts:
    def test_wake_delays_shift_arrival(self, platform):
        ex, _ = make_executor(platform, [0, 1])
        team = Team(platform.machine, (0, 1), bound=True)
        res = ex.execute(
            0.0, team, np.full(2, ms(1)), wake_delays=np.asarray([0.0, us(500)])
        )
        assert res.duration == pytest.approx(ms(1) + us(500), rel=1e-3)

    def test_stacking_episode_slows_thread(self, platform):
        ex, _ = make_executor(platform, [0, 1])
        team = Team(platform.machine, (0, 1), bound=True)
        ep = StackingEpisode(thread=1, start=0.0, duration=ms(10), share=0.5)
        res = ex.execute(0.0, team, np.full(2, ms(1)), stacking_episodes=(ep,))
        # thread 1 runs at half speed for its whole 1 ms of work
        assert res.duration > ms(1.8)
        assert res.stacking_seconds > 0

    def test_queue_floor_binds(self, platform):
        ex, _ = make_executor(platform, [0, 1])
        team = Team(platform.machine, (0, 1), bound=True)
        res = ex.execute(0.0, team, np.full(2, ms(1)), queue_floor=ms(5))
        assert res.duration == pytest.approx(ms(5), rel=1e-6)

    def test_barrier_cost_added(self, platform):
        ex, _ = make_executor(platform, [0, 1])
        team = Team(platform.machine, (0, 1), bound=True)
        res = ex.execute(0.0, team, np.full(2, ms(1)), barrier_cost=us(5))
        assert res.duration == pytest.approx(ms(1) + us(5), rel=1e-3)

    def test_sync_overhead_frequency_scaled(self, platform):
        # 8 active cores -> 2.2 GHz vs 3.0 GHz calibration
        cpus = list(range(8))
        ex, _ = make_executor(platform, cpus)
        team = Team(platform.machine, tuple(cpus), bound=True)
        res = ex.execute(0.0, team, np.zeros(8), sync_overhead=ms(1))
        assert res.duration == pytest.approx(ms(1) * 3.0 / 2.2, rel=1e-3)


class TestRegionParams:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RegionParams(smt_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            RegionParams(smt_noise_penalty=1.5)
        with pytest.raises(ConfigurationError):
            RegionParams(sync_noise_kappa=-0.1)
