"""Tests for the job service (``repro.serve``).

Four layers: the job-spec schema (validation errors naming fields, the
clause whitelist, spec <-> Study parity with the sweep CLI, and the
per-experiment round-trip guarantee), job lifecycle plumbing (ids,
persistence, the dedup-aware queue), the governor (token buckets with an
injected clock), and the whole service end-to-end over real HTTP on an
ephemeral port — records byte-identity, SSE progress, dedup sharing, and
rate limiting.
"""

import json
import threading

import pytest

from repro.cli import _build_parser, _build_sweep_study
from repro.errors import JobSpecError, ServiceError
from repro.harness.cache import ResultCache, cache_key
from repro.harness.config import ExperimentConfig
from repro.harness.experiments import EXPERIMENTS
from repro.harness.study import Study
from repro.serve import (
    Job,
    JobQueue,
    JobService,
    JobStore,
    TokenBucket,
    create_http_server,
    spec_from_study,
    spec_to_study,
    validate_spec,
)
from repro.serve.client import ServiceClient, parse_sse
from repro.serve.jobs import job_id_for
from repro.serve.jobspec import compile_clause, reps_key, spec_fingerprint


def canonical_configs(study: Study) -> str:
    """Canonical JSON of the expanded config list (byte-comparable)."""
    return json.dumps(
        [cfg.to_dict() for cfg in study.configs()], sort_keys=True
    )


SWEEP_SPEC = {
    "kind": "sweep",
    "base": {"platform": "vera", "benchmark": "syncbench", "runs": 2,
             "seed": 42},
    "axes": [{"kind": "grid", "axes": {"num_threads": [2, 4]}}],
    "reps": 3,
}


# ---------------------------------------------------------------------------
# jobspec: validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_minimal_sweep_spec_normalizes(self):
        out = validate_spec(SWEEP_SPEC)
        assert out["kind"] == "sweep"
        assert out["name"] == "sweep"
        assert out["axes"][0] == {"kind": "grid", "axes": {"num_threads": [2, 4]}}

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ([], "<root>"),
            ({"kind": "banana"}, "'kind'"),
            ({"bogus": 1}, "'bogus'"),
            ({"base": {"bogus_field": 1}}, "base.bogus_field"),
            ({"base": {"benchmark_params": 3}}, "base.benchmark_params"),
            ({"axes": {"num_threads": [2]}}, "'axes'"),
            ({"axes": [{"kind": "diagonal"}]}, "axes[0].kind"),
            ({"axes": [{"kind": "grid"}]}, "axes[0].axes"),
            ({"axes": [{"kind": "grid", "axes": {}}]}, "axes[0].axes"),
            ({"axes": [{"kind": "grid", "axes": {"num_threads": []}}]},
             "axes[0].axes.num_threads"),
            ({"axes": [{"kind": "grid", "axes": {"k": [1]}, "points": []}]},
             "axes[0].points"),
            ({"axes": [{"kind": "zip",
                        "axes": {"a": [1, 2], "b": [1]}}]}, "axes[0].axes"),
            ({"axes": [{"kind": "cases", "points": []}]}, "axes[0].points"),
            ({"axes": [{"kind": "cases", "points": ["x"]}]},
             "axes[0].points[0]"),
            ({"axes": [{"kind": "grid", "axes": {"num_threads": [2]}},
                       {"kind": "cases", "points": [3]}]}, "axes[1].points[0]"),
            ({"reps": 0}, "'reps'"),
            ({"reps": "three"}, "'reps'"),
            ({"backend": "gpu"}, "'backend'"),
            ({"shard": "2"}, "'shard'"),
            ({"derive": {"places": "open("}}, "derive.places"),
            ({"where": "num_threads > 2"}, "'where'"),
            ({"where": ["__import__('os')"]}, "where[0]"),
            ({"kind": "experiment", "experiment": "nope"}, "'experiment'"),
            ({"kind": "experiment", "experiment": "table2", "runs": -1},
             "'runs'"),
        ],
    )
    def test_errors_name_the_offending_field(self, spec, fragment):
        with pytest.raises(JobSpecError, match="job spec") as err:
            validate_spec(spec)
        assert fragment in str(err.value)

    def test_invalid_base_config_value_rejected(self):
        with pytest.raises(JobSpecError, match="proc_bind"):
            validate_spec({"base": {"proc_bind": "sideways"},
                           "axes": [{"kind": "grid",
                                     "axes": {"num_threads": [2]}}]})

    def test_unsatisfiable_where_rejected_at_submit(self):
        with pytest.raises(JobSpecError, match="select"):
            validate_spec({
                "axes": [{"kind": "grid", "axes": {"num_threads": [2]}}],
                "where": ["num_threads > 100"],
            })


# ---------------------------------------------------------------------------
# jobspec: clause expressions
# ---------------------------------------------------------------------------


class TestClauses:
    def test_clause_reads_config_fields(self):
        fn = compile_clause("'big' if num_threads > 4 else 'small'", "derive.x")
        assert fn(ExperimentConfig(num_threads=8)) == "big"
        assert fn(ExperimentConfig(num_threads=2)) == "small"

    def test_clause_resolves_benchmark_params(self):
        fn = compile_clause("outer_reps * 2", "derive.x")
        cfg = ExperimentConfig(benchmark_params={"outer_reps": 21})
        assert fn(cfg) == 42

    def test_membership_and_boolean_logic(self):
        fn = compile_clause(
            "num_threads in (2, 4) and platform == 'vera'", "where[0]"
        )
        assert fn(ExperimentConfig(num_threads=4)) is True
        assert fn(ExperimentConfig(num_threads=8)) is False

    @pytest.mark.parametrize(
        "text", ["open('/etc/passwd')", "config.__class__", "x[0]",
                 "[n for n in (1, 2)]", "lambda: 1", "f'{x}'"]
    )
    def test_disallowed_constructs_rejected(self, text):
        with pytest.raises(JobSpecError, match="whitelist"):
            compile_clause(text, "where[0]")

    def test_syntax_error_names_field(self):
        with pytest.raises(JobSpecError, match="derive.places"):
            compile_clause("1 +", "derive.places")

    def test_unknown_name_raises_at_eval(self):
        fn = compile_clause("warp_factor > 9", "where[0]")
        with pytest.raises(JobSpecError, match="where\\[0\\]"):
            fn(ExperimentConfig())

    def test_derive_and_where_flow_through_study(self):
        spec = validate_spec({
            "base": {"platform": "vera", "benchmark": "syncbench", "runs": 2},
            "axes": [{"kind": "grid", "axes": {"num_threads": [2, 4, 8]}}],
            "derive": {"places": "'threads' if num_threads > 4 else 'cores'"},
            "where": ["num_threads >= 4"],
        })
        configs = spec_to_study(spec).configs()
        assert [c.num_threads for c in configs] == [4, 8]
        assert [c.places for c in configs] == ["cores", "threads"]


# ---------------------------------------------------------------------------
# jobspec: CLI parity and round-trips
# ---------------------------------------------------------------------------


class TestSpecStudyParity:
    def _cli_study(self, argv):
        args = _build_parser().parse_args(["sweep", *argv])
        return _build_sweep_study(args)

    def test_sweep_spec_matches_cli_flags(self):
        """The byte-identity cornerstone: a spec and the equivalent CLI
        flags expand to identical configs, hence identical cache keys."""
        cli = self._cli_study([
            "--grid", "num_threads=2,4", "--grid", "runtime=gnu,llvm",
            "--runs", "2", "--reps", "3", "--seed", "42",
        ])
        spec = validate_spec({
            "base": {"platform": "vera", "benchmark": "syncbench", "runs": 2,
                     "seed": 42},
            "axes": [
                {"kind": "grid", "axes": {"num_threads": [2, 4]}},
                {"kind": "grid", "axes": {"runtime": ["gnu", "llvm"]}},
            ],
            "reps": 3,
        })
        service = spec_to_study(spec)
        assert canonical_configs(service) == canonical_configs(cli)
        assert service.axis_names() == cli.axis_names()
        assert spec_fingerprint(service) == spec_fingerprint(cli)

    def test_zip_axes_match_cli(self):
        cli = self._cli_study([
            "--zip", "schedule=static,dynamic", "--zip", "num_threads=2,4",
            "--runs", "2",
        ])
        service = spec_to_study(validate_spec({
            "base": {"platform": "vera", "benchmark": "syncbench", "runs": 2,
                     "seed": 42},
            "axes": [{"kind": "zip", "axes": {"schedule": ["static", "dynamic"],
                                              "num_threads": [2, 4]}}],
        }))
        assert canonical_configs(service) == canonical_configs(cli)

    def test_reps_key_follows_benchmark(self):
        assert reps_key("babelstream") == "num_times"
        assert reps_key("syncbench") == "outer_reps"
        spec = validate_spec({
            "base": {"runs": 2},
            "axes": [{"kind": "grid",
                      "axes": {"benchmark": ["syncbench", "babelstream"]}}],
            "reps": 7,
        })
        configs = spec_to_study(spec).configs()
        assert configs[0].benchmark_params["outer_reps"] == 7
        assert configs[1].benchmark_params["num_times"] == 7

    def test_declarative_round_trip(self):
        study = (
            Study(ExperimentConfig(platform="vera", runs=2), name="rt")
            .grid(num_threads=(2, 4), runtime=("gnu", "llvm"))
            .zip(schedule=("static", "dynamic"), noise=("default", "quiet"))
            .cases({"proc_bind": "spread"}, {"proc_bind": "close"})
        )
        spec = spec_from_study(study)
        assert [a["kind"] for a in spec["axes"]] == ["grid", "zip", "cases"]
        rebuilt = spec_to_study(validate_spec(spec))
        assert canonical_configs(rebuilt) == canonical_configs(study)
        assert rebuilt.axis_names() == study.axis_names()

    def test_derive_study_requires_fold(self):
        study = Study(ExperimentConfig(runs=2)).grid(num_threads=(2, 4)).derive(
            places=lambda cfg: "cores"
        )
        with pytest.raises(JobSpecError, match="fold"):
            spec_from_study(study, fold=False)
        spec = spec_from_study(study)  # folds automatically
        assert spec["axes"][0]["kind"] == "cases"
        rebuilt = spec_to_study(validate_spec(spec))
        assert canonical_configs(rebuilt) == canonical_configs(study)

    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_every_experiment_round_trips(self, name):
        """Satellite guarantee: each registered experiment's Study
        serializes to the job-spec schema and back to a byte-identical
        expanded config list."""
        study = EXPERIMENTS[name].build_study()
        spec = validate_spec(spec_from_study(study))
        rebuilt = spec_to_study(spec)
        assert canonical_configs(rebuilt) == canonical_configs(study)
        assert spec_fingerprint(rebuilt) == spec_fingerprint(study)

    def test_experiment_spec_kind(self):
        spec = validate_spec({"kind": "experiment", "experiment": "table2",
                              "runs": 2, "reps": 5, "seed": 1})
        study = spec_to_study(spec)
        direct = EXPERIMENTS["table2"].build_study(runs=2, outer_reps=5, seed=1)
        assert canonical_configs(study) == canonical_configs(direct)


# ---------------------------------------------------------------------------
# jobs: identity, persistence, queue
# ---------------------------------------------------------------------------


class TestJobPlumbing:
    def test_job_id_deterministic(self):
        study = spec_to_study(validate_spec(SWEEP_SPEC))
        fp = spec_fingerprint(study)
        assert job_id_for(3, fp) == f"j0003-{fp[:12]}"
        assert spec_fingerprint(spec_to_study(validate_spec(SWEEP_SPEC))) == fp

    def test_fingerprint_ignores_axis_packaging(self):
        """Same work, different spec shape -> same fingerprint (dedup
        keys on content, not notation)."""
        grid = spec_to_study(validate_spec({
            "base": {"runs": 2}, "axes": [
                {"kind": "grid", "axes": {"num_threads": [2, 4]}}],
        }))
        cases = spec_to_study(validate_spec({
            "base": {"runs": 2}, "axes": [
                {"kind": "cases", "points": [{"num_threads": 2},
                                             {"num_threads": 4}]}],
        }))
        assert spec_fingerprint(grid) == spec_fingerprint(cases)

    def test_store_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job(job_id="j0001-abc", seq=1, spec={"kind": "sweep"},
                  fingerprint="abc", total=4)
        job.transition("running")
        job.simulated = 2
        store.save(job)
        loaded = JobStore(tmp_path).load_all()["j0001-abc"]
        # in-flight on restart -> failed (its processes are gone)
        assert loaded.state == "failed"
        assert "restart" in loaded.error
        assert loaded.simulated == 2
        assert JobStore(tmp_path).next_seq({"j0001-abc": loaded}) == 2

    def test_terminal_jobs_survive_restart_unchanged(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job(job_id="j0001-abc", seq=1, spec={}, fingerprint="abc")
        job.transition("running")
        job.transition("done")
        store.save(job)
        assert JobStore(tmp_path).load_all()["j0001-abc"].state == "done"

    def test_illegal_transition_raises(self):
        job = Job(job_id="j", seq=1, spec={}, fingerprint="f")
        job.transition("running")
        job.transition("done")
        with pytest.raises(ServiceError, match="illegal transition"):
            job.transition("running")

    def test_queue_holds_follower_until_primary_terminal(self):
        jobs = {
            "p": Job(job_id="p", seq=1, spec={}, fingerprint="f"),
            "f1": Job(job_id="f1", seq=2, spec={}, fingerprint="f",
                      dedup_of="p"),
        }
        queue = JobQueue(jobs)
        queue.put("p")
        queue.put("f1")
        assert queue.get(timeout=0.1) == "p"
        # primary still queued/running: the follower must wait
        assert queue.get(timeout=0.05) is None
        jobs["p"].transition("running")
        jobs["p"].transition("done")
        queue.wake()
        assert queue.get(timeout=0.1) == "f1"

    def test_queue_drops_cancelled_entries(self):
        jobs = {"a": Job(job_id="a", seq=1, spec={}, fingerprint="x")}
        queue = JobQueue(jobs)
        queue.put("a")
        assert queue.remove("a") is True
        jobs["a"].transition("cancelled")
        assert queue.get(timeout=0.05) is None

    def test_events_sequence_monotone(self):
        job = Job(job_id="j", seq=1, spec={}, fingerprint="f")
        job.add_event("queued")
        job.add_event("progress", done=1)
        job.add_event("done")
        events = list(job.events_from(0))
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert events[-1]["event"] == "done"


# ---------------------------------------------------------------------------
# governor
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(2, 1.0, clock=lambda: now[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        now[0] = 1.0  # one second -> one token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_capacity(self):
        now = [0.0]
        bucket = TokenBucket(3, 10.0, clock=lambda: now[0])
        now[0] = 100.0
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_zero_refill_never_recovers(self):
        now = [0.0]
        bucket = TokenBucket(1, 0.0, clock=lambda: now[0])
        assert bucket.try_acquire()
        now[0] = 1e6
        assert not bucket.try_acquire()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1, -1.0)


# ---------------------------------------------------------------------------
# service end-to-end (in-process engine, no HTTP)
# ---------------------------------------------------------------------------


@pytest.fixture()
def service(tmp_path):
    svc = JobService(tmp_path / "state", workers=2)
    svc.start()
    yield svc
    svc.stop()


class TestServiceEngine:
    def test_submit_run_records(self, service):
        snap = service.submit(SWEEP_SPEC)
        assert snap["state"] == "queued"
        events = list(service.get_job(snap["job_id"]).events_from(0))
        assert events[-1]["event"] == "done"
        percents = [e["percent"] for e in events if e["event"] == "progress"]
        assert percents == sorted(percents) and percents[-1] == 100.0

        # records byte-identical to a direct Study render of the same spec
        study = spec_to_study(validate_spec(SWEEP_SPEC))
        direct = study.run(cache=ResultCache(service.cache.cache_dir))
        assert service.records_text(snap["job_id"]) == direct.to_json_text()
        assert service.records_text(snap["job_id"], "csv") == direct.to_csv_text()

    def test_dry_run_creates_no_job(self, service):
        out = service.submit(SWEEP_SPEC, dry_run=True)
        assert out["dry_run"] is True
        assert out["total"] == 2
        assert all(not row["cached"] for row in out["configs"])
        assert service.list_jobs() == []

    def test_duplicate_submission_shares_execution(self, service):
        first = service.submit(SWEEP_SPEC, client="a")
        second = service.submit(SWEEP_SPEC, client="b")
        assert second["dedup_of"] == first["job_id"]
        f1 = list(service.get_job(first["job_id"]).events_from(0))
        f2 = list(service.get_job(second["job_id"]).events_from(0))
        assert f1[-1]["event"] == "done" and f2[-1]["event"] == "done"
        primary = service.get_job(first["job_id"])
        follower = service.get_job(second["job_id"])
        assert primary.simulated == 2 and primary.cached == 0
        # the follower replays entirely from the shared cache: stores do
        # not double
        assert follower.simulated == 0 and follower.cached == 2
        assert service.cache.stores == 2

    def test_records_unavailable_before_done(self, tmp_path):
        svc = JobService(tmp_path / "state")  # governor never started
        snap = svc.submit(SWEEP_SPEC)
        with pytest.raises(ServiceError, match="no records"):
            svc.records_text(snap["job_id"])
        with pytest.raises(ServiceError, match="unknown job"):
            svc.get_job("j9999-nope")
        with pytest.raises(ServiceError, match="format"):
            svc.records_text(snap["job_id"], "parquet")

    def test_cancel_queued_job(self, tmp_path):
        svc = JobService(tmp_path / "state")  # governor never started
        snap = svc.submit(SWEEP_SPEC)
        out = svc.cancel(snap["job_id"])
        assert out["state"] == "cancelled"
        with pytest.raises(ServiceError, match="cannot be cancelled"):
            svc.cancel(snap["job_id"])

    def test_restart_recovers_history(self, tmp_path):
        svc = JobService(tmp_path / "state", workers=1)
        svc.start()
        snap = svc.submit(SWEEP_SPEC)
        list(svc.get_job(snap["job_id"]).events_from(0))
        svc.stop()
        reborn = JobService(tmp_path / "state")
        assert reborn.get_job(snap["job_id"]).state == "done"
        # next submission continues the ordinal sequence
        again = reborn.submit(SWEEP_SPEC)
        assert again["seq"] == snap["seq"] + 1


# ---------------------------------------------------------------------------
# service end-to-end over HTTP
# ---------------------------------------------------------------------------


@pytest.fixture()
def http_service(tmp_path):
    svc = JobService(
        tmp_path / "state", workers=2,
        rate_capacity=50.0, rate_refill_per_sec=50.0,
    )
    svc.start()
    server = create_http_server(svc, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    yield svc, ServiceClient(url, client_id="pytest")
    server.shutdown()
    server.server_close()
    svc.stop()


class TestHTTP:
    def test_full_job_cycle(self, http_service):
        svc, client = http_service
        assert client.healthz()["ok"] is True
        snap = client.submit(SWEEP_SPEC)
        final = client.wait(snap["job_id"], timeout=120)
        assert final["state"] == "done"
        assert final["progress"]["simulated"] == 2

        study = spec_to_study(validate_spec(SWEEP_SPEC))
        direct = study.run(cache=ResultCache(svc.cache.cache_dir))
        assert client.records(snap["job_id"]) == direct.to_json_text()
        assert client.records(snap["job_id"], "csv") == direct.to_csv_text()

        listed = client.jobs()
        assert [j["job_id"] for j in listed] == [snap["job_id"]]
        metrics = client.metrics()
        assert metrics["jobs_by_state"] == {"done": 1}

    def test_sse_stream_monotone_with_terminal_event(self, http_service):
        _svc, client = http_service
        snap = client.submit(SWEEP_SPEC)
        events = list(client.events(snap["job_id"]))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        seqs = [e["data"]["seq"] for e in events]
        assert seqs == sorted(seqs)
        percents = [e["data"]["percent"] for e in events
                    if e["event"] == "progress"]
        assert percents == sorted(percents)
        assert all("telemetry" in e["data"] for e in events
                   if e["event"] == "progress")

    def test_bad_spec_rejected_with_field(self, http_service):
        _svc, client = http_service
        with pytest.raises(ServiceError, match="axes\\[0\\].kind"):
            client.submit({"axes": [{"kind": "banana"}]})

    def test_unknown_routes_and_jobs(self, http_service):
        _svc, client = http_service
        with pytest.raises(ServiceError, match="404"):
            client.job("j9999-nope")
        with pytest.raises(ServiceError, match="404"):
            client._json("GET", "/bogus")

    def test_dry_run_over_http(self, http_service):
        _svc, client = http_service
        out = client.submit(SWEEP_SPEC, dry_run=True)
        assert out["dry_run"] is True
        assert [row["cache_key"] for row in out["configs"]] == [
            cache_key(cfg)
            for cfg in spec_to_study(validate_spec(SWEEP_SPEC)).configs()
        ]

    def test_rate_limit_429(self, tmp_path):
        svc = JobService(
            tmp_path / "state", workers=1,
            rate_capacity=2.0, rate_refill_per_sec=0.0,
        )
        svc.start()
        server = create_http_server(svc, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            client_id="greedy",
        )
        try:
            client.submit(SWEEP_SPEC, dry_run=True)
            client.submit(SWEEP_SPEC, dry_run=True)
            with pytest.raises(ServiceError, match="429"):
                client.submit(SWEEP_SPEC, dry_run=True)
        finally:
            server.shutdown()
            server.server_close()
            svc.stop()


class TestSSEParser:
    def test_parse_frames(self):
        raw = (b"event: progress\n"
               b"data: {\"done\": 1}\n"
               b"\n"
               b": a comment\n"
               b"event: done\n"
               b"data: {\"done\": 2}\n"
               b"\n")
        events = list(parse_sse(iter(raw.splitlines(keepends=True))))
        assert events == [
            {"event": "progress", "data": {"done": 1}},
            {"event": "done", "data": {"done": 2}},
        ]
