"""Tests for sharded execution: backends, manifests, gather, cache tools.

The distributed-execution contract under test is the determinism
contract extended across hosts: the union of N shard runs, gathered,
must be **byte-identical** to the unsharded serial artifact — and every
failure mode (missing shard, tampered entry, mixed partitions) must be
an actionable error, never silently partial data.
"""

import json

import pytest

from repro.errors import ConfigurationError, HarnessError
from repro.harness import (
    ExperimentConfig,
    ProcessPoolBackend,
    ReplayCache,
    ResultCache,
    SerialBackend,
    ShardRunComplete,
    ShardedBackend,
    Study,
    Sweep,
    cache_key,
    experiments,
    make_backend,
    parse_shard,
    shard_index_of,
)
from repro.harness.backend import available_backends
from repro.harness.shard import (
    ShardSummary,
    load_manifests,
    manifest_path,
    verify_manifest_entries,
    write_shard_manifest,
)
from repro.obs.metrics import MetricsRegistry

QUICK = {"outer_reps": 6}


def _cfg(**overrides) -> ExperimentConfig:
    base = dict(
        platform="toy", benchmark="syncbench", num_threads=4,
        runs=2, seed=17, benchmark_params=QUICK,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _study(threads=(2, 4, 8), runs=2) -> Study:
    return Study(
        _cfg(runs=runs), name="shard-test", description="sharding fixtures"
    ).grid(num_threads=list(threads))


def _run_all_shards(study: Study, cache: ResultCache, n: int) -> list[ShardSummary]:
    summaries = []
    for i in range(n):
        with pytest.raises(ShardRunComplete) as exc_info:
            study.run(cache=cache, backend=ShardedBackend(i, n))
        summaries.append(exc_info.value.summary)
    return summaries


def _dumps(result) -> str:
    return json.dumps(
        [r.to_dict() for r in result.results], sort_keys=True
    )


# ---------------------------------------------------------------------------
# Shard assignment and spec parsing
# ---------------------------------------------------------------------------


class TestShardAssignment:
    def test_pure_function_of_key(self):
        key = cache_key(_cfg())
        assert shard_index_of(key, 4) == shard_index_of(key, 4)
        assert 0 <= shard_index_of(key, 4) < 4

    def test_independent_of_config_order(self):
        """Assignment derives from content hashes, not list positions."""
        configs = [_cfg(num_threads=t) for t in (2, 4, 8, 16)]
        forward = {cache_key(c): shard_index_of(cache_key(c), 3) for c in configs}
        backward = {
            cache_key(c): shard_index_of(cache_key(c), 3)
            for c in reversed(configs)
        }
        assert forward == backward

    def test_partition_is_exact(self):
        """Every config lands in exactly one shard; shards are disjoint."""
        configs = [_cfg(num_threads=t) for t in (2, 4, 8, 16)]
        n = 3
        backends = [ShardedBackend(i, n) for i in range(n)]
        for cfg in configs:
            key = cache_key(cfg)
            owners = [b.shard_index for b in backends if b.assigns(key)]
            assert owners == [shard_index_of(key, n)]

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError):
            shard_index_of("ab" * 32, 0)

    def test_parse_shard(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)

    @pytest.mark.parametrize("spec", ["4/4", "-1/4", "0/0", "1", "a/b", "1/"])
    def test_parse_shard_rejects(self, spec):
        with pytest.raises(ConfigurationError):
            parse_shard(spec)

    def test_sharded_backend_validates(self):
        with pytest.raises(ConfigurationError):
            ShardedBackend(2, 2)
        with pytest.raises(ConfigurationError):
            ShardedBackend(0, 2, inner=ShardedBackend(0, 2))


class TestMakeBackend:
    def test_auto_without_shard_is_none(self):
        assert make_backend("auto", jobs=1) is None

    def test_named_backends(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        pool = make_backend("process", jobs=3)
        assert isinstance(pool, ProcessPoolBackend) and pool.workers == 3

    def test_shard_wraps(self):
        backend = make_backend("auto", jobs=1, shard=(1, 2))
        assert isinstance(backend, ShardedBackend)
        assert isinstance(backend.inner, SerialBackend)
        assert backend.label == "1/2"

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            make_backend("mpi")
        assert "serial" in available_backends()


# ---------------------------------------------------------------------------
# Backend extraction keeps the engine bit-identical
# ---------------------------------------------------------------------------


class TestBackendRefactor:
    def test_explicit_serial_backend_matches_jobs1(self):
        configs = [_cfg(num_threads=t) for t in (2, 4)]
        via_jobs = Sweep(jobs=1).run(configs)
        via_backend = Sweep(backend=SerialBackend()).run(configs)
        assert [r.to_dict() for r in via_backend] == [
            r.to_dict() for r in via_jobs
        ]

    def test_explicit_pool_backend_matches_serial(self):
        configs = [_cfg(num_threads=t, runs=3) for t in (2, 4)]
        serial = Sweep(jobs=1).run(configs)
        pooled = Sweep(backend=ProcessPoolBackend(2)).run(configs)
        assert json.dumps([r.to_dict() for r in pooled], sort_keys=True) == (
            json.dumps([r.to_dict() for r in serial], sort_keys=True)
        )

    def test_sweep_reports_backend_workers(self):
        assert Sweep(backend=ProcessPoolBackend(5)).jobs == 5
        assert Sweep(backend=SerialBackend()).jobs == 1


# ---------------------------------------------------------------------------
# Sharded runs + gather
# ---------------------------------------------------------------------------


class TestShardedRun:
    def test_requires_cache(self):
        with pytest.raises(HarnessError, match="shared cache"):
            _study().run(backend=ShardedBackend(0, 2))

    def test_raises_shard_run_complete_with_manifest(self, tmp_path):
        cache = ResultCache(tmp_path)
        study = _study()
        with pytest.raises(ShardRunComplete) as exc_info:
            study.run(cache=cache, backend=ShardedBackend(0, 2))
        summary = exc_info.value.summary
        assert summary.label == "0/2"
        assert summary.manifest_path.exists()
        assert summary.assigned == summary.simulated + summary.cached
        payload = json.loads(summary.manifest_path.read_text())
        assert payload["kind"] == "repro-omp-shard-manifest"
        assert len(payload["entries"]) == summary.assigned

    def test_manifest_covers_cache_hits_too(self, tmp_path):
        """Re-running a shard over a warm cache still records coverage."""
        cache = ResultCache(tmp_path)
        study = _study()
        first = _run_all_shards(study, cache, 2)
        again = _run_all_shards(study, cache, 2)
        for before, after in zip(first, again):
            assert after.assigned == before.assigned
            assert after.simulated == 0
            assert after.cached == before.assigned

    def test_shards_partition_the_study(self, tmp_path):
        summaries = _run_all_shards(_study(), ResultCache(tmp_path), 2)
        assert sum(s.assigned for s in summaries) == len(_study())

    def test_per_shard_metrics(self, tmp_path):
        cache = ResultCache(tmp_path)
        metrics = MetricsRegistry()
        with pytest.raises(ShardRunComplete) as exc_info:
            _study().run(cache=cache, backend=ShardedBackend(0, 2), metrics=metrics)
        assigned = exc_info.value.summary.assigned
        counter = metrics.counter("shard_configs_assigned", shard="0/2")
        assert counter.value == assigned


class TestGather:
    def test_gather_equals_serial(self, tmp_path):
        study = _study()
        serial = study.run(jobs=1)
        cache = ResultCache(tmp_path)
        _run_all_shards(study, cache, 2)
        gathered = study.gather(cache)
        assert _dumps(gathered) == _dumps(serial)

    def test_gathered_export_byte_identical(self, tmp_path):
        study = _study()
        serial_path = tmp_path / "serial.json"
        merged_path = tmp_path / "merged.json"
        study.run(jobs=1).to_json(serial_path)
        cache = ResultCache(tmp_path / "cache")
        _run_all_shards(study, cache, 2)
        study.gather(cache).to_json(merged_path)
        assert serial_path.read_bytes() == merged_path.read_bytes()

    def test_single_shard_equals_unsharded(self, tmp_path):
        """N=1: the degenerate partition is just a sharded serial run."""
        study = _study()
        cache = ResultCache(tmp_path)
        (summary,) = _run_all_shards(study, cache, 1)
        assert summary.assigned == len(study)
        assert _dumps(study.gather(cache)) == _dumps(study.run(jobs=1))

    def test_more_shards_than_configs(self, tmp_path):
        """Empty shards write (empty) manifests and gather cleanly."""
        study = _study(threads=(2, 4))  # 2 configs
        cache = ResultCache(tmp_path)
        summaries = _run_all_shards(study, cache, 5)
        assert sum(s.assigned for s in summaries) == 2
        assert sum(1 for s in summaries if s.assigned == 0) == 3
        assert _dumps(study.gather(cache)) == _dumps(study.run(jobs=1))

    def test_uneven_split(self, tmp_path):
        """A partition never loses configs, however lopsided it falls."""
        study = _study(threads=(1, 2, 4, 8, 16), runs=1)
        cache = ResultCache(tmp_path)
        summaries = _run_all_shards(study, cache, 3)
        sizes = sorted(s.assigned for s in summaries)
        assert sum(sizes) == 5
        assert _dumps(study.gather(cache)) == _dumps(study.run(jobs=1))

    def test_gather_merges_shard_telemetry(self, tmp_path):
        study = _study()
        cache = ResultCache(tmp_path)
        for i in range(2):
            with pytest.raises(ShardRunComplete):
                study.run(
                    cache=cache, backend=ShardedBackend(i, 2),
                    metrics=MetricsRegistry(),
                )
        metrics = MetricsRegistry()
        study.gather(cache, metrics=metrics)
        assert metrics.gauge("manifest_shards").value == 2
        assert metrics.gauge("manifest_entries").value == len(study)
        assert metrics.gauge("manifest_total_bytes").value > 0
        # the shards' own simulated-config counters merged in
        simulated = sum(
            metrics.counter("shard_configs_simulated", shard=f"{i}/2").value
            for i in range(2)
        )
        assert simulated == len(study)

    def test_expected_shards_mismatch(self, tmp_path):
        cache = ResultCache(tmp_path)
        study = _study()
        _run_all_shards(study, cache, 2)
        with pytest.raises(HarnessError, match="--expect-shards"):
            study.gather(cache, expected_shards=3)


class TestGatherFailureModes:
    def test_no_manifests(self, tmp_path):
        with pytest.raises(HarnessError, match="no shard manifests"):
            _study().gather(ResultCache(tmp_path))

    def test_missing_shard_names_the_rerun(self, tmp_path):
        cache = ResultCache(tmp_path)
        study = _study()
        with pytest.raises(ShardRunComplete):
            study.run(cache=cache, backend=ShardedBackend(0, 2))
        with pytest.raises(HarnessError, match=r"--shard 1/2"):
            study.gather(cache)

    def test_mixed_partitions_detected(self, tmp_path):
        """Manifests from two different --shard I/N partitions in one dir."""
        cache = ResultCache(tmp_path)
        study = _study()
        with pytest.raises(ShardRunComplete):
            study.run(cache=cache, backend=ShardedBackend(0, 2))
        with pytest.raises(ShardRunComplete):
            study.run(cache=cache, backend=ShardedBackend(1, 3))
        with pytest.raises(HarnessError, match="disagree on the partition"):
            study.gather(cache)

    def test_stale_partition_duplicate_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        study = _study()
        _run_all_shards(study, cache, 2)
        with pytest.raises(ShardRunComplete):
            study.run(cache=cache, backend=ShardedBackend(0, 3))
        with pytest.raises(HarnessError, match="duplicate manifests"):
            study.gather(cache)

    def test_tampered_entry_is_integrity_error(self, tmp_path):
        cache = ResultCache(tmp_path)
        study = _study()
        _run_all_shards(study, cache, 2)
        entry = next(
            p for p in cache.cache_dir.glob("*.json")
            if "manifest" not in p.name
        )
        data = json.loads(entry.read_text())
        data["records"][0]["series"] = {
            k: [v * 1.5 for v in vals]
            for k, vals in data["records"][0]["series"].items()
        }
        entry.write_text(json.dumps(data))
        with pytest.raises(HarnessError, match="integrity failure"):
            study.gather(cache)

    def test_tampered_manifest_digest_is_integrity_error(self, tmp_path):
        cache = ResultCache(tmp_path)
        study = _study()
        _run_all_shards(study, cache, 2)
        target = next(
            p for p in cache.cache_dir.glob("shard-*.manifest.json")
            if json.loads(p.read_text())["entries"]
        )
        payload = json.loads(target.read_text())
        payload["entries"][0]["sha256"] = "0" * 64
        target.write_text(json.dumps(payload))
        with pytest.raises(HarnessError, match="integrity failure"):
            study.gather(cache)

    def test_deleted_entry_is_integrity_error(self, tmp_path):
        cache = ResultCache(tmp_path)
        study = _study()
        _run_all_shards(study, cache, 2)
        entry = next(
            p for p in cache.cache_dir.glob("*.json")
            if "manifest" not in p.name
        )
        entry.unlink()
        with pytest.raises(HarnessError, match="missing"):
            study.gather(cache)

    def test_foreign_shard_claim_detected(self, tmp_path):
        """A manifest claiming a key the partition assigns elsewhere."""
        cache = ResultCache(tmp_path)
        study = _study()
        _run_all_shards(study, cache, 2)
        manifests = {
            i: json.loads(manifest_path(cache, i, 2).read_text())
            for i in range(2)
        }
        donor = next(i for i, p in manifests.items() if p["entries"])
        thief = 1 - donor
        manifests[thief]["entries"].append(manifests[donor]["entries"][0])
        manifest_path(cache, thief, 2).write_text(
            json.dumps(manifests[thief])
        )
        with pytest.raises(HarnessError, match="assigns to shard"):
            load_manifests(cache)

    def test_uncovered_config_names_owning_shard(self, tmp_path):
        """Shards ran a *different* study: gather must say which shard to
        re-run for the uncovered config, not replay a partial union."""
        cache = ResultCache(tmp_path)
        narrow = _study(threads=(2, 4))
        _run_all_shards(narrow, cache, 2)
        wide = _study(threads=(2, 4, 8))
        with pytest.raises(HarnessError, match="not in any shard manifest"):
            wide.gather(cache)

    def test_replay_cache_refuses_miss_and_put(self, tmp_path):
        replay = ReplayCache(tmp_path)
        with pytest.raises(HarnessError, match="no cache entry"):
            replay.get(_cfg())
        result = Sweep(jobs=1).run([_cfg()])[0]
        with pytest.raises(HarnessError, match="never simulates"):
            replay.put(result)


class TestManifestWriting:
    def test_write_requires_committed_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(HarnessError, match="missing from"):
            write_shard_manifest(cache, 0, 2, [_cfg()])

    def test_entries_sorted_by_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        study = _study()
        _run_all_shards(study, cache, 1)
        payload = json.loads(manifest_path(cache, 0, 1).read_text())
        keys = [e["key"] for e in payload["entries"]]
        assert keys == sorted(keys)
        assert verify_manifest_entries(cache, {0: payload}) == len(keys)


# ---------------------------------------------------------------------------
# Registered experiments: sharded == serial, byte for byte
# ---------------------------------------------------------------------------


class TestShardedExperiments:
    @pytest.mark.parametrize(
        "driver,kwargs",
        [
            (experiments.table2, dict(runs=2, outer_reps=5)),
            (
                experiments.figure1,
                dict(
                    runs=2, outer_reps=5,
                    dardel_threads=[2, 4], vera_threads=[2, 4],
                ),
            ),
        ],
        ids=["table2", "figure1"],
    )
    def test_gathered_artifact_byte_identical(self, tmp_path, driver, kwargs):
        serial = driver(**kwargs).render()
        cache = ResultCache(tmp_path)
        for i in range(2):
            with pytest.raises(ShardRunComplete):
                driver(**kwargs, cache=cache, backend=ShardedBackend(i, 2))
        manifests = load_manifests(cache, expected_shards=2)
        verify_manifest_entries(cache, manifests)
        gathered = driver(**kwargs, cache=ReplayCache(tmp_path)).render()
        assert gathered.encode() == serial.encode()
        # the replay never simulated: every config came from the shards
        replay_misses = ReplayCache(tmp_path).misses
        assert replay_misses == 0


# ---------------------------------------------------------------------------
# Cache stats / gc
# ---------------------------------------------------------------------------


class TestCacheStatsGc:
    def test_stats_counts_entries_and_versions(self, tmp_path):
        cache = ResultCache(tmp_path)
        Sweep(jobs=1, cache=cache).run([_cfg(num_threads=t) for t in (2, 4)])
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["total_bytes"] > 0
        assert sum(stats["by_version"].values()) == 2
        assert "unknown" not in stats["by_version"]

    def test_stats_hit_rate(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = Sweep(jobs=1, cache=cache)
        sweep.run([_cfg()])
        sweep.run([_cfg()])
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_stats_ignores_manifests(self, tmp_path):
        cache = ResultCache(tmp_path)
        _run_all_shards(_study(), cache, 2)
        assert cache.stats()["entries"] == len(_study())
        assert len(cache) == len(_study())

    def test_gc_keeps_current_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        Sweep(jobs=1, cache=cache).run([_cfg()])
        counts = cache.gc()
        assert counts == {
            "kept": 1, "removed_stale": 0,
            "removed_corrupt": 0, "removed_tmp": 0,
        }
        assert len(cache) == 1

    def test_gc_prunes_stale_version_entries(self, tmp_path):
        """An entry filed under a key the current version can't recompute
        is dead weight — exactly what a code-version bump leaves behind."""
        cache = ResultCache(tmp_path)
        path = Sweep(jobs=1, cache=cache).run([_cfg()])
        entry = next(iter(cache._entry_files()))
        stale = entry.with_name(("0" * 64) + ".json")
        stale.write_text(entry.read_text())
        counts = cache.gc()
        assert counts["kept"] == 1
        assert counts["removed_stale"] == 1
        assert not stale.exists() and entry.exists()

    def test_gc_prunes_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = cache.cache_dir / (("ab" * 32) + ".json")
        bad.write_text("{not json")
        counts = cache.gc()
        assert counts["removed_corrupt"] == 1
        assert not bad.exists()

    def test_entry_carries_cache_meta(self, tmp_path):
        from repro import __version__

        cache = ResultCache(tmp_path)
        Sweep(jobs=1, cache=cache).run([_cfg()])
        entry = next(iter(cache._entry_files()))
        meta = json.loads(entry.read_text())["cache_meta"]
        assert meta["code_version"] == __version__

    def test_cache_meta_invisible_to_results(self, tmp_path):
        """Entries with provenance replay identically to entries without."""
        cache = ResultCache(tmp_path)
        (fresh,) = Sweep(jobs=1, cache=cache).run([_cfg()])
        (replayed,) = Sweep(jobs=1, cache=cache).run([_cfg()])
        assert replayed.to_dict() == fresh.to_dict()


# ---------------------------------------------------------------------------
# Metrics merge (gather's telemetry accumulation)
# ---------------------------------------------------------------------------


class TestMetricsMerge:
    def test_counters_add_gauges_last_win(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.gauge("g").set(1)
        b.gauge("g").set(7)
        a.merge(b)
        assert a.counter("n").value == 5
        assert a.gauge("g").value == 7

    def test_histograms_combine(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(5.0)
        b.histogram("h").observe(3.0)
        a.merge(b)
        h = a.histogram("h")
        assert (h.count, h.total, h.minimum, h.maximum) == (3, 9.0, 1.0, 5.0)
