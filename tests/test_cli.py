"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dardel" in out and "vera" in out
        assert "syncbench" in out and "taskbench" in out
        assert "table2" in out and "figure7" in out and "figure8" in out
        # the registry's one-line description is shown next to each name
        assert "work-stealing" in out


class TestPlatform:
    def test_describe_dardel(self, capsys):
        assert main(["platform", "dardel"]) == 0
        out = capsys.readouterr().out
        assert "256 hardware threads" in out

    def test_unknown_platform_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["platform", "cray-1"])


class TestExperiment:
    def test_table2_quick(self, capsys):
        assert main(["experiment", "table2", "--runs", "2", "--reps", "5",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "dardel@4" in out
        assert "vera@30" in out

    def test_figure6_quick(self, capsys):
        assert main(["experiment", "figure6", "--runs", "2", "--reps", "6"]) == 0
        out = capsys.readouterr().out
        assert "one-numa" in out and "two-numa" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])


class TestRun:
    def test_run_and_save(self, capsys, tmp_path):
        out_file = tmp_path / "r.json"
        rc = main([
            "run", "--platform", "toy", "--benchmark", "syncbench",
            "--threads", "4", "--runs", "2", "--reps", "5",
            "--out", str(out_file),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        data = json.loads(out_file.read_text())
        assert data["config"]["platform"] == "toy"
        assert len(data["records"]) == 2

    def test_run_babelstream(self, capsys):
        rc = main([
            "run", "--platform", "toy", "--benchmark", "babelstream",
            "--threads", "4", "--runs", "1", "--reps", "3",
        ])
        assert rc == 0
        assert "triad" in capsys.readouterr().out

    def test_run_unbound(self, capsys):
        rc = main([
            "run", "--platform", "toy", "--benchmark", "schedbench",
            "--threads", "4", "--proc-bind", "false", "--schedule", "dynamic",
            "--chunk", "1", "--runs", "1", "--reps", "3",
        ])
        assert rc == 0
        assert "dynamic_1" in capsys.readouterr().out

    def test_error_path_returns_one(self, capsys):
        # more threads than the toy machine's 16 cpus
        rc = main([
            "run", "--platform", "toy", "--benchmark", "syncbench",
            "--threads", "999", "--runs", "1",
        ])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_run_taskbench_with_params(self, capsys):
        rc = main([
            "run", "--platform", "toy", "--benchmark", "taskbench",
            "--threads", "4", "--runs", "2", "--reps", "3",
            "--noise", "quiet",
            "--param", "grainsize=4", "--param", "total_iters=64",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "taskloop_g4" in out
        assert "work-stealing scheduler metrics" in out
        assert "fail rate" in out

    def test_bad_param_returns_one(self, capsys):
        rc = main([
            "run", "--platform", "toy", "--benchmark", "taskbench",
            "--threads", "2", "--runs", "1", "--param", "grainsize",
        ])
        assert rc == 1
        assert "KEY=VALUE" in capsys.readouterr().err
