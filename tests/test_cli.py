"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dardel" in out and "vera" in out
        assert "syncbench" in out and "taskbench" in out
        assert "table2" in out and "figure7" in out and "figure8" in out
        # the registry's one-line description is shown next to each name
        assert "work-stealing" in out


class TestPlatform:
    def test_describe_dardel(self, capsys):
        assert main(["platform", "dardel"]) == 0
        out = capsys.readouterr().out
        assert "256 hardware threads" in out

    def test_unknown_platform_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["platform", "cray-1"])


class TestExperiment:
    def test_table2_quick(self, capsys):
        assert main(["experiment", "table2", "--runs", "2", "--reps", "5",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "dardel@4" in out
        assert "vera@30" in out

    def test_figure6_quick(self, capsys):
        assert main(["experiment", "figure6", "--runs", "2", "--reps", "6"]) == 0
        out = capsys.readouterr().out
        assert "one-numa" in out and "two-numa" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])


class TestRun:
    def test_run_and_save(self, capsys, tmp_path):
        out_file = tmp_path / "r.json"
        rc = main([
            "run", "--platform", "toy", "--benchmark", "syncbench",
            "--threads", "4", "--runs", "2", "--reps", "5",
            "--out", str(out_file),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        data = json.loads(out_file.read_text())
        assert data["config"]["platform"] == "toy"
        assert len(data["records"]) == 2

    def test_run_babelstream(self, capsys):
        rc = main([
            "run", "--platform", "toy", "--benchmark", "babelstream",
            "--threads", "4", "--runs", "1", "--reps", "3",
        ])
        assert rc == 0
        assert "triad" in capsys.readouterr().out

    def test_run_unbound(self, capsys):
        rc = main([
            "run", "--platform", "toy", "--benchmark", "schedbench",
            "--threads", "4", "--proc-bind", "false", "--schedule", "dynamic",
            "--chunk", "1", "--runs", "1", "--reps", "3",
        ])
        assert rc == 0
        assert "dynamic_1" in capsys.readouterr().out

    def test_error_path_returns_one(self, capsys):
        # more threads than the toy machine's 16 cpus
        rc = main([
            "run", "--platform", "toy", "--benchmark", "syncbench",
            "--threads", "999", "--runs", "1",
        ])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_run_taskbench_with_params(self, capsys):
        rc = main([
            "run", "--platform", "toy", "--benchmark", "taskbench",
            "--threads", "4", "--runs", "2", "--reps", "3",
            "--noise", "quiet",
            "--param", "grainsize=4", "--param", "total_iters=64",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "taskloop_g4" in out
        assert "work-stealing scheduler metrics" in out
        assert "fail rate" in out

    def test_bad_param_returns_one(self, capsys):
        rc = main([
            "run", "--platform", "toy", "--benchmark", "taskbench",
            "--threads", "2", "--runs", "1", "--param", "grainsize",
        ])
        assert rc == 1
        assert "KEY=VALUE" in capsys.readouterr().err


class TestParamCoercion:
    """--param / --grid values coerce numbers, booleans and None."""

    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("7", 7),
            ("2.5", 2.5),
            ("true", True),
            ("True", True),
            ("FALSE", False),
            ("none", None),
            ("None", None),
            ("fib", "fib"),
        ],
    )
    def test_coercions(self, raw, expected):
        from repro.cli import _parse_param

        key, value = _parse_param(f"k={raw}")
        assert key == "k"
        assert value == expected and type(value) is type(expected)


class TestSweep:
    def test_grid_sweep_report_and_csv_export(self, capsys, tmp_path):
        out = tmp_path / "sweep.csv"
        rc = main([
            "sweep", "--platform", "toy", "--runs", "2", "--reps", "4",
            "--grid", "num_threads=2,4", "--grid", "runtime=gnu,llvm",
            "--out", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "4 configuration(s)" in text
        assert "swept axes: num_threads, runtime" in text
        assert "pooled variability by num_threads" in text
        assert "pooled variability by runtime" in text
        lines = out.read_text().splitlines()
        assert lines[0].startswith("platform,benchmark,num_threads,runtime,label")
        assert len(lines) > 1  # non-empty tidy export

    def test_zip_sweep_and_json_export(self, capsys, tmp_path):
        out = tmp_path / "sweep.json"
        rc = main([
            "sweep", "--platform", "toy", "--runs", "1", "--reps", "3",
            "--zip", "num_threads=2,4", "--zip", "schedule=static,dynamic",
            "--out", str(out),
        ])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["axes"] == ["platform", "benchmark", "num_threads", "schedule"]
        assert data["records"]
        swept = {(r["num_threads"], r["schedule"]) for r in data["records"]}
        assert swept == {(2, "static"), (4, "dynamic")}

    def test_group_by_and_label_selection(self, capsys):
        rc = main([
            "sweep", "--platform", "toy", "--runs", "1", "--reps", "3",
            "--grid", "num_threads=2,4",
            "--group-by", "num_threads", "--label", "reduction.overhead",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "reduction.overhead" in text
        assert "pooled variability by num_threads" in text

    def test_benchmark_param_axis_falls_through(self, capsys):
        rc = main([
            "sweep", "--platform", "toy", "--benchmark", "taskbench",
            "--threads", "2", "--runs", "1", "--reps", "2",
            "--param", "total_iters=32", "--grid", "grainsize=1,4",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "taskloop_g1" in text and "taskloop_g4" in text

    def test_reps_follows_swept_benchmark_axis(self, capsys):
        # --reps must map to num_times for babelstream configs and to
        # outer_reps for the others, even when benchmark is a swept axis
        rc = main([
            "sweep", "--platform", "toy", "--threads", "2", "--runs", "1",
            "--reps", "3", "--grid", "benchmark=syncbench,babelstream",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "2 configuration(s)" in text
        assert "reduction" in text and "copy" in text

    def test_proc_bind_axis_keeps_false_as_string(self, capsys):
        # proc_bind="false" is a legal string value (OS placement), not a
        # boolean — the figure-4-style pinning sweep must work from the CLI
        rc = main([
            "sweep", "--platform", "toy", "--threads", "2", "--runs", "1",
            "--reps", "3",
            "--zip", "proc_bind=false,close", "--zip", "places=none,cores",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "2 configuration(s)" in text
        assert "pooled variability by proc_bind" in text

    def test_mismatched_zip_returns_one(self, capsys):
        rc = main([
            "sweep", "--platform", "toy", "--runs", "1",
            "--zip", "num_threads=2,4", "--zip", "schedule=static",
        ])
        assert rc == 1
        assert "share a length" in capsys.readouterr().err

    def test_bad_axis_returns_one(self, capsys):
        rc = main(["sweep", "--platform", "toy", "--grid", "num_threads"])
        assert rc == 1
        assert "KEY=V1,V2" in capsys.readouterr().err

    def test_unknown_benchmark_param_axis_returns_one(self, capsys):
        rc = main([
            "sweep", "--platform", "toy", "--runs", "1", "--reps", "3",
            "--grid", "bogus_param=1,2",
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "error:" in err and "bogus_param" in err


class TestSweepDryRun:
    def test_prints_configs_with_cache_keys(self, capsys, tmp_path):
        rc = main([
            "sweep", "--platform", "toy", "--runs", "1", "--reps", "3",
            "--grid", "num_threads=2,4", "--dry-run",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["total"] == 2
        assert [row["index"] for row in data["configs"]] == [0, 1]
        for row in data["configs"]:
            assert set(row) == {"index", "label", "config", "cache_key",
                                "cached"}
            assert len(row["cache_key"]) == 64
            assert row["cached"] is False
        assert [r["config"]["num_threads"] for r in data["configs"]] == [2, 4]

    def test_dry_run_simulates_nothing_and_reports_warm_entries(
        self, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        argv = [
            "sweep", "--platform", "toy", "--runs", "1", "--reps", "3",
            "--grid", "num_threads=2,4", "--cache-dir", cache,
        ]
        assert main([*argv, "--dry-run"]) == 0
        capsys.readouterr()
        assert main(argv) == 0  # real run warms the cache
        capsys.readouterr()
        assert main([*argv, "--dry-run"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert all(row["cached"] for row in data["configs"])

    def test_dry_run_without_cache_marks_all_cold(self, capsys):
        rc = main([
            "sweep", "--platform", "toy", "--runs", "1", "--reps", "3",
            "--grid", "num_threads=2,4", "--dry-run",
        ])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert [row["cached"] for row in data["configs"]] == [False, False]


class TestBenchReport:
    """The bench report writer: baseline carry rules shared by the CLI
    and benchmarks/bench_engine.py."""

    def _report(self, quick=False):
        return {
            "schema": 1,
            "quick": quick,
            "engine": {"callback_events_per_sec": 400},
            "figure8_smoke": {"reps": 30, "events": 10, "events_per_sec": 200},
        }

    def _baseline_file(self, tmp_path, quick=False):
        import json

        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({
            "baseline_pre_overhaul": {
                "quick": quick,
                "engine": {"callback_events_per_sec": 100},
                "figure8_smoke": {"events_per_sec": 100},
            },
        }))
        return path

    def test_baseline_carried_and_speedups_recomputed(self, tmp_path):
        import json

        from repro.sim.bench import write_report

        path = self._baseline_file(tmp_path, quick=False)
        report = write_report(self._report(quick=False), path)
        assert "baseline_pre_overhaul" in report
        assert report["speedup_vs_baseline"] == {
            "callback_events_per_sec": 4.0,
            "figure8_smoke_events_per_sec": 2.0,
        }
        on_disk = json.loads(path.read_text())
        assert on_disk["baseline_pre_overhaul"]["engine"][
            "callback_events_per_sec"
        ] == 100

    def test_quick_run_skips_speedups_vs_full_baseline(self, tmp_path):
        """--quick numbers divided by a full-workload baseline would be
        apples-to-oranges; the baseline is kept, the ratios are not."""
        from repro.sim.bench import write_report

        path = self._baseline_file(tmp_path, quick=False)
        report = write_report(self._report(quick=True), path)
        assert "baseline_pre_overhaul" in report
        assert "speedup_vs_baseline" not in report

    def test_missing_or_corrupt_prior_is_fine(self, tmp_path):
        from repro.sim.bench import write_report

        fresh = tmp_path / "fresh.json"
        report = write_report(self._report(), fresh)
        assert "baseline_pre_overhaul" not in report
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        report = write_report(self._report(), corrupt)
        assert "baseline_pre_overhaul" not in report

    def test_cli_bench_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "engine throughput" in captured
        assert out.exists()
