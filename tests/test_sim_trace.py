"""Tests for PiecewiseConstant traces, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.sim import PiecewiseConstant


def make_trace():
    # value 2 on [0,1), 4 on [1,3), 1 on [3,inf)
    return PiecewiseConstant([0.0, 1.0, 3.0], [2.0, 4.0, 1.0])


class TestConstruction:
    def test_single_segment(self):
        t = PiecewiseConstant.constant(3.0)
        assert t.value_at(0.0) == 3.0
        assert t.value_at(1e9) == 3.0

    def test_from_segments(self):
        t = PiecewiseConstant.from_segments([(1.0, 2.0), (2.0, 4.0)], start=5.0)
        assert t.value_at(5.5) == 2.0
        assert t.value_at(6.5) == 4.0
        assert t.value_at(100.0) == 4.0  # last value extends

    def test_rejects_unsorted(self):
        with pytest.raises(TraceError):
            PiecewiseConstant([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(TraceError):
            PiecewiseConstant([1.0, 0.0], [1.0, 2.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(TraceError):
            PiecewiseConstant([0.0, 1.0], [1.0])

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            PiecewiseConstant([], [])

    def test_rejects_nonpositive_segment_duration(self):
        with pytest.raises(TraceError):
            PiecewiseConstant.from_segments([(0.0, 1.0)])

    def test_immutable(self):
        t = make_trace()
        with pytest.raises(AttributeError):
            t.times = None


class TestValueAt:
    def test_right_continuity(self):
        t = make_trace()
        assert t.value_at(1.0) == 4.0  # value at breakpoint is the new one
        assert t.value_at(0.999999) == 2.0

    def test_vectorized(self):
        t = make_trace()
        np.testing.assert_array_equal(
            t.value_at([0.0, 0.5, 1.0, 2.0, 3.0, 10.0]),
            [2.0, 2.0, 4.0, 4.0, 1.0, 1.0],
        )

    def test_before_start_raises(self):
        with pytest.raises(TraceError):
            make_trace().value_at(-0.1)


class TestIntegrate:
    def test_within_one_segment(self):
        assert make_trace().integrate(0.25, 0.75) == pytest.approx(1.0)

    def test_across_segments(self):
        # 2*1 + 4*2 + 1*1 = 11 over [0,4]
        assert make_trace().integrate(0.0, 4.0) == pytest.approx(11.0)

    def test_zero_width(self):
        assert make_trace().integrate(2.0, 2.0) == 0.0

    def test_into_extended_tail(self):
        assert make_trace().integrate(3.0, 13.0) == pytest.approx(10.0)

    def test_backwards_raises(self):
        with pytest.raises(TraceError):
            make_trace().integrate(2.0, 1.0)

    def test_mean(self):
        assert make_trace().mean(0.0, 4.0) == pytest.approx(11.0 / 4.0)


class TestInvertIntegral:
    def test_roundtrip_simple(self):
        t = make_trace()
        end = t.invert_integral(0.0, 11.0)
        assert end == pytest.approx(4.0)

    def test_zero_target(self):
        assert make_trace().invert_integral(1.5, 0.0) == 1.5

    def test_within_segment(self):
        # starting at 1.0, need 2.0 units at rate 4 -> 0.5 s
        assert make_trace().invert_integral(1.0, 2.0) == pytest.approx(1.5)

    def test_requires_positive_signal(self):
        t = PiecewiseConstant([0.0, 1.0], [1.0, 0.0])
        with pytest.raises(TraceError):
            t.invert_integral(0.0, 5.0)

    def test_negative_target_rejected(self):
        with pytest.raises(TraceError):
            make_trace().invert_integral(0.0, -1.0)


class TestRestrictedAndSampling:
    def test_restricted_preserves_values(self):
        t = make_trace().restricted(0.5, 3.5)
        assert t.start == 0.5
        assert t.value_at(0.5) == 2.0
        assert t.value_at(2.0) == 4.0
        assert t.value_at(3.2) == 1.0

    def test_min_value(self):
        assert make_trace().min_value(0.0, 2.0) == 2.0
        assert make_trace().min_value(0.0, 4.0) == 1.0
        assert make_trace().min_value(1.0, 2.5) == 4.0

    def test_resample(self):
        samples = make_trace().resample([0.0, 1.5, 5.0])
        assert [s.value for s in samples] == [2.0, 4.0, 1.0]
        assert [s.time for s in samples] == [0.0, 1.5, 5.0]


# -- property-based checks ----------------------------------------------------

durations = st.floats(min_value=1e-3, max_value=10.0, allow_nan=False)
values = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
segments = st.lists(st.tuples(durations, values), min_size=1, max_size=8)


@given(segments=segments, split=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=80)
def test_integral_additivity(segments, split):
    """integrate(a,c) == integrate(a,b) + integrate(b,c) for a<=b<=c."""
    t = PiecewiseConstant.from_segments(segments)
    total_span = sum(d for d, _ in segments) + 1.0
    a, c = 0.0, total_span
    b = a + split * (c - a)
    assert t.integrate(a, c) == pytest.approx(
        t.integrate(a, b) + t.integrate(b, c), rel=1e-9, abs=1e-12
    )


@given(segments=segments, frac=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=80)
def test_invert_integral_is_inverse(segments, frac):
    """invert_integral(a, integrate(a,b)) == b for positive signals."""
    t = PiecewiseConstant.from_segments(segments)
    total_span = sum(d for d, _ in segments) + 1.0
    b = frac * total_span
    target = t.integrate(0.0, b)
    recovered = t.invert_integral(0.0, target)
    assert t.integrate(0.0, recovered) == pytest.approx(target, rel=1e-9, abs=1e-12)


@given(segments=segments)
@settings(max_examples=50)
def test_mean_bounded_by_extremes(segments):
    t = PiecewiseConstant.from_segments(segments)
    span = sum(d for d, _ in segments)
    m = t.mean(0.0, span)
    vals = [v for _, v in segments]
    assert min(vals) - 1e-9 <= m <= max(vals) + 1e-9
