"""Tests for repro.rng (deterministic named streams)."""

import numpy as np
import pytest

from repro.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "noise", 3) == derive_seed(42, "noise", 3)

    def test_path_sensitivity(self):
        assert derive_seed(42, "noise", 3) != derive_seed(42, "noise", 4)
        assert derive_seed(42, "noise") != derive_seed(42, "freq")

    def test_seed_sensitivity(self):
        assert derive_seed(42, "noise") != derive_seed(43, "noise")

    def test_component_types_distinguished(self):
        # int 1 vs str "1" vs True must hash differently
        seeds = {
            derive_seed(0, 1),
            derive_seed(0, "1"),
            derive_seed(0, True),
            derive_seed(0, 1.0),
            derive_seed(0, None),
        }
        assert len(seeds) == 5

    def test_tuple_components(self):
        assert derive_seed(0, ("a", 1)) == derive_seed(0, ("a", 1))
        assert derive_seed(0, ("a", 1)) != derive_seed(0, ("a", 2))

    def test_rejects_unhashable_objects(self):
        with pytest.raises(TypeError):
            derive_seed(0, object())

    def test_128_bit_range(self):
        s = derive_seed(42, "x")
        assert 0 <= s < 2**128


class TestRngFactory:
    def test_same_path_same_sequence(self):
        f = RngFactory(7)
        a = f.stream("scheduler", 0).random(10)
        b = f.stream("scheduler", 0).random(10)
        np.testing.assert_array_equal(a, b)

    def test_streams_are_independent_objects(self):
        f = RngFactory(7)
        a = f.stream("x")
        a.random(5)  # consuming a must not affect a fresh stream
        b = f.stream("x")
        assert b.random() == RngFactory(7).stream("x").random()

    def test_different_paths_differ(self):
        f = RngFactory(7)
        a = f.stream("noise").random(4)
        b = f.stream("freq").random(4)
        assert not np.array_equal(a, b)

    def test_child_scoping(self):
        f = RngFactory(7)
        child = f.child("run", 3)
        direct = f.stream("run", 3, "noise").random(4)
        scoped = child.stream("noise").random(4)
        np.testing.assert_array_equal(direct, scoped)

    def test_child_of_child(self):
        f = RngFactory(1).child("a").child("b", 2)
        np.testing.assert_array_equal(
            f.stream("z").random(3), RngFactory(1).stream("a", "b", 2, "z").random(3)
        )

    def test_equality_and_hash(self):
        assert RngFactory(5) == RngFactory(5)
        assert RngFactory(5) != RngFactory(6)
        assert RngFactory(5).child("x") == RngFactory(5).child("x")
        assert hash(RngFactory(5)) == hash(RngFactory(5))

    def test_master_seed_changes_everything(self):
        a = RngFactory(1).stream("noise").random(8)
        b = RngFactory(2).stream("noise").random(8)
        assert not np.array_equal(a, b)


class TestBatchedDrawEquivalence:
    """The hot-path refactor pre-draws per-run arrays instead of looping
    scalar draws.  These tests lock the contract that makes that safe:
    a batched numpy draw consumes the generator's stream exactly like the
    equivalent sequence of scalar draws, so results stay bit-identical
    (goldens must not move)."""

    def test_choice_batched_equals_scalar_loop(self):
        pool = [3, 7, 11, 19, 23, 29]
        a, b = np.random.default_rng(42), np.random.default_rng(42)
        scalar = [int(a.choice(pool)) for _ in range(64)]
        batched = [int(c) for c in b.choice(pool, size=64)]
        assert scalar == batched
        # generator state advanced identically: next draws agree
        assert a.random() == b.random()

    def test_uniform_batched_equals_affine_random(self):
        lo, hi = -0.3, 1.7
        a, b = np.random.default_rng(7), np.random.default_rng(7)
        u = a.uniform(lo, hi, size=512)
        r = lo + (hi - lo) * b.random(512)
        np.testing.assert_array_equal(u, r)

    def test_lognormal_batched_equals_scalar_loop(self):
        a, b = np.random.default_rng(9), np.random.default_rng(9)
        scalar = [a.lognormal(mean=-0.01, sigma=0.2) for _ in range(128)]
        batched = b.lognormal(mean=-0.01, sigma=0.2, size=128).tolist()
        assert scalar == batched
        assert a.random() == b.random()

    def test_placement_matches_scalar_reference(self):
        """IdleFirstPlacement's batched draw must reproduce the historical
        per-event loop bit-for-bit (same CPUs, same final stream state)."""
        from repro.osnoise.placement import IdleFirstPlacement
        from repro.osnoise.source import NoiseEvent, placed
        from repro.platform import get_platform

        machine = get_platform("vera").machine
        events = [
            NoiseEvent(start=0.001 * i, duration=1e-5, kind="daemon")
            for i in range(40)
        ]
        busy = list(range(8))

        def reference(events, machine, busy_cpus, rng):
            busy = set(busy_cpus)
            busy_cores = {machine.hwthread(c).core_id for c in busy}
            idle_free = [
                c for c in range(machine.n_cpus)
                if c not in busy and machine.hwthread(c).core_id not in busy_cores
            ]
            idle_sib = [
                c for c in range(machine.n_cpus)
                if c not in busy and machine.hwthread(c).core_id in busy_cores
            ]
            all_cpus = np.arange(machine.n_cpus)
            out = []
            for ev in events:
                if ev.cpu is not None:
                    out.append(ev)
                    continue
                if idle_free:
                    cpu = int(rng.choice(idle_free))
                elif idle_sib:
                    cpu = int(rng.choice(idle_sib))
                else:
                    cpu = int(rng.choice(all_cpus))
                out.append(placed(ev, cpu))
            return out

        a, b = np.random.default_rng(1234), np.random.default_rng(1234)
        got = IdleFirstPlacement().place(events, machine, busy, b)
        want = reference(events, machine, busy, a)
        assert [e.cpu for e in got] == [e.cpu for e in want]
        assert a.random() == b.random()

    def test_placement_saturated_machine(self):
        """All CPUs busy: the batched draw falls through to the random
        preemption pool, still matching the scalar reference."""
        from repro.osnoise.placement import IdleFirstPlacement
        from repro.osnoise.source import NoiseEvent
        from repro.platform import get_platform

        machine = get_platform("vera").machine
        events = [
            NoiseEvent(start=0.001 * i, duration=1e-5, kind="daemon")
            for i in range(16)
        ]
        busy = list(range(machine.n_cpus))
        a, b = np.random.default_rng(5), np.random.default_rng(5)
        got = IdleFirstPlacement().place(events, machine, busy, b)
        want = [int(a.choice(np.arange(machine.n_cpus))) for _ in range(16)]
        assert [e.cpu for e in got] == want
        assert a.random() == b.random()

    def test_scan_victims_early_out_consumes_same_stream(self):
        """The all-deques-empty fast path must draw the permutation anyway
        (draw order is the determinism contract) and force the exact
        outcome the probe loop would have produced."""
        from repro.omp.tasking.deque import TaskDeque
        from repro.omp.tasking.params import TaskCostModel, TaskCostParams
        from repro.omp.tasking.scheduler import WorkStealingScheduler
        from repro.omp.team import Team
        from repro.platform import get_platform

        plat = get_platform("vera")
        team = Team(machine=plat.machine, cpus=tuple(range(8)), bound=True)
        sched = WorkStealingScheduler.__new__(WorkStealingScheduler)
        sched.team = team

        deques = [TaskDeque(owner=i) for i in range(8)]
        a, b = np.random.default_rng(3), np.random.default_rng(3)
        # fast path (queued=0) vs the probe loop (queued>0, all empty)
        fast = sched._scan_victims(2, deques, a, queued=0)
        slow = sched._scan_victims(2, deques, b, queued=1)
        assert fast == slow == (None, 7)
        assert a.random() == b.random()
