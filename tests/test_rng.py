"""Tests for repro.rng (deterministic named streams)."""

import numpy as np
import pytest

from repro.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "noise", 3) == derive_seed(42, "noise", 3)

    def test_path_sensitivity(self):
        assert derive_seed(42, "noise", 3) != derive_seed(42, "noise", 4)
        assert derive_seed(42, "noise") != derive_seed(42, "freq")

    def test_seed_sensitivity(self):
        assert derive_seed(42, "noise") != derive_seed(43, "noise")

    def test_component_types_distinguished(self):
        # int 1 vs str "1" vs True must hash differently
        seeds = {
            derive_seed(0, 1),
            derive_seed(0, "1"),
            derive_seed(0, True),
            derive_seed(0, 1.0),
            derive_seed(0, None),
        }
        assert len(seeds) == 5

    def test_tuple_components(self):
        assert derive_seed(0, ("a", 1)) == derive_seed(0, ("a", 1))
        assert derive_seed(0, ("a", 1)) != derive_seed(0, ("a", 2))

    def test_rejects_unhashable_objects(self):
        with pytest.raises(TypeError):
            derive_seed(0, object())

    def test_128_bit_range(self):
        s = derive_seed(42, "x")
        assert 0 <= s < 2**128


class TestRngFactory:
    def test_same_path_same_sequence(self):
        f = RngFactory(7)
        a = f.stream("scheduler", 0).random(10)
        b = f.stream("scheduler", 0).random(10)
        np.testing.assert_array_equal(a, b)

    def test_streams_are_independent_objects(self):
        f = RngFactory(7)
        a = f.stream("x")
        a.random(5)  # consuming a must not affect a fresh stream
        b = f.stream("x")
        assert b.random() == RngFactory(7).stream("x").random()

    def test_different_paths_differ(self):
        f = RngFactory(7)
        a = f.stream("noise").random(4)
        b = f.stream("freq").random(4)
        assert not np.array_equal(a, b)

    def test_child_scoping(self):
        f = RngFactory(7)
        child = f.child("run", 3)
        direct = f.stream("run", 3, "noise").random(4)
        scoped = child.stream("noise").random(4)
        np.testing.assert_array_equal(direct, scoped)

    def test_child_of_child(self):
        f = RngFactory(1).child("a").child("b", 2)
        np.testing.assert_array_equal(
            f.stream("z").random(3), RngFactory(1).stream("a", "b", 2, "z").random(3)
        )

    def test_equality_and_hash(self):
        assert RngFactory(5) == RngFactory(5)
        assert RngFactory(5) != RngFactory(6)
        assert RngFactory(5).child("x") == RngFactory(5).child("x")
        assert hash(RngFactory(5)) == hash(RngFactory(5))

    def test_master_seed_changes_everything(self):
        a = RngFactory(1).stream("noise").random(8)
        b = RngFactory(2).stream("noise").random(8)
        assert not np.array_equal(a, b)
