"""Tests for the declarative Study API (repro.harness.study).

Covers axis composition and ordering, execution equality across the
serial / parallel / cached paths, tidy-record export round-trips, the
Study-driven report renderers, and — crucially — a byte-identity
regression for every registered experiment driver against renders
captured from the pre-Study hand-rolled drivers (``tests/golden/``).
"""

import math
from pathlib import Path

import numpy as np
import pytest

from golden_kwargs import GOLDEN_KWARGS
from repro.errors import HarnessError
from repro.harness import ExperimentConfig, ResultCache, Study
from repro.harness.experiments import EXPERIMENTS
from repro.harness.report import (
    render_group_summaries,
    render_pivot,
    render_series,
    render_study_overview,
    sparkline,
)
from repro.harness.study import config_value, load_records

BASE = ExperimentConfig(
    platform="toy",
    benchmark="syncbench",
    num_threads=2,
    runs=2,
    seed=7,
    benchmark_params={"outer_reps": 4, "constructs": ("barrier",)},
)


class TestComposition:
    def test_no_axes_is_the_base_config(self):
        assert Study(BASE).configs() == (BASE,)

    def test_grid_single_axis_order(self):
        configs = Study(BASE).grid(num_threads=[2, 4, 8]).configs()
        assert [c.num_threads for c in configs] == [2, 4, 8]

    def test_grid_multi_key_product_first_key_outermost(self):
        configs = Study(BASE).grid(num_threads=[2, 4], runtime=["gnu", "llvm"]).configs()
        assert [(c.num_threads, c.runtime) for c in configs] == [
            (2, "gnu"), (2, "llvm"), (4, "gnu"), (4, "llvm"),
        ]

    def test_successive_grids_multiply_first_call_outermost(self):
        configs = Study(BASE).grid(runtime=["gnu", "llvm"]).grid(num_threads=[2, 4]).configs()
        assert [(c.runtime, c.num_threads) for c in configs] == [
            ("gnu", 2), ("gnu", 4), ("llvm", 2), ("llvm", 4),
        ]

    def test_zip_ties_values_positionally(self):
        configs = Study(BASE).zip(num_threads=[2, 4], schedule=["static", "dynamic"]).configs()
        assert [(c.num_threads, c.schedule) for c in configs] == [
            (2, "static"), (4, "dynamic"),
        ]

    def test_zip_length_mismatch_raises(self):
        with pytest.raises(HarnessError, match="share a length"):
            Study(BASE).zip(num_threads=[2, 4], schedule=["static"])

    def test_cases_allow_irregular_points(self):
        configs = Study(BASE).cases(
            {"platform": "toy", "num_threads": 2},
            {"platform": "vera", "num_threads": 8, "schedule": "dynamic"},
        ).configs()
        assert [(c.platform, c.num_threads, c.schedule) for c in configs] == [
            ("toy", 2, "static"), ("vera", 8, "dynamic"),
        ]

    def test_unknown_key_falls_through_to_benchmark_params(self):
        configs = Study(BASE).grid(outer_reps=[3, 9]).configs()
        assert [c.benchmark_params["outer_reps"] for c in configs] == [3, 9]
        # untouched base params survive the merge
        assert all(c.benchmark_params["constructs"] == ("barrier",) for c in configs)

    def test_benchmark_params_point_merges_instead_of_replacing(self):
        configs = Study(BASE).cases({"benchmark_params": {"outer_reps": 11}}).configs()
        assert configs[0].benchmark_params == {
            "outer_reps": 11, "constructs": ("barrier",),
        }

    def test_derive_computes_fields_from_the_expanded_config(self):
        configs = (
            Study(BASE)
            .grid(num_threads=[2, 4])
            .derive(places=lambda cfg: f"{{0:{cfg.num_threads}}}")
            .configs()
        )
        assert [c.places for c in configs] == ["{0:2}", "{0:4}"]

    def test_derive_into_benchmark_params(self):
        configs = (
            Study(BASE)
            .grid(num_threads=[2, 4])
            .derive(outer_reps=lambda cfg: 2 * cfg.num_threads)
            .configs()
        )
        assert [c.benchmark_params["outer_reps"] for c in configs] == [4, 8]

    def test_where_filters_after_derive(self):
        configs = (
            Study(BASE)
            .grid(num_threads=[2, 4, 8])
            .where(lambda cfg: cfg.num_threads < 8)
            .configs()
        )
        assert [c.num_threads for c in configs] == [2, 4]

    def test_later_axis_overrides_earlier_key(self):
        configs = Study(BASE).grid(num_threads=[2, 4]).grid(num_threads=[8]).configs()
        assert [c.num_threads for c in configs] == [8, 8]

    def test_axis_names_ordered_and_deduplicated(self):
        study = Study(BASE).grid(num_threads=[2]).zip(runtime=["gnu"], num_threads=[4])
        assert study.axis_names() == ("num_threads", "runtime")

    def test_studies_are_immutable(self):
        base = Study(BASE).grid(num_threads=[2, 4])
        widened = base.grid(runtime=["gnu", "llvm"])
        assert len(base) == 2
        assert len(widened) == 4

    def test_scalar_axis_value_rejected(self):
        with pytest.raises(HarnessError, match="sequence of values"):
            Study(BASE).grid(num_threads=4)

    def test_string_axis_value_rejected(self):
        with pytest.raises(HarnessError, match="sequence of values"):
            Study(BASE).grid(runtime="gnu")

    def test_empty_axis_rejected(self):
        with pytest.raises(HarnessError, match="no values"):
            Study(BASE).grid(num_threads=[])

    def test_config_value_resolves_fields_and_params(self):
        assert config_value(BASE, "num_threads") == 2
        assert config_value(BASE, "outer_reps") == 4
        with pytest.raises(HarnessError, match="no axis"):
            config_value(BASE, "does_not_exist")


class TestExecution:
    @pytest.fixture(scope="class")
    def study(self):
        return Study(BASE, name="exec").grid(num_threads=[2, 4], runtime=["gnu", "llvm"])

    def test_empty_study_refuses_to_run(self):
        with pytest.raises(HarnessError, match="no configurations"):
            Study(BASE).where(lambda cfg: False).run()

    def test_serial_equals_parallel_equals_cached_replay(self, study, tmp_path):
        serial = study.run(jobs=1)
        parallel = study.run(jobs=4)
        cache = ResultCache(tmp_path / "cache")
        warmed = study.run(jobs=4, cache=cache)
        assert cache.stores == len(study)
        replayed = study.run(jobs=1, cache=cache)
        assert cache.hits == len(study)
        baseline = [r.to_dict() for r in serial.results]
        for other in (parallel, warmed, replayed):
            assert [r.to_dict() for r in other.results] == baseline

    def test_results_align_with_configs(self, study):
        res = study.run(jobs=1)
        assert res.configs == study.configs()
        assert all(cfg == r.config for cfg, r in res)

    def test_by_and_get_and_values(self, study):
        res = study.run(jobs=1)
        by = res.by("num_threads", "runtime")
        assert set(by) == {(2, "gnu"), (2, "llvm"), (4, "gnu"), (4, "llvm")}
        assert by[(4, "llvm")] is res.get(num_threads=4, runtime="llvm")
        assert res.values("num_threads") == (2, 4)
        assert res.values("runtime") == ("gnu", "llvm")

    def test_by_duplicate_key_raises(self, study):
        res = study.run(jobs=1)
        with pytest.raises(HarnessError, match="uniquely"):
            res.by("num_threads")

    def test_get_without_unique_match_raises(self, study):
        res = study.run(jobs=1)
        with pytest.raises(HarnessError, match="need exactly 1"):
            res.get(num_threads=2)
        with pytest.raises(HarnessError, match="need exactly 1"):
            res.get(num_threads=999, runtime="gnu")


class TestRecordsAndExport:
    @pytest.fixture(scope="class")
    def result(self):
        return Study(BASE, name="export").grid(num_threads=[2, 4]).run(jobs=1)

    def test_record_axes_prepend_identity(self, result):
        assert result.record_axes() == ("platform", "benchmark", "num_threads")

    def test_experiment_result_to_records(self, result):
        rows = result.results[0].to_records()
        labels = result.results[0].labels()
        assert len(rows) == BASE.runs * len(labels)
        assert [r["label"] for r in rows[: BASE.runs]] == [labels[0]] * BASE.runs
        assert [r["run"] for r in rows[: BASE.runs]] == list(range(BASE.runs))
        assert all(r["min"] <= r["median"] <= r["max"] for r in rows)

    def test_one_record_per_config_run_label(self, result):
        records = result.to_records()
        labels = result.results[0].labels()
        assert len(records) == 2 * BASE.runs * len(labels)
        first = records[0]
        assert first["platform"] == "toy"
        assert first["num_threads"] == 2
        assert first["n"] == 4
        assert 0 < first["mean"] and first["min"] <= first["mean"] <= first["max"]
        assert math.isclose(first["norm_max"], first["max"] / first["mean"])

    def test_group_summaries_pool_all_repetitions(self, result):
        groups = result.group_summaries("num_threads", label="barrier")
        assert set(groups) == {2, 4}
        for n, stats in groups.items():
            matrix = result.get(num_threads=n).runs_matrix("barrier")
            assert stats.n == matrix.size
            assert math.isclose(stats.mean, float(matrix.mean()))

    def test_group_summaries_callable_label(self, result):
        groups = result.group_summaries(
            "num_threads", label=lambda cfg: "barrier.overhead"
        )
        assert all(s.n == 2 * 4 for s in groups.values())

    def test_csv_round_trip(self, result, tmp_path):
        path = tmp_path / "records.csv"
        result.to_csv(path)
        loaded = load_records(path)
        records = result.to_records()
        assert len(loaded) == len(records)
        for got, want in zip(loaded, records):
            assert set(got) == set(want)
            for key, value in want.items():
                if isinstance(value, float):
                    assert math.isclose(got[key], value, rel_tol=1e-12)
                else:
                    assert got[key] == value

    def test_json_round_trip(self, result, tmp_path):
        path = tmp_path / "records.json"
        result.to_json(path)
        assert load_records(path) == result.to_records()


class TestStudyRenderers:
    def test_render_pivot_headers_and_cells(self):
        text = render_pivot(
            "threads", [2, 4], ["a", "b"], ("x", "y"),
            lambda r, c: [f"{r}{c}x", f"{r}{c}y"],
            col_label=lambda c: f"col-{c}",
        )
        lines = text.splitlines()
        assert lines[0].split() == [
            "threads", "col-a", "x", "col-a", "y", "col-b", "x", "col-b", "y",
        ]
        assert "2ax" in lines[2] and "4by" in lines[3]

    def test_render_pivot_cell_arity_checked(self):
        with pytest.raises(HarnessError, match="pivot cell"):
            render_pivot("r", [1], [1], ("x", "y"), lambda r, c: ["only-one"])

    def test_render_study_overview_and_groups(self):
        res = Study(BASE).grid(num_threads=[2, 4]).run(jobs=1)
        overview = render_study_overview(res, label="barrier")
        assert "num_threads" in overview and "norm max" in overview
        assert len(overview.splitlines()) == 2 + len(res)
        grouped = render_group_summaries(
            "num_threads", res.group_summaries("num_threads", label="barrier")
        )
        assert len(grouped.splitlines()) == 2 + 2


class TestReportSatellites:
    def test_sparkline_nan_renders_blank_glyph(self):
        assert sparkline([1.0, float("nan"), 3.0]) == "▁·█"

    def test_sparkline_all_nan(self):
        assert sparkline([float("nan")] * 3) == "···"

    def test_sparkline_nan_with_flat_finite_values(self):
        assert sparkline([2.0, float("nan"), 2.0]) == "▁·▁"

    def test_sparkline_inf_treated_as_blank(self):
        assert sparkline([1.0, float("inf"), 3.0]) == "▁·█"

    def test_sparkline_still_fine_without_nan(self):
        assert sparkline([1, 2, 3]) == "▁▅█"
        assert sparkline([]) == ""

    def test_render_series_length_mismatch_raises(self):
        with pytest.raises(HarnessError, match="3 x values but 2 y values"):
            render_series("s", [1, 2, 3], [1.0, 2.0])

    def test_render_series_nan_cell_does_not_crash(self):
        line = render_series("s", [1, 2], [1.0, float("nan")])
        assert "·" in line and "nan" in line


class TestGoldenArtifacts:
    """Every rewritten driver renders byte-identically to the pre-Study
    drivers (renders captured in tests/golden/ before the refactor)."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_KWARGS))
    def test_driver_matches_pre_refactor_render(self, name):
        golden = (Path(__file__).parent / "golden" / f"{name}.txt").read_text()
        artifact = EXPERIMENTS[name].driver(jobs=1, **GOLDEN_KWARGS[name])
        assert artifact.render() + "\n" == golden

    def test_goldens_cover_every_registered_driver(self):
        assert set(GOLDEN_KWARGS) == set(EXPERIMENTS)
