"""Tests for synchronization-construct cost models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.omp import SyncCostModel, SyncCostParams, Team
from repro.omp.constructs import CONSTRUCT_PROFILES
from repro.rng import RngFactory
from repro.topology import dardel_topology, vera_topology, TopologyBuilder
from repro.types import SyncConstruct


@pytest.fixture
def machine():
    return TopologyBuilder("toy").add_sockets(2, 1, 4, smt=2).build()


def team_on(machine, cpus, bound=True):
    return Team(machine, tuple(cpus), bound=bound)


class TestEffectiveLineLatency:
    def test_single_numa_uses_local(self, machine):
        model = SyncCostModel(SyncCostParams())
        team = team_on(machine, (0, 1, 2, 3))
        assert model.effective_line_latency(team) == pytest.approx(
            SyncCostParams().line_local
        )

    def test_cross_socket_raises_latency(self, machine):
        model = SyncCostModel(SyncCostParams())
        near = team_on(machine, (0, 1, 2, 3))
        far = team_on(machine, (0, 1, 4, 5))  # half the team on socket 1
        assert model.effective_line_latency(far) > model.effective_line_latency(near)

    def test_smt_team_pays_factor(self, machine):
        params = SyncCostParams()
        model = SyncCostModel(params)
        st = team_on(machine, (0, 1))
        mt = team_on(machine, (0, 8))  # core 0's two hw threads
        assert model.effective_line_latency(mt) == pytest.approx(
            model.effective_line_latency(st) * params.smt_sync_factor
        )


class TestBarrierAndFork:
    def test_barrier_zero_for_one_thread(self, machine):
        model = SyncCostModel(SyncCostParams())
        assert model.barrier_cost(team_on(machine, (0,))) == 0.0

    def test_barrier_grows_log(self, machine):
        model = SyncCostModel(SyncCostParams())
        t2 = model.barrier_cost(team_on(machine, (0, 1)))
        t8 = model.barrier_cost(team_on(machine, tuple(range(8))))
        assert t8 > t2

    def test_fork_linear_in_threads(self):
        m = dardel_topology()
        model = SyncCostModel(SyncCostParams())
        f32 = model.fork_cost(team_on(m, tuple(range(32))))
        f128 = model.fork_cost(team_on(m, tuple(range(128))))
        # fork_per_thread dominates at high counts -> roughly linear
        assert f128 > 2.5 * f32

    def test_fork_zero_for_one_thread(self, machine):
        model = SyncCostModel(SyncCostParams())
        assert model.fork_cost(team_on(machine, (0,))) == 0.0


class TestConstructCosts:
    def test_all_constructs_have_profiles(self):
        assert set(CONSTRUCT_PROFILES) == set(SyncConstruct)

    def test_all_constructs_costed(self, machine):
        model = SyncCostModel(SyncCostParams())
        team = team_on(machine, (0, 1, 2, 3))
        for construct in SyncConstruct:
            cost = model.construct_cost(construct, team)
            assert cost > 0, construct

    def test_reduction_most_expensive_parallel_construct(self):
        """The paper: reduction is the most time-consuming sync construct."""
        m = dardel_topology()
        model = SyncCostModel(SyncCostParams())
        team = team_on(m, tuple(range(128)))
        red = model.construct_cost(SyncConstruct.REDUCTION, team)
        for construct in (
            SyncConstruct.PARALLEL,
            SyncConstruct.FOR,
            SyncConstruct.BARRIER,
            SyncConstruct.SINGLE,
            SyncConstruct.PARALLEL_FOR,
        ):
            assert red > model.construct_cost(construct, team)

    def test_socket_crossing_jump(self):
        """Figure 1: sharp cost increase when the team spans two sockets."""
        m = vera_topology()
        model = SyncCostModel(SyncCostParams())
        one_socket = team_on(m, tuple(range(16)))
        two_socket = team_on(m, tuple(range(30)))
        r16 = model.construct_cost(SyncConstruct.REDUCTION, one_socket)
        r30 = model.construct_cost(SyncConstruct.REDUCTION, two_socket)
        assert r30 > 1.5 * r16

    def test_serialized_constructs_flagged(self):
        for c in (SyncConstruct.CRITICAL, SyncConstruct.LOCK_UNLOCK,
                  SyncConstruct.ORDERED, SyncConstruct.ATOMIC):
            assert CONSTRUCT_PROFILES[c].serialized

    def test_fork_constructs_flagged(self):
        for c in (SyncConstruct.PARALLEL, SyncConstruct.PARALLEL_FOR,
                  SyncConstruct.REDUCTION):
            assert CONSTRUCT_PROFILES[c].has_fork

    def test_lock_handoff_grows_with_waiters(self, machine):
        model = SyncCostModel(SyncCostParams())
        h2 = model.lock_handoff(team_on(machine, (0, 1)))
        h8 = model.lock_handoff(team_on(machine, tuple(range(8))))
        assert h8 > h2


class TestJitter:
    def test_sigma_grows_with_threads(self):
        m = dardel_topology()
        model = SyncCostModel(SyncCostParams())
        s4 = model.jitter_sigma(team_on(m, tuple(range(4))))
        s128 = model.jitter_sigma(team_on(m, tuple(range(128))))
        assert s128 > s4

    def test_mt_boosts_sigma(self):
        """Figure 5e: MT teams are much noisier."""
        m = dardel_topology()
        model = SyncCostModel(SyncCostParams())
        st_team = team_on(m, tuple(range(32)))  # 32 cores
        mt_cpus = [c for core in range(16) for c in (core, core + 128)]
        mt_team = team_on(m, tuple(mt_cpus))  # 16 cores, both siblings
        assert model.jitter_sigma(mt_team) > model.jitter_sigma(st_team) + 0.1

    def test_multiplier_mean_near_one(self, machine):
        model = SyncCostModel(SyncCostParams())
        team = team_on(machine, (0, 1, 2, 3))
        rng = RngFactory(1).stream("jit")
        samples = [model.sample_multiplier(team, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(1.0, abs=0.05)
        assert all(s > 0 for s in samples)


class TestParamsValidation:
    def test_latency_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            SyncCostParams(line_local=100e-9, line_cross_numa=50e-9)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            SyncCostParams(fork_base=-1.0)

    def test_smt_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            SyncCostParams(smt_sync_factor=0.5)
