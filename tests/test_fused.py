"""The fused rep-axis execution plane: golden-locked to the scalar engine.

The contract under test (docs/performance.md): for every eligible
configuration, ``run_fused(Runner(cfg))`` is **byte-identical** to
``Runner(cfg).run()`` — same records, same samples, same serialized
bytes — because the fused plane is a reformulation of the same
arithmetic, not an approximation.  The lock is enforced at three levels:

* primitives — :class:`~repro.rng.RepStreams` rows are bit-equal to the
  scalar per-run streams, and :class:`~repro.sim.intervals.IntervalBatch`
  row sums are bit-equal to per-set scalar overlap;
* whole runs — ``run_fused`` vs ``Runner.run`` across benchmark shapes,
  plus the registered-experiment golden files rendered through
  :class:`~repro.harness.backend.FusedBackend`;
* plumbing — eligibility refusals, automatic scalar fallback, the
  ``fused=`` knob on :class:`~repro.harness.study.Study` /
  :func:`~repro.harness.backend.make_backend`, and job-spec validation.
"""

from pathlib import Path

import numpy as np
import pytest

from golden_kwargs import GOLDEN_KWARGS
from repro.errors import ConfigurationError
from repro.harness import ExperimentConfig, Study
from repro.harness.backend import (
    FusedBackend,
    SerialBackend,
    make_backend,
    normalize_fused,
)
from repro.harness.experiments import EXPERIMENTS
from repro.harness.runner import Runner
from repro.obs.tracer import SpanTracer
from repro.rng import RngFactory
from repro.serve.jobspec import JobSpecError, validate_spec
from repro.sim.fused import FUSED_BENCHMARKS, fused_ineligibility, run_fused
from repro.sim.intervals import IntervalBatch, IntervalSet


class TestRepStreams:
    """Rep-axis RNG fan-out: row r == the scalar engine's run-r stream."""

    def test_rows_bit_equal_scalar_run_streams(self):
        reps = RngFactory(42).rep_streams(5, "noise", "cpu", 3)
        batched = reps.random(8)
        assert batched.shape == (5, 8)
        for r in range(5):
            scalar = RngFactory(42).stream("run", r, "noise", "cpu", 3)
            # bit-equality, not closeness: same generator, same draw order
            assert np.array_equal(batched[r], scalar.random(8))

    @pytest.mark.parametrize(
        "method, kwargs",
        [
            ("random", {}),
            ("uniform", dict(low=0.25, high=4.0)),
            ("lognormal", dict(mean=-1.0, sigma=0.5)),
            ("normal", dict(loc=2.0, scale=0.125)),
        ],
    )
    def test_every_distribution_preserves_draw_order(self, method, kwargs):
        reps = RngFactory(7).rep_streams(3, "span")
        batched = getattr(reps, method)(size=4, **kwargs)
        for r in range(3):
            g = RngFactory(7).stream("run", r, "span")
            assert np.array_equal(batched[r], getattr(g, method)(size=4, **kwargs))

    def test_consuming_a_draw_advances_every_row_in_lockstep(self):
        reps = RngFactory(9).rep_streams(2, "x")
        reps.random(3)  # discarded, but each row advanced by 3 variates
        second = reps.random(2)
        for r in range(2):
            g = RngFactory(9).stream("run", r, "x")
            g.random(3)
            assert np.array_equal(second[r], g.random(2))


class TestIntervalBatch:
    """Length-grouped batched overlap == per-set scalar overlap, bitwise."""

    def _sets(self):
        rng = np.random.default_rng(11)
        sets = [IntervalSet.empty()]
        for n in (1, 2, 7, 7, 40):  # mixed lengths, including a shared group
            starts = np.sort(rng.random(n) * 100.0)
            sets.append(IntervalSet.from_events(starts, rng.random(n) * 0.5))
        return sets

    @pytest.mark.parametrize(
        "a, b",
        [(0.0, 100.0), (13.0, 13.5), (50.0, 50.0), (60.0, 40.0), (-5.0, 0.0)],
    )
    def test_overlap_fused_bitwise_equals_scalar(self, a, b):
        sets = self._sets()
        batch = IntervalBatch(sets)
        fused = batch.overlap_fused(
            np.full(len(sets), a), np.full(len(sets), b)
        )
        for k, s in enumerate(sets):
            assert fused[k] == s.overlap(a, b)  # exact, not approx

    def test_per_row_windows(self):
        sets = self._sets()
        batch = IntervalBatch(sets)
        a = np.linspace(0.0, 90.0, len(sets))
        b = a + np.linspace(0.5, 30.0, len(sets))
        fused = batch.overlap_fused(a, b)
        for k, s in enumerate(sets):
            assert fused[k] == s.overlap(float(a[k]), float(b[k]))

    def test_len(self):
        assert len(IntervalBatch(self._sets())) == 6


class TestEligibility:
    def test_taskbench_is_rep_coupled(self):
        cfg = ExperimentConfig(benchmark="taskbench")
        assert "rep-coupled" in fused_ineligibility(cfg)

    def test_unknown_benchmark_has_no_formulation(self):
        cfg = ExperimentConfig(benchmark="mystery")
        assert "no fused formulation" in fused_ineligibility(cfg)

    def test_unbound_teams_are_ineligible(self):
        cfg = ExperimentConfig(proc_bind="false", places=None)
        assert "unbound" in fused_ineligibility(cfg)

    @pytest.mark.parametrize("name", sorted(FUSED_BENCHMARKS))
    def test_bound_fused_benchmarks_are_eligible(self, name):
        assert fused_ineligibility(ExperimentConfig(benchmark=name)) is None

    def test_run_fused_refuses_ineligible_config(self):
        runner = Runner(ExperimentConfig(benchmark="taskbench", runs=1))
        with pytest.raises(ConfigurationError, match="not fused-eligible"):
            run_fused(runner)

    def test_run_fused_refuses_enabled_tracer(self):
        runner = Runner(ExperimentConfig(runs=1), tracer=SpanTracer())
        with pytest.raises(ConfigurationError, match="scalar engine"):
            run_fused(runner)


#: Byte-identity shapes: one per fused benchmark, plus the wrinkles that
#: exercise distinct code paths (freq logging, llvm/passive wait spinning,
#: SMT sibling pressure, quiet platforms, non-static schedules).
IDENTITY_SHAPES = {
    "syncbench": dict(
        benchmark="syncbench", platform="vera", num_threads=4, runs=3,
        benchmark_params={"outer_reps": 4},
    ),
    "syncbench-llvm-passive": dict(
        benchmark="syncbench", platform="vera", num_threads=4, runs=3,
        runtime="llvm", wait_policy="passive",
        benchmark_params={"outer_reps": 3},
    ),
    "syncbench-freqlog": dict(
        benchmark="syncbench", platform="vera", num_threads=2, runs=2,
        freq_logging=True, benchmark_params={"outer_reps": 3},
    ),
    "schedbench-dynamic": dict(
        benchmark="schedbench", platform="vera", num_threads=4, runs=3,
        schedule="dynamic", schedule_chunk=1,
        benchmark_params={"outer_reps": 3},
    ),
    "babelstream-smt": dict(
        benchmark="babelstream", platform="dardel", num_threads=16, runs=2,
        places="threads", benchmark_params={"num_times": 4},
    ),
}


class TestRunFusedByteIdentity:
    @pytest.mark.parametrize("shape", sorted(IDENTITY_SHAPES))
    def test_fused_equals_scalar(self, shape):
        kwargs = IDENTITY_SHAPES[shape]
        scalar = Runner(ExperimentConfig(**kwargs)).run()
        fused = run_fused(Runner(ExperimentConfig(**kwargs)))
        assert fused.to_dict() == scalar.to_dict()


class TestBackends:
    BASE = ExperimentConfig(
        platform="vera", num_threads=2, runs=2,
        benchmark_params={"outer_reps": 3},
    )

    def test_fused_backend_matches_serial_and_stamps_provenance(self):
        study = Study(self.BASE).grid(num_threads=[2, 4])
        serial = study.run()
        fused = study.run(backend=FusedBackend("on"))
        assert [r.to_dict() for r in fused.results] == [
            r.to_dict() for r in serial.results
        ]
        assert {
            rec.worker_id for res in fused.results for rec in res.records
        } == {"fused"}

    def test_ineligible_configs_fall_back_to_scalar(self):
        cfg = ExperimentConfig(benchmark="taskbench", runs=2)
        study = Study(cfg)
        fused = study.run(backend=FusedBackend("on"))
        serial = study.run()
        assert [r.to_dict() for r in fused.results] == [
            r.to_dict() for r in serial.results
        ]
        # provenance says the scalar engine ran it
        assert {rec.worker_id for rec in fused[0].records} == {"main"}

    def test_auto_mode_skips_single_run_configs(self):
        study = Study(ExperimentConfig(runs=1, benchmark_params={"outer_reps": 2}))
        auto = study.run(backend=FusedBackend("auto"))
        assert {rec.worker_id for rec in auto[0].records} == {"main"}
        forced = study.run(backend=FusedBackend("on"))
        assert {rec.worker_id for rec in forced[0].records} == {"fused"}
        assert auto[0].to_dict() == forced[0].to_dict()

    def test_study_run_fused_knob(self):
        study = Study(self.BASE).grid(num_threads=[2, 4])
        assert [r.to_dict() for r in study.run(fused="on").results] == [
            r.to_dict() for r in study.run().results
        ]

    def test_make_backend_routes_fused(self):
        assert make_backend("auto", jobs=1, fused="off") is None
        backend = make_backend("auto", jobs=1, fused="auto")
        assert isinstance(backend, FusedBackend)
        # an explicit fused mode wins over the serial spelling: both run
        # in-process, and FusedBackend falls back to scalar per config
        assert isinstance(make_backend("serial", jobs=1, fused="on"), FusedBackend)
        assert isinstance(make_backend("serial", jobs=1, fused="off"), SerialBackend)

    def test_normalize_fused_validates(self):
        assert normalize_fused(None) == "off"
        assert normalize_fused("auto") == "auto"
        with pytest.raises(ConfigurationError, match="fused"):
            normalize_fused("sometimes")

    def test_fused_backend_rejects_off(self):
        with pytest.raises(ConfigurationError):
            FusedBackend("off")


class TestGoldenLockFused:
    """Every registered experiment, rendered through the fused backend,
    reproduces the committed pre-Study golden files byte-for-byte — the
    same lock the scalar engine answers to in test_study.py."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_KWARGS))
    def test_driver_matches_golden_under_fused_backend(self, name):
        golden = (Path(__file__).parent / "golden" / f"{name}.txt").read_text()
        artifact = EXPERIMENTS[name].driver(
            jobs=1, backend=FusedBackend("on"), **GOLDEN_KWARGS[name]
        )
        assert artifact.render() + "\n" == golden

    def test_lock_covers_every_registered_driver(self):
        assert set(GOLDEN_KWARGS) == set(EXPERIMENTS)


class TestJobSpecFused:
    def _spec(self, **extra):
        return {"base": {"runs": 2}, "axes": [], **extra}

    def test_fused_mode_is_accepted_and_normalized(self):
        out = validate_spec(self._spec(fused="on"))
        assert out["fused"] == "on"

    def test_bogus_fused_mode_is_rejected(self):
        with pytest.raises(JobSpecError, match="fused"):
            validate_spec(self._spec(fused="sometimes"))
