"""Tests for the experiment harness (config, runner, results, logger)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, HarnessError
from repro.harness import (
    ExperimentConfig,
    ExperimentResult,
    FrequencyLogger,
    Runner,
)
from repro.harness.report import render_series, render_table, sparkline
from repro.freq.dvfs import FrequencyModel
from repro.freq.governor import PerformanceGovernor
from repro.platform import toy
from repro.rng import RngFactory


QUICK = {"outer_reps": 6}


class TestExperimentConfig:
    def test_defaults_valid(self):
        cfg = ExperimentConfig()
        assert cfg.display_label

    def test_omp_environment(self):
        cfg = ExperimentConfig(platform="toy", num_threads=4, proc_bind="close")
        env = cfg.omp_environment()
        assert env.num_threads == 4
        assert env.bound

    def test_unbound(self):
        cfg = ExperimentConfig(proc_bind="false", places=None)
        assert not cfg.omp_environment().bound
        assert "unbound" in cfg.display_label

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_threads=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(runs=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(proc_bind="sideways")
        with pytest.raises(ConfigurationError):
            ExperimentConfig(schedule="chaotic")

    def test_dict_roundtrip(self):
        cfg = ExperimentConfig(platform="toy", benchmark="schedbench",
                               schedule="dynamic", schedule_chunk=1,
                               benchmark_params={"outer_reps": 3})
        again = ExperimentConfig.from_dict(cfg.to_dict())
        assert again == cfg

    def test_with_overrides(self):
        cfg = ExperimentConfig().with_overrides(runs=3)
        assert cfg.runs == 3


class TestRunner:
    def test_syncbench_runs(self):
        cfg = ExperimentConfig(
            platform="toy", benchmark="syncbench", num_threads=4,
            runs=3, seed=11, benchmark_params=QUICK,
        )
        result = Runner(cfg).run()
        assert result.n_runs == 3
        assert set(result.labels()) == {"reduction", "reduction.overhead"}
        matrix = result.runs_matrix("reduction")
        assert matrix.shape == (3, 6)
        assert np.all(matrix > 0)

    def test_schedbench_runs(self):
        cfg = ExperimentConfig(
            platform="toy", benchmark="schedbench", num_threads=4,
            schedule="dynamic", schedule_chunk=1, runs=2, seed=11,
            benchmark_params={"outer_reps": 3, "itersperthr": 128},
        )
        result = Runner(cfg).run()
        assert result.labels() == ("dynamic_1",)
        assert result.runs_matrix("dynamic_1").shape == (2, 3)

    def test_babelstream_runs(self):
        cfg = ExperimentConfig(
            platform="toy", benchmark="babelstream", num_threads=4,
            runs=2, seed=11, benchmark_params={"num_times": 4},
        )
        result = Runner(cfg).run()
        assert set(result.labels()) == {"copy", "mul", "add", "triad", "dot"}

    def test_determinism_across_runners(self):
        cfg = ExperimentConfig(
            platform="toy", benchmark="syncbench", num_threads=4,
            runs=2, seed=99, benchmark_params=QUICK,
        )
        a = Runner(cfg).run().runs_matrix("reduction")
        b = Runner(cfg).run().runs_matrix("reduction")
        np.testing.assert_array_equal(a, b)

    def test_runs_differ_from_each_other(self):
        cfg = ExperimentConfig(
            platform="toy", benchmark="syncbench", num_threads=4,
            runs=2, seed=99, benchmark_params=QUICK,
        )
        matrix = Runner(cfg).run().runs_matrix("reduction")
        assert not np.array_equal(matrix[0], matrix[1])

    def test_seed_changes_results(self):
        base = ExperimentConfig(
            platform="toy", benchmark="syncbench", num_threads=4,
            runs=1, seed=1, benchmark_params=QUICK,
        )
        a = Runner(base).run().runs_matrix("reduction")
        b = Runner(base.with_overrides(seed=2)).run().runs_matrix("reduction")
        assert not np.array_equal(a, b)

    def test_freq_logging(self):
        cfg = ExperimentConfig(
            platform="toy", benchmark="syncbench", num_threads=4,
            runs=1, seed=5, benchmark_params=QUICK,
            freq_logging=True, logger_cpu=7,
        )
        result = Runner(cfg).run()
        log = result.records[0].freq_log
        assert log is not None
        assert log.logger_cpu == 7
        assert log.n_samples >= 1
        assert log.freqs_khz.shape[1] == 16  # toy machine cpus

    def test_unknown_benchmark(self):
        cfg = ExperimentConfig(platform="toy", benchmark="syncbench")
        runner = Runner(cfg)
        object.__setattr__(runner.config, "benchmark", "bogus")
        with pytest.raises(HarnessError):
            runner._make_benchmark()

    def test_logger_on_spare_cpu_ok(self):
        cfg = ExperimentConfig(
            platform="toy", benchmark="syncbench", num_threads=4,
            runs=1, seed=5, benchmark_params=QUICK,
            freq_logging=True, logger_cpu=14,
        )
        assert Runner(cfg).run().records[0].freq_log.logger_cpu == 14

    def test_logger_collision_with_bound_team(self):
        # 4 threads bound close on cores occupy CPUs 0-3; CPU 2 collides
        cfg = ExperimentConfig(
            platform="toy", benchmark="syncbench", num_threads=4,
            runs=1, seed=5, benchmark_params=QUICK,
            freq_logging=True, logger_cpu=2,
        )
        with pytest.raises(HarnessError, match=r"collides.*logger_cpu=15"):
            Runner(cfg).run()

    def test_logger_default_collision_on_saturated_machine(self):
        # 16 threads on the 16-CPU toy machine leave no spare core, so the
        # default last-CPU placement must be rejected rather than silently
        # perturbing the benchmark team
        cfg = ExperimentConfig(
            platform="toy", benchmark="syncbench", num_threads=16,
            places="threads", runs=1, seed=5, benchmark_params=QUICK,
            freq_logging=True,
        )
        with pytest.raises(HarnessError, match="no CPU is free"):
            Runner(cfg).run()

    def test_planned_cpus_unbound(self):
        cfg = ExperimentConfig(
            platform="toy", benchmark="syncbench", num_threads=4,
            places=None, proc_bind="false", runs=1, seed=5,
            benchmark_params=QUICK,
        )
        assert Runner(cfg).planned_cpus() == ()
        saturated = Runner(cfg.with_overrides(num_threads=16))
        assert saturated.planned_cpus() == tuple(range(16))


class TestExperimentResult:
    def _result(self):
        cfg = ExperimentConfig(
            platform="toy", benchmark="syncbench", num_threads=4,
            runs=2, seed=7, benchmark_params=QUICK,
        )
        return Runner(cfg).run()

    def test_report(self):
        rep = self._result().report("reduction")
        assert rep.n_runs == 2
        assert "reduction" in rep.label

    def test_reports_all_labels(self):
        result = self._result()
        assert set(result.reports()) == set(result.labels())

    def test_unknown_label(self):
        with pytest.raises(HarnessError):
            self._result().runs_matrix("nonexistent")

    def test_labels_reject_divergent_records(self):
        import numpy as np
        from repro.harness import RunRecord

        a = RunRecord(run_index=0, series={"x": np.ones(3)})
        b = RunRecord(run_index=1, series={"y": np.ones(3)})
        result = ExperimentResult(
            config=ExperimentConfig(platform="toy", runs=2), records=(a, b)
        )
        with pytest.raises(HarnessError, match="run 1"):
            result.labels()

    def test_json_roundtrip(self, tmp_path):
        result = self._result()
        path = tmp_path / "result.json"
        result.save(path)
        loaded = ExperimentResult.load(path)
        assert loaded.config == result.config
        np.testing.assert_array_equal(
            loaded.runs_matrix("reduction"), result.runs_matrix("reduction")
        )

    def test_json_roundtrip_with_freqlog(self, tmp_path):
        cfg = ExperimentConfig(
            platform="toy", benchmark="syncbench", num_threads=4,
            runs=1, seed=7, benchmark_params=QUICK, freq_logging=True,
        )
        result = Runner(cfg).run()
        path = tmp_path / "result.json"
        result.save(path)
        loaded = ExperimentResult.load(path)
        assert loaded.records[0].freq_log is not None
        np.testing.assert_array_equal(
            loaded.records[0].freq_log.freqs_khz,
            result.records[0].freq_log.freqs_khz,
        )


class TestFrequencyLogger:
    def test_capture(self):
        plat = toy()
        model = FrequencyModel(plat.machine, plat.freq_spec)
        plan = model.plan(0.0, 1.0, [0, 1], PerformanceGovernor(),
                          RngFactory(1).stream("f"))
        logger = FrequencyLogger(logger_cpu=15, interval=0.05)
        log = logger.capture(plat.freq_spec, plan, "performance", 0.0, 0.5)
        assert log.n_samples == 11  # t=0, 0.05, ..., 0.5
        assert log.freqs_khz.shape == (11, 16)
        assert log.max_freq_ghz() <= 3.0 + 1e-9

    def test_band_occupancy(self):
        plat = toy()
        model = FrequencyModel(plat.machine, plat.freq_spec)
        plan = model.plan(0.0, 1.0, [0, 1], PerformanceGovernor(),
                          RngFactory(1).stream("f"))
        log = FrequencyLogger(15, 0.1).capture(
            plat.freq_spec, plan, "performance", 0.0, 1.0
        )
        assert log.band_occupancy(10.0) == 1.0  # everything below 10 GHz
        assert log.band_occupancy(0.1) == 0.0

    def test_validation(self):
        with pytest.raises(HarnessError):
            FrequencyLogger(0, interval=0.0)
        plat = toy()
        model = FrequencyModel(plat.machine, plat.freq_spec)
        plan = model.plan(0.0, 1.0, [0], PerformanceGovernor(),
                          RngFactory(1).stream("f"))
        with pytest.raises(HarnessError):
            FrequencyLogger(0, 0.01).capture(plat.freq_spec, plan, "x", 1.0, 1.0)


class TestReportHelpers:
    def test_render_table(self):
        text = render_table(["a", "bb"], [[1, 2], [30, 40]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "30" in lines[-1]

    def test_sparkline(self):
        assert sparkline([1, 2, 3]) == "▁▅█"
        assert sparkline([]) == ""
        assert sparkline([2, 2]) == "▁▁"

    def test_render_series(self):
        text = render_series("lbl", [1, 2], [3.0, 4.0], unit="us")
        assert "lbl" in text and "us" in text and "1:3" in text
