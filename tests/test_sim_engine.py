"""Tests for the discrete-event kernel (clock, engine, processes)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Clock, Engine, Timeout


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_advance_to(self):
        c = Clock()
        c.advance_to(1.5)
        assert c.now == 1.5

    def test_advance_by(self):
        c = Clock(1.0)
        c.advance_by(0.25)
        assert c.now == 1.25

    def test_no_time_travel(self):
        c = Clock(2.0)
        with pytest.raises(SimulationError):
            c.advance_to(1.0)
        with pytest.raises(SimulationError):
            c.advance_by(-0.1)


class TestEngineScheduling:
    def test_events_run_in_time_order(self):
        eng = Engine()
        seen = []
        eng.schedule_at(3.0, lambda: seen.append(3))
        eng.schedule_at(1.0, lambda: seen.append(1))
        eng.schedule_at(2.0, lambda: seen.append(2))
        eng.run()
        assert seen == [1, 2, 3]

    def test_fifo_for_simultaneous_events(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.schedule_at(1.0, lambda i=i: seen.append(i))
        eng.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_schedule_after(self):
        eng = Engine()
        eng.clock.advance_to(10.0)
        times = []
        eng.schedule_after(0.5, lambda: times.append(eng.clock.now))
        eng.run()
        assert times == [10.5]

    def test_cannot_schedule_in_past(self):
        eng = Engine()
        eng.clock.advance_to(5.0)
        with pytest.raises(SimulationError):
            eng.schedule_at(4.0, lambda: None)
        with pytest.raises(SimulationError):
            eng.schedule_after(-1.0, lambda: None)

    def test_cancelled_event_skipped(self):
        eng = Engine()
        seen = []
        ev = eng.schedule_at(1.0, lambda: seen.append("a"))
        eng.schedule_at(2.0, lambda: seen.append("b"))
        ev.cancel()
        eng.run()
        assert seen == ["b"]

    def test_run_until_leaves_future_events(self):
        eng = Engine()
        seen = []
        eng.schedule_at(1.0, lambda: seen.append(1))
        eng.schedule_at(5.0, lambda: seen.append(5))
        eng.run(until=2.0)
        assert seen == [1]
        assert eng.clock.now == 2.0
        assert eng.pending == 1
        eng.run()
        assert seen == [1, 5]

    def test_events_scheduled_during_run(self):
        eng = Engine()
        seen = []

        def first():
            seen.append("first")
            eng.schedule_after(1.0, lambda: seen.append("second"))

        eng.schedule_at(0.5, first)
        eng.run()
        assert seen == ["first", "second"]
        assert eng.clock.now == 1.5

    def test_event_budget(self):
        eng = Engine()

        def rearm():
            eng.schedule_after(1.0, rearm)

        eng.schedule_at(0.0, rearm)
        with pytest.raises(SimulationError, match="budget"):
            eng.run(max_events=100)

    def test_events_executed_counter(self):
        eng = Engine()
        for t in (1.0, 2.0, 3.0):
            eng.schedule_at(t, lambda: None)
        eng.run()
        assert eng.events_executed == 3

    def test_lifetime_event_cap(self):
        eng = Engine(max_events=100)

        def rearm():
            eng.schedule_after(1.0, rearm)

        eng.schedule_at(0.0, rearm)
        with pytest.raises(SimulationError, match="event cap"):
            eng.run()
        assert eng.events_executed == 100

    def test_lifetime_cap_spans_run_calls(self):
        """The cap is cumulative over the engine's life, not per run()."""
        eng = Engine(max_events=3)
        for t in (1.0, 2.0, 3.0, 4.0):
            eng.schedule_at(t, lambda: None)
        eng.run(until=2.5)  # 2 events
        with pytest.raises(SimulationError, match="event cap"):
            eng.run()  # the 4th event trips the cap

    def test_uncapped_engine_unaffected(self):
        eng = Engine()
        for t in (1.0, 2.0, 3.0):
            eng.schedule_at(t, lambda: None)
        eng.run()
        assert eng.clock.now == 3.0

    def test_invalid_cap_rejected(self):
        with pytest.raises(SimulationError):
            Engine(max_events=0)


class TestProcesses:
    def test_periodic_process(self):
        eng = Engine()
        samples = []

        def sampler():
            for _ in range(4):
                samples.append(eng.clock.now)
                yield Timeout(0.25)

        eng.spawn(sampler(), name="sampler")
        eng.run()
        assert samples == [0.0, 0.25, 0.5, 0.75]

    def test_process_return_value(self):
        eng = Engine()

        def worker():
            yield Timeout(1.0)
            return 42

        proc = eng.spawn(worker())
        eng.run()
        assert not proc.alive
        assert proc.result == 42

    def test_kill_stops_process(self):
        eng = Engine()
        ticks = []

        def ticker():
            while True:
                ticks.append(eng.clock.now)
                yield Timeout(1.0)

        proc = eng.spawn(ticker())
        eng.run(until=2.5)
        proc.kill()
        eng.run(until=10.0)
        assert len(ticks) == 3  # t=0,1,2 then killed
        assert not proc.alive

    def test_negative_timeout_rejected(self):
        eng = Engine()

        def bad():
            yield Timeout(-1.0)

        eng.spawn(bad())
        with pytest.raises(SimulationError):
            eng.run()

    def test_bad_yield_rejected(self):
        eng = Engine()

        def bad():
            yield "nonsense"

        eng.spawn(bad())
        with pytest.raises(SimulationError):
            eng.run()
