"""Tests for the discrete-event kernel (clock, engine, processes)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Clock, Engine, Timeout


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_advance_to(self):
        c = Clock()
        c.advance_to(1.5)
        assert c.now == 1.5

    def test_advance_by(self):
        c = Clock(1.0)
        c.advance_by(0.25)
        assert c.now == 1.25

    def test_no_time_travel(self):
        c = Clock(2.0)
        with pytest.raises(SimulationError):
            c.advance_to(1.0)
        with pytest.raises(SimulationError):
            c.advance_by(-0.1)


class TestEngineScheduling:
    def test_events_run_in_time_order(self):
        eng = Engine()
        seen = []
        eng.schedule_at(3.0, lambda: seen.append(3))
        eng.schedule_at(1.0, lambda: seen.append(1))
        eng.schedule_at(2.0, lambda: seen.append(2))
        eng.run()
        assert seen == [1, 2, 3]

    def test_fifo_for_simultaneous_events(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.schedule_at(1.0, lambda i=i: seen.append(i))
        eng.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_schedule_after(self):
        eng = Engine()
        eng.clock.advance_to(10.0)
        times = []
        eng.schedule_after(0.5, lambda: times.append(eng.clock.now))
        eng.run()
        assert times == [10.5]

    def test_cannot_schedule_in_past(self):
        eng = Engine()
        eng.clock.advance_to(5.0)
        with pytest.raises(SimulationError):
            eng.schedule_at(4.0, lambda: None)
        with pytest.raises(SimulationError):
            eng.schedule_after(-1.0, lambda: None)

    def test_cancelled_event_skipped(self):
        eng = Engine()
        seen = []
        ev = eng.schedule_at(1.0, lambda: seen.append("a"))
        eng.schedule_at(2.0, lambda: seen.append("b"))
        ev.cancel()
        eng.run()
        assert seen == ["b"]

    def test_run_until_leaves_future_events(self):
        eng = Engine()
        seen = []
        eng.schedule_at(1.0, lambda: seen.append(1))
        eng.schedule_at(5.0, lambda: seen.append(5))
        eng.run(until=2.0)
        assert seen == [1]
        assert eng.clock.now == 2.0
        assert eng.pending == 1
        eng.run()
        assert seen == [1, 5]

    def test_events_scheduled_during_run(self):
        eng = Engine()
        seen = []

        def first():
            seen.append("first")
            eng.schedule_after(1.0, lambda: seen.append("second"))

        eng.schedule_at(0.5, first)
        eng.run()
        assert seen == ["first", "second"]
        assert eng.clock.now == 1.5

    def test_event_budget(self):
        eng = Engine()

        def rearm():
            eng.schedule_after(1.0, rearm)

        eng.schedule_at(0.0, rearm)
        with pytest.raises(SimulationError, match="budget"):
            eng.run(max_events=100)

    def test_events_executed_counter(self):
        eng = Engine()
        for t in (1.0, 2.0, 3.0):
            eng.schedule_at(t, lambda: None)
        eng.run()
        assert eng.events_executed == 3

    def test_lifetime_event_cap(self):
        eng = Engine(max_events=100)

        def rearm():
            eng.schedule_after(1.0, rearm)

        eng.schedule_at(0.0, rearm)
        with pytest.raises(SimulationError, match="event cap"):
            eng.run()
        assert eng.events_executed == 100

    def test_lifetime_cap_spans_run_calls(self):
        """The cap is cumulative over the engine's life, not per run()."""
        eng = Engine(max_events=3)
        for t in (1.0, 2.0, 3.0, 4.0):
            eng.schedule_at(t, lambda: None)
        eng.run(until=2.5)  # 2 events
        with pytest.raises(SimulationError, match="event cap"):
            eng.run()  # the 4th event trips the cap

    def test_uncapped_engine_unaffected(self):
        eng = Engine()
        for t in (1.0, 2.0, 3.0):
            eng.schedule_at(t, lambda: None)
        eng.run()
        assert eng.clock.now == 3.0

    def test_invalid_cap_rejected(self):
        with pytest.raises(SimulationError):
            Engine(max_events=0)

    def test_cap_then_resume_round_trip(self):
        """The cap error must leave the queue intact: the event that
        tripped it stays queued, and raising the cap resumes exactly
        where the simulation stopped (no event is silently lost)."""
        eng = Engine(max_events=2)
        seen = []
        for t in (1.0, 2.0, 3.0):
            eng.schedule_at(t, lambda t=t: seen.append(t))
        with pytest.raises(SimulationError, match="event cap"):
            eng.run()
        assert seen == [1.0, 2.0]
        assert eng.pending == 1  # the tripping event was NOT popped
        eng.max_events = 3
        eng.run()
        assert seen == [1.0, 2.0, 3.0]
        assert eng.pending == 0

    def test_cap_tightened_mid_run_is_honored(self):
        """A watchdog callback that lowers max_events mid-run() must stop
        the loop at the new cap (run() reads the cap per event, like
        step()-driven loops do)."""
        eng = Engine(max_events=1000)
        seen = []

        def watchdog():
            # inside the callback events_executed does not yet include the
            # watchdog event itself, so this allows 2 further events
            eng.max_events = eng.events_executed + 3

        eng.schedule_at(0.5, watchdog)
        for t in range(1, 20):
            eng.schedule_at(float(t), lambda t=t: seen.append(t))
        with pytest.raises(SimulationError, match="event cap"):
            eng.run()
        assert seen == [1, 2]  # watchdog + 2 events reach the cap of 3

    def test_cap_error_repeats_until_raised(self):
        """Catching the cap error and calling run() again re-raises with
        the queue still intact (a consistent, inspectable engine)."""
        eng = Engine(max_events=1)
        eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        for _ in range(3):
            with pytest.raises(SimulationError, match="event cap"):
                eng.run()
            assert eng.pending == 1
            assert eng.events_executed == 1


class TestNonFiniteRejection:
    def test_schedule_at_rejects_nan(self):
        eng = Engine()
        with pytest.raises(SimulationError, match="finite"):
            eng.schedule_at(float("nan"), lambda: None)

    def test_schedule_at_rejects_inf(self):
        eng = Engine()
        with pytest.raises(SimulationError, match="finite"):
            eng.schedule_at(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            eng.schedule_at(float("-inf"), lambda: None)

    def test_schedule_after_rejects_non_finite_delay(self):
        eng = Engine()
        with pytest.raises(SimulationError, match="finite"):
            eng.schedule_after(float("nan"), lambda: None)
        with pytest.raises(SimulationError, match="finite"):
            eng.schedule_after(float("inf"), lambda: None)

    def test_nan_does_not_corrupt_heap_order(self):
        """Regression: a NaN time used to pass the `t < now` guard (NaN
        comparisons are all false) and silently corrupt heap ordering."""
        eng = Engine()
        seen = []
        eng.schedule_at(1.0, lambda: seen.append(1))
        with pytest.raises(SimulationError):
            eng.schedule_at(float("nan"), lambda: seen.append("nan"))
        eng.schedule_at(2.0, lambda: seen.append(2))
        eng.run()
        assert seen == [1, 2]

    def test_process_nan_timeout_rejected(self):
        eng = Engine()

        def bad():
            yield Timeout(float("nan"))

        eng.spawn(bad())
        with pytest.raises(SimulationError):
            eng.run()

    def test_process_inf_timeout_rejected(self):
        eng = Engine()

        def bad():
            yield Timeout(float("inf"))

        eng.spawn(bad())
        with pytest.raises(SimulationError):
            eng.run()


class TestCancellation:
    def test_cancel_is_idempotent(self):
        eng = Engine()
        seen = []
        ev = eng.schedule_at(1.0, lambda: seen.append("x"))
        ev.cancel()
        ev.cancel()
        assert ev.cancelled
        eng.run()
        assert seen == []
        assert eng.pending == 0

    def test_cancel_after_execution_is_noop(self):
        eng = Engine()
        seen = []
        ev = eng.schedule_at(1.0, lambda: seen.append("x"))
        eng.run()
        assert seen == ["x"]
        ev.cancel()  # late cancel must not corrupt pending bookkeeping
        assert not ev.cancelled  # the handle reports the truth: it ran
        assert eng.pending == 0
        eng.schedule_at(2.0, lambda: seen.append("y"))
        assert eng.pending == 1
        eng.run()
        assert seen == ["x", "y"]

    def test_pending_tracks_cancellations(self):
        eng = Engine()
        events = [eng.schedule_at(float(t), lambda: None) for t in range(1, 11)]
        assert eng.pending == 10
        for ev in events[:4]:
            ev.cancel()
        assert eng.pending == 6

    def test_compaction_shrinks_heap(self):
        """Once cancelled entries outnumber live ones, the heap is
        compacted eagerly — dead entries must not accumulate."""
        eng = Engine()
        events = [eng.schedule_at(float(t), lambda: None) for t in range(1, 101)]
        for ev in events[:60]:
            ev.cancel()
        assert eng.pending == 40
        assert len(eng._queue) <= 60  # dead entries dropped, not retained
        seen_cancelled = [ev for ev in events[:60] if not ev.cancelled]
        assert seen_cancelled == []  # handles still report cancellation

    def test_compaction_preserves_order(self):
        eng = Engine()
        seen = []
        events = []
        for t in range(1, 101):
            events.append(eng.schedule_at(float(t), lambda t=t: seen.append(t)))
        for ev in events[1::2]:  # cancel every even-index time
            ev.cancel()
        for ev in events[0:40:2]:
            ev.cancel()
        eng.run()
        assert seen == list(range(41, 101, 2))

    def test_cancelled_pops_count_against_run_budget(self):
        """A cancel-heavy queue must not spin run() outside its budget."""
        eng = Engine()
        events = [eng.schedule_at(float(t), lambda: None) for t in range(1, 11)]
        for ev in events[:5]:  # exactly half: below the compaction trigger
            ev.cancel()
        assert eng.pending == 5
        with pytest.raises(SimulationError, match="budget"):
            eng.run(max_events=5)  # 5 cancelled head pops exhaust it
        eng.run()  # plenty of budget: the 5 live events drain fine
        assert eng.events_executed == 5

    def test_step_skips_cancelled_without_counting(self):
        eng = Engine()
        seen = []
        ev = eng.schedule_at(1.0, lambda: seen.append("a"))
        eng.schedule_at(2.0, lambda: seen.append("b"))
        ev.cancel()
        assert eng.step() is True
        assert seen == ["b"]
        assert eng.events_executed == 1

    def test_cancel_inside_callback_triggering_compaction(self):
        """Regression: compaction rebinding self._queue used to strand a
        running run() on a stale list — cancelled callbacks executed
        anyway, post-compaction schedules vanished, and live events were
        duplicated (a later run() crashed moving the clock backwards)."""
        eng = Engine()
        seen = []
        victims = []

        def killer():
            seen.append("killer")
            for ev in victims:
                ev.cancel()  # mass-cancel: trips compaction mid-run
            eng.schedule_at(1.5, lambda: seen.append("late"))

        eng.schedule_at(1.0, killer)
        victims.extend(
            eng.schedule_at(2.0 + i, lambda i=i: seen.append(i)) for i in range(27)
        )
        eng.schedule_at(50.0, lambda: seen.append("survivor"))
        eng.run()
        assert seen == ["killer", "late", "survivor"]
        assert eng.clock.now == 50.0
        assert eng.pending == 0
        eng.run()  # no duplicated events left behind
        assert seen == ["killer", "late", "survivor"]

    def test_handle_exposes_time_and_seq(self):
        eng = Engine()
        ev = eng.schedule_at(3.5, lambda: None)
        assert ev.time == 3.5
        assert isinstance(ev.seq, int)
        assert not ev.cancelled


class TestProcesses:
    def test_periodic_process(self):
        eng = Engine()
        samples = []

        def sampler():
            for _ in range(4):
                samples.append(eng.clock.now)
                yield Timeout(0.25)

        eng.spawn(sampler(), name="sampler")
        eng.run()
        assert samples == [0.0, 0.25, 0.5, 0.75]

    def test_process_return_value(self):
        eng = Engine()

        def worker():
            yield Timeout(1.0)
            return 42

        proc = eng.spawn(worker())
        eng.run()
        assert not proc.alive
        assert proc.result == 42

    def test_kill_stops_process(self):
        eng = Engine()
        ticks = []

        def ticker():
            while True:
                ticks.append(eng.clock.now)
                yield Timeout(1.0)

        proc = eng.spawn(ticker())
        eng.run(until=2.5)
        proc.kill()
        eng.run(until=10.0)
        assert len(ticks) == 3  # t=0,1,2 then killed
        assert not proc.alive

    def test_negative_timeout_rejected(self):
        eng = Engine()

        def bad():
            yield Timeout(-1.0)

        eng.spawn(bad())
        with pytest.raises(SimulationError):
            eng.run()

    def test_bad_yield_rejected(self):
        eng = Engine()

        def bad():
            yield "nonsense"

        eng.spawn(bad())
        with pytest.raises(SimulationError):
            eng.run()
