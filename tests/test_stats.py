"""Tests for the statistics package."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.stats import (
    VariabilityReport,
    bootstrap_ci,
    coefficient_of_variation,
    compare_samples,
    decompose_variability,
    iqr_outliers,
    mad_outliers,
    normalized_min_max,
    sigma_outliers,
    summarize,
    variance_ratio,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == 2.5
        assert s.sd == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_point(self):
        s = summarize([5.0])
        assert s.sd == 0.0
        assert s.cv == 0.0

    def test_spread_ratio(self):
        assert summarize([1.0, 6.0]).spread_ratio == 6.0

    def test_rejects_bad_input(self):
        with pytest.raises(ReproError):
            summarize([])
        with pytest.raises(ReproError):
            summarize([1.0, np.nan])
        with pytest.raises(ReproError):
            summarize([[1.0, 2.0]])

    def test_cv(self):
        assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0
        with pytest.raises(ReproError):
            coefficient_of_variation([0.0, 0.0])

    def test_normalized_min_max(self):
        lo, hi = normalized_min_max([1.0, 2.0, 3.0])
        assert lo == pytest.approx(0.5)
        assert hi == pytest.approx(1.5)


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=2, max_size=50))
@settings(max_examples=100)
def test_normalized_min_max_brackets_one(sample):
    lo, hi = normalized_min_max(sample)
    assert lo <= 1.0 + 1e-12
    assert hi >= 1.0 - 1e-12


@given(
    st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=2, max_size=50),
    st.floats(min_value=0.5, max_value=100.0),
)
@settings(max_examples=100)
def test_cv_scale_invariant(sample, scale):
    a = coefficient_of_variation(sample)
    b = coefficient_of_variation([x * scale for x in sample])
    assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


class TestOutliers:
    def test_sigma_detects_spike(self):
        x = np.ones(50)
        x[7] = 100.0
        mask = sigma_outliers(x)
        assert mask[7]
        assert mask.sum() == 1

    def test_sigma_constant_sample(self):
        assert not sigma_outliers(np.ones(10)).any()

    def test_iqr_detects_spike(self):
        x = np.concatenate([np.random.default_rng(0).normal(10, 0.1, 100), [50.0]])
        assert iqr_outliers(x)[-1]

    def test_mad_detects_spike(self):
        x = np.concatenate([np.full(99, 10.0), [1000.0]])
        assert mad_outliers(x)[-1]

    def test_mad_degenerate(self):
        x = np.asarray([5.0] * 9 + [6.0])
        mask = mad_outliers(x)
        assert mask[-1] and mask.sum() == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            sigma_outliers([1.0], n_sigmas=0)
        with pytest.raises(ReproError):
            iqr_outliers([1.0], k=-1)
        with pytest.raises(ReproError):
            mad_outliers([], threshold=1)


class TestBootstrap:
    def test_degenerate_sample(self):
        ci = bootstrap_ci(np.ones(30))
        assert ci.low == ci.high == ci.estimate == 1.0

    def test_mean_ci_covers_truth(self):
        rng = np.random.default_rng(1)
        x = rng.normal(10.0, 1.0, 200)
        ci = bootstrap_ci(x, np.mean, rng=np.random.default_rng(2))
        assert ci.contains(float(x.mean()))
        assert ci.low < 10.2 and ci.high > 9.8

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(3)
        small = bootstrap_ci(rng.normal(0, 1, 20), np.mean,
                             rng=np.random.default_rng(4))
        big = bootstrap_ci(rng.normal(0, 1, 2000), np.mean,
                           rng=np.random.default_rng(5))
        assert big.width < small.width

    def test_validation(self):
        with pytest.raises(ReproError):
            bootstrap_ci([], np.mean)
        with pytest.raises(ReproError):
            bootstrap_ci([1.0], np.mean, confidence=1.5)
        with pytest.raises(ReproError):
            bootstrap_ci([1.0], np.mean, n_resamples=2)

    @staticmethod
    def _loop_reference(x, statistic, n_resamples, rng):
        """The pre-vectorization implementation, kept as the oracle."""
        x = np.asarray(x, dtype=np.float64)
        estimates = np.empty(n_resamples)
        n = x.size
        for i in range(n_resamples):
            estimates[i] = statistic(x[rng.integers(0, n, size=n)])
        alpha = 0.025
        low, high = np.percentile(estimates, [100 * alpha, 100 * (1 - alpha)])
        return float(low), float(high)

    @pytest.mark.parametrize(
        "statistic",
        [np.mean, np.median, lambda s: float(np.percentile(s, 90))],
        ids=["mean", "median", "p90"],
    )
    def test_vectorized_matches_loop_reference(self, statistic):
        x = np.random.default_rng(7).lognormal(0.0, 0.8, 37)
        ref_low, ref_high = self._loop_reference(
            x, statistic, 200, np.random.default_rng(11)
        )
        ci = bootstrap_ci(x, statistic, n_resamples=200,
                          rng=np.random.default_rng(11))
        assert ci.low == ref_low
        assert ci.high == ref_high


class TestCompare:
    def test_identical_distributions(self):
        rng = np.random.default_rng(6)
        a = rng.normal(10, 1, 300)
        b = rng.normal(10, 1, 300)
        r = compare_samples(a, b)
        assert not r.distributions_differ(alpha=0.001)
        assert r.mean_ratio == pytest.approx(1.0, abs=0.05)

    def test_shifted_distributions_detected(self):
        rng = np.random.default_rng(7)
        a = rng.normal(20, 1, 300)
        b = rng.normal(10, 1, 300)
        r = compare_samples(a, b)
        assert r.distributions_differ()
        assert r.medians_differ()
        assert r.mean_ratio == pytest.approx(2.0, abs=0.1)

    def test_variance_ratio(self):
        rng = np.random.default_rng(8)
        noisy = rng.normal(10, 4, 500)
        quiet = rng.normal(10, 1, 500)
        assert variance_ratio(noisy, quiet) > 8.0

    def test_variance_ratio_degenerate(self):
        assert variance_ratio([1.0, 1.0], [1.0, 1.0]) == 1.0
        assert variance_ratio([1.0, 2.0], [1.0, 1.0]) == float("inf")

    def test_validation(self):
        with pytest.raises(ReproError):
            compare_samples([1.0], [1.0, 2.0])


class TestDecomposition:
    def test_pure_within_run_variance(self):
        rng = np.random.default_rng(9)
        # all runs drawn from the same distribution: ICC ~ 0
        runs = rng.normal(10, 1, size=(10, 200))
        d = decompose_variability(runs)
        assert d.icc < 0.1
        assert d.within_run_var == pytest.approx(1.0, rel=0.2)

    def test_pure_between_run_variance(self):
        rng = np.random.default_rng(10)
        offsets = rng.normal(0, 5, size=(10, 1))
        runs = 100.0 + offsets + rng.normal(0, 0.01, size=(10, 200))
        d = decompose_variability(runs)
        assert d.icc > 0.95

    def test_grand_mean(self):
        runs = np.asarray([[1.0, 2.0], [3.0, 4.0]])
        assert decompose_variability(runs).grand_mean == 2.5

    def test_validation(self):
        with pytest.raises(ReproError):
            decompose_variability(np.ones((1, 5)))
        with pytest.raises(ReproError):
            decompose_variability(np.ones(5))


class TestVariabilityReport:
    def test_from_runs(self):
        rng = np.random.default_rng(11)
        runs = rng.normal(1e-3, 1e-5, size=(5, 50))
        rep = VariabilityReport.from_runs("demo", runs)
        assert rep.n_runs == 5
        assert rep.pooled.n == 250
        assert rep.decomposition is not None
        assert rep.run_means().shape == (5,)
        assert rep.run_norm_min_max().shape == (5, 2)

    def test_render_contains_rows(self):
        rng = np.random.default_rng(12)
        rep = VariabilityReport.from_runs("demo", rng.normal(1e-3, 1e-5, (3, 20)))
        text = rep.render()
        assert "demo" in text
        assert text.count("\n") >= 5
        assert "ICC" in text

    def test_rejects_1d(self):
        with pytest.raises(ReproError):
            VariabilityReport.from_runs("x", np.ones(5))
