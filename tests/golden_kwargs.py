"""Reduced-scale driver kwargs shared by the golden regression test.

``tests/golden/<name>.txt`` holds each registered driver's rendered
artifact at exactly these arguments, captured from the pre-Study
hand-rolled drivers.  The Study rewrite must reproduce every file
byte-for-byte (``tests/test_study.py::TestGoldenArtifacts``).
"""

GOLDEN_KWARGS: dict[str, dict] = {
    "table2": dict(runs=2, outer_reps=5, seed=3),
    "figure1": dict(
        runs=2, outer_reps=5, seed=3,
        dardel_threads=(4, 16), vera_threads=(2, 8),
    ),
    "figure2": dict(
        runs=2, num_times=5, seed=3,
        dardel_threads=(4, 16), vera_threads=(2, 8),
    ),
    "figure3": dict(
        runs=2, outer_reps=5, num_times=5, seed=3,
        dardel_threads=(4, 16), vera_threads=(2, 8),
    ),
    "figure4": dict(runs=2, outer_reps=5, num_times=5, seed=3),
    "figure5": dict(runs=2, outer_reps=5, num_times=5, seed=3),
    "figure6": dict(runs=2, outer_reps=6, seed=3),
    "figure7": dict(runs=2, outer_reps=6, seed=3),
    "figure8": dict(
        runs=2, outer_reps=3, seed=3,
        threads=(2, 4), grainsizes=(1, 8),
        noise_profiles=("default", "quiet"), total_iters=64,
    ),
    "runtime_compare": dict(
        runs=2, outer_reps=3, seed=3,
        dardel_threads=(16, 64), vera_threads=(8,),
        runtimes=("gnu", "llvm"), wait_policies=("active", "passive"),
    ),
}
