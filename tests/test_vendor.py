"""Tests for runtime-vendor profiles (libgomp vs libomp) and wait policies."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, HarnessError
from repro.harness import ExperimentConfig, ParallelRunner, ResultCache, Runner, cache_key
from repro.harness import experiments
from repro.omp import OMPEnvironment, OpenMPRuntime
from repro.omp.constructs import SyncCostModel, SyncCostParams
from repro.omp.vendor import (
    BarrierAlgorithm,
    RuntimeProfile,
    WaitPolicy,
    available_runtimes,
    default_profile,
    get_runtime_profile,
)
from repro.platform import dardel, toy, vera
from repro.sched.model import wakeup_path_cost
from repro.sched.params import SchedParams
from repro.stats import summarize
from repro.types import ProcBind


def team_on(machine, cpus):
    from repro.omp.team import Team

    return Team(machine, tuple(cpus), bound=True)


class TestRegistry:
    def test_available(self):
        assert available_runtimes() == ("gnu", "llvm")

    def test_lookup_case_insensitive(self):
        assert get_runtime_profile("GNU").name == "gnu"
        assert get_runtime_profile("llvm").vendor == "LLVM libomp"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_runtime_profile("icc")

    def test_default_is_gnu(self):
        assert default_profile().name == "gnu"
        assert default_profile().barrier_algorithm is BarrierAlgorithm.GATHER_RELEASE
        assert default_profile().wait_policy is WaitPolicy.ACTIVE

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimeProfile("x", "X", barrier_branching=1)
        with pytest.raises(ConfigurationError):
            RuntimeProfile("x", "X", spin_before_sleep=-1.0)
        with pytest.raises(ConfigurationError):
            RuntimeProfile("x", "X", fork_scale=0.0)


class TestBarrierSpan:
    def test_gather_release_matches_seed_formula(self):
        p = default_profile()
        for n in (2, 4, 16, 64, 254):
            assert p.barrier_span(n) == 2 * math.ceil(math.log2(n))

    def test_single_thread_free(self):
        for name in available_runtimes():
            assert get_runtime_profile(name).barrier_span(1) == 0.0

    def test_hyper_needs_fewer_rounds_at_scale(self):
        gnu = get_runtime_profile("gnu")
        llvm = get_runtime_profile("llvm")
        for n in (64, 128, 254):
            assert llvm.barrier_span(n) < gnu.barrier_span(n)

    def test_hyper_branching_configurable(self):
        from dataclasses import replace

        llvm = get_runtime_profile("llvm")
        # a binary tree needs more rounds than the default 4-way hypercube,
        # so the default branching factor is the sweet spot the real
        # runtime ships with
        binary = replace(llvm, barrier_branching=2)
        assert binary.barrier_span(256) > llvm.barrier_span(256)
        assert replace(llvm, barrier_branching=8).barrier_span(256) != \
            llvm.barrier_span(256)

    def test_hyper_round_count_exact_at_tree_powers(self):
        """Regression: float log-division overcounted a round at exact
        powers of non-power-of-2 branching factors (b=5, n=125)."""
        from dataclasses import replace

        llvm = get_runtime_profile("llvm")
        b5 = replace(llvm, barrier_branching=5)
        # n=125 = 5^3 -> exactly 3 rounds per phase
        assert b5.barrier_span(125) == pytest.approx(2 * 3 * (1 + 0.1 * 4))
        assert b5.barrier_span(126) == pytest.approx(2 * 4 * (1 + 0.1 * 4))

    def test_centralized_linear_in_team_size(self):
        p = RuntimeProfile("c", "C", barrier_algorithm=BarrierAlgorithm.CENTRALIZED)
        assert p.barrier_span(128) > 4 * p.barrier_span(16)
        assert p.barrier_span(64) > get_runtime_profile("gnu").barrier_span(64)


class TestWaitPolicy:
    def test_active_never_sleeps(self):
        assert default_profile().sleep_share() == 0.0
        assert default_profile().sleep_share(expected_gap=1e9) == 0.0

    def test_passive_blocktime_zero_always_sleeps(self):
        p = RuntimeProfile("x", "X", wait_policy=WaitPolicy.PASSIVE,
                           spin_before_sleep=0.0)
        assert p.sleep_share() == 1.0

    def test_blocktime_grades_sleepiness(self):
        p = RuntimeProfile("x", "X", wait_policy=WaitPolicy.PASSIVE,
                           spin_before_sleep=0.2)
        assert p.sleep_share(expected_gap=0.1) == 0.0  # still spinning
        assert p.sleep_share(expected_gap=0.8) == pytest.approx(0.75)
        assert p.sleep_share() == 1.0  # infinite gap

    def test_passive_infinite_blocktime_spins_forever(self):
        p = RuntimeProfile("x", "X", wait_policy=WaitPolicy.PASSIVE,
                           spin_before_sleep=math.inf)
        assert p.sleep_share() == 0.0

    def test_with_env_overrides(self):
        llvm = get_runtime_profile("llvm")
        env = OMPEnvironment(num_threads=4, wait_policy=WaitPolicy.PASSIVE)
        over = llvm.with_env(env)
        assert over.wait_policy is WaitPolicy.PASSIVE
        assert over.spin_before_sleep == 0.0  # explicit passive sleeps promptly
        env2 = OMPEnvironment(num_threads=4, wait_policy=WaitPolicy.PASSIVE,
                              blocktime=0.05)
        assert llvm.with_env(env2).spin_before_sleep == 0.05
        assert llvm.with_env(OMPEnvironment(num_threads=4)) is llvm


class TestEnvParsing:
    def test_wait_policy_parsed(self):
        e = OMPEnvironment.from_env({"OMP_NUM_THREADS": "4",
                                     "OMP_WAIT_POLICY": "PASSIVE"})
        assert e.wait_policy is WaitPolicy.PASSIVE
        assert OMPEnvironment.from_env({}).wait_policy is None

    def test_bad_wait_policy(self):
        with pytest.raises(ConfigurationError):
            OMPEnvironment.from_env({"OMP_WAIT_POLICY": "sometimes"})

    def test_blocktime_parsed_from_ms(self):
        e = OMPEnvironment.from_env({"KMP_BLOCKTIME": "200"})
        assert e.blocktime == pytest.approx(0.2)
        assert math.isinf(
            OMPEnvironment.from_env({"KMP_BLOCKTIME": "infinite"}).blocktime
        )

    def test_bad_blocktime(self):
        with pytest.raises(ConfigurationError):
            OMPEnvironment.from_env({"KMP_BLOCKTIME": "soon"})

    def test_describe_includes_wait_settings(self):
        e = OMPEnvironment(num_threads=4, wait_policy=WaitPolicy.PASSIVE,
                           blocktime=0.2)
        text = e.describe()
        assert "OMP_WAIT_POLICY=passive" in text
        assert "KMP_BLOCKTIME=200" in text
        assert "OMP_WAIT_POLICY" not in OMPEnvironment(num_threads=4).describe()

    def test_negative_blocktime_rejected(self):
        with pytest.raises(ConfigurationError):
            OMPEnvironment(num_threads=4, blocktime=-0.1)


class TestSyncCostModelProfiles:
    def test_default_profile_is_backward_compatible(self):
        """SyncCostModel without a profile == explicit gnu profile."""
        machine = dardel().machine
        legacy = SyncCostModel(SyncCostParams())
        gnu = SyncCostModel(SyncCostParams(), get_runtime_profile("gnu"))
        for cpus in ((0, 1), tuple(range(64)), tuple(range(128))):
            team = team_on(machine, cpus)
            assert legacy.barrier_cost(team) == gnu.barrier_cost(team)
            assert legacy.fork_cost(team) == gnu.fork_cost(team)
            assert legacy.jitter_sigma(team) == gnu.jitter_sigma(team)
            assert legacy.lock_handoff(team) == gnu.lock_handoff(team)

    def test_vendors_differ_at_64_threads(self):
        """The acceptance criterion: measurably different barrier cost and
        jitter (CV driver) for gnu vs llvm at >= 64 threads."""
        machine = dardel().machine
        params = dardel().sync_params
        gnu = SyncCostModel(params, get_runtime_profile("gnu"))
        llvm = SyncCostModel(params, get_runtime_profile("llvm"))
        for n in (64, 128):
            team = team_on(machine, tuple(range(n)))
            g, l = gnu.barrier_cost(team), llvm.barrier_cost(team)
            assert l < 0.9 * g  # hyper barrier measurably cheaper
            assert llvm.jitter_sigma(team) < gnu.jitter_sigma(team)

    def test_passive_pays_wakeup_path(self):
        machine = vera().machine
        params = vera().sync_params
        sched = vera().sched_params
        active = SyncCostModel(params, get_runtime_profile("gnu"), sched)
        passive_profile = RuntimeProfile(
            "gnu-passive", "GCC libgomp", wait_policy=WaitPolicy.PASSIVE,
            spin_before_sleep=0.0,
        )
        passive = SyncCostModel(params, passive_profile, sched)
        team = team_on(machine, tuple(range(16)))
        assert passive.sleep_share == 1.0
        # barrier release wakes log2(n) tree levels of sleepers
        assert passive.barrier_cost(team) == pytest.approx(
            active.barrier_cost(team) + wakeup_path_cost(sched, 4)
        )
        # fork wakes every sleeping pool worker
        assert passive.fork_cost(team) == pytest.approx(
            active.fork_cost(team) + wakeup_path_cost(sched, 15)
        )

    def test_passive_waiters_do_not_burn_smt(self):
        """Sleeping waiters neither inflate line latency nor jitter on SMT."""
        machine = toy().machine
        params = SyncCostParams()
        mt_team = team_on(machine, (0, 8, 1, 9))  # SMT siblings share cores
        active = SyncCostModel(params, default_profile())
        passive = SyncCostModel(
            params,
            RuntimeProfile("p", "P", wait_policy=WaitPolicy.PASSIVE,
                           spin_before_sleep=0.0),
        )
        assert passive.effective_line_latency(mt_team) == pytest.approx(
            active.effective_line_latency(mt_team) / params.smt_sync_factor
        )
        assert passive.jitter_sigma(mt_team) == pytest.approx(
            active.jitter_sigma(mt_team) - params.smt_jitter_boost
        )

    def test_wakeup_path_cost(self):
        p = SchedParams()
        assert wakeup_path_cost(p, 0) == 0.0
        assert wakeup_path_cost(p, 3) == pytest.approx(3 * p.wake_ipi_cost)

    def test_blocktime_grades_the_cost_model(self):
        """KMP_BLOCKTIME must actually change costs: the sleep decision is
        evaluated against the benchmarks' ~1 ms re-entry cadence."""
        from repro.omp.constructs import TYPICAL_REGION_GAP

        machine = vera().machine
        params = vera().sync_params

        def model(spin):
            return SyncCostModel(params, RuntimeProfile(
                "p", "P", wait_policy=WaitPolicy.PASSIVE,
                spin_before_sleep=spin,
            ))

        team = team_on(machine, tuple(range(16)))
        sleepy = model(0.0)
        half = model(TYPICAL_REGION_GAP / 2)
        spinny = model(2 * TYPICAL_REGION_GAP)  # blocktime above the cadence
        assert sleepy.sleep_share == 1.0
        assert half.sleep_share == pytest.approx(0.5)
        assert spinny.sleep_share == 0.0
        assert (
            spinny.fork_cost(team)
            < half.fork_cost(team)
            < sleepy.fork_cost(team)
        )


class TestRuntimeThreading:
    def test_runtime_resolves_platform_profile(self):
        rt = OpenMPRuntime(
            vera().with_runtime("llvm"),
            OMPEnvironment(num_threads=4, places="cores",
                           proc_bind=ProcBind.CLOSE),
        )
        assert rt.profile.name == "llvm"
        assert rt.sync_cost.profile.name == "llvm"

    def test_explicit_profile_wins(self):
        rt = OpenMPRuntime(
            vera(),
            OMPEnvironment(num_threads=4, places="cores",
                           proc_bind=ProcBind.CLOSE),
            profile=get_runtime_profile("llvm"),
        )
        assert rt.profile.name == "llvm"

    def test_env_wait_policy_overrides_profile(self):
        rt = OpenMPRuntime(
            vera(),
            OMPEnvironment(num_threads=4, places="cores",
                           proc_bind=ProcBind.CLOSE,
                           wait_policy=WaitPolicy.PASSIVE),
        )
        assert rt.profile.passive
        assert rt.sync_cost.sleep_share == 1.0

    def test_platform_with_runtime_describe(self):
        assert "libomp" in vera().with_runtime("llvm").describe()


class TestConfigRuntimeField:
    def _cfg(self, **kw):
        base = dict(platform="toy", benchmark="syncbench", num_threads=4,
                    runs=2, seed=7, benchmark_params={"outer_reps": 4})
        base.update(kw)
        return ExperimentConfig(**base)

    def test_default_runtime_is_gnu(self):
        cfg = self._cfg()
        assert cfg.runtime == "gnu" and cfg.wait_policy is None
        assert cfg.to_dict()["runtime"] == "gnu"

    def test_bad_runtime_rejected(self):
        with pytest.raises(ConfigurationError):
            self._cfg(runtime="icc")
        with pytest.raises(ConfigurationError):
            self._cfg(wait_policy="sometimes")

    def test_runtime_in_cache_key(self):
        assert cache_key(self._cfg()) != cache_key(self._cfg(runtime="llvm"))
        assert cache_key(self._cfg()) != cache_key(self._cfg(wait_policy="passive"))

    def test_round_trip(self):
        cfg = self._cfg(runtime="llvm", wait_policy="passive")
        assert ExperimentConfig.from_dict(cfg.to_dict()) == cfg

    def test_case_normalized_into_cache_key(self):
        """'GNU' and 'gnu' are the same config — and the same cache key."""
        assert self._cfg(runtime="GNU") == self._cfg(runtime="gnu")
        assert cache_key(self._cfg(runtime="LLVM")) == cache_key(
            self._cfg(runtime="llvm")
        )
        assert self._cfg(wait_policy="PASSIVE").wait_policy == "passive"
        assert "rt=" not in self._cfg(runtime="GNU").display_label

    def test_display_label_shows_non_defaults(self):
        assert "rt=llvm" in self._cfg(runtime="llvm").display_label
        assert "wait=passive" in self._cfg(wait_policy="passive").display_label
        assert "rt=" not in self._cfg().display_label

    def test_runs_differ_between_vendors(self):
        gnu = Runner(self._cfg(benchmark_params={
            "outer_reps": 4, "constructs": ("barrier",)})).run()
        llvm = Runner(self._cfg(runtime="llvm", benchmark_params={
            "outer_reps": 4, "constructs": ("barrier",)})).run()
        assert not np.array_equal(
            gnu.runs_matrix("barrier"), llvm.runs_matrix("barrier")
        )

    def test_passive_slower_than_active(self):
        """Passive waiting pays the wakeup path on every fork/barrier.

        EPCC's adaptive inner-repetition count holds the *total* test time
        near its target, so the vendor effect shows in the per-construct
        overhead, not the raw repetition time.
        """
        active = Runner(self._cfg(benchmark_params={
            "outer_reps": 5, "constructs": ("parallel",)})).run()
        passive = Runner(self._cfg(wait_policy="passive", benchmark_params={
            "outer_reps": 5, "constructs": ("parallel",)})).run()
        assert (
            passive.runs_matrix("parallel.overhead").mean()
            > 2 * active.runs_matrix("parallel.overhead").mean()
        )


class TestVendorRunLevelDifferences:
    """Acceptance: gnu vs llvm differ in barrier cost/CV at >= 64 threads."""

    def _run(self, runtime):
        cfg = ExperimentConfig(
            platform="dardel", benchmark="syncbench", num_threads=64,
            places="cores", proc_bind="close", runs=2, seed=5,
            noise="quiet", runtime=runtime,
            benchmark_params={"outer_reps": 30, "constructs": ("barrier",)},
        )
        return Runner(cfg).run().runs_matrix("barrier.overhead")

    def test_barrier_cost_and_cv_differ_at_64_threads(self):
        gnu = self._run("gnu")
        llvm = self._run("llvm")
        # the hyper barrier is measurably cheaper...
        assert llvm.mean() < 0.95 * gnu.mean()
        # ...and its spread-out contention jitters less (same rng draws,
        # smaller sigma -> strictly smaller sample CV)
        assert summarize(llvm.ravel()).cv < summarize(gnu.ravel()).cv


class TestRuntimeCompareExperiment:
    TINY = dict(runs=2, outer_reps=3, seed=11,
                dardel_threads=(4,), vera_threads=(4,),
                runtimes=("gnu", "llvm"), wait_policies=("active", "passive"))

    def test_serial_parallel_and_cached_identical(self, tmp_path):
        """Acceptance: bit-identical serial / jobs=4 / warmed-cache replay."""
        serial = experiments.runtime_compare(jobs=1, **self.TINY)
        parallel = experiments.runtime_compare(jobs=4, **self.TINY)
        assert parallel.data == serial.data

        cache = ResultCache(tmp_path)
        first = experiments.runtime_compare(jobs=1, cache=cache, **self.TINY)
        assert cache.stores > 0
        replay = experiments.runtime_compare(jobs=1, cache=cache, **self.TINY)
        assert cache.hits == cache.stores
        assert replay.data == first.data == serial.data

    def test_report_sections(self):
        art = experiments.runtime_compare(**self.TINY)
        text = art.render()
        assert "OMP_WAIT_POLICY=active" in text
        assert "vendor gap" in text
        assert "dardel/llvm/passive/n4" in art.data
