"""Tests for the explicit-tasking subsystem.

Covers the runtime pieces (cost model, deques, workload generators, the
work-stealing scheduler), the taskbench benchmark, the harness integration
(determinism across serial / process-pool execution, cache round-trips with
tasking parameters in the key), and the figure8 experiment driver.
"""

import json

import numpy as np
import pytest

from repro.errors import (
    BenchmarkError,
    ConfigurationError,
    HarnessError,
    SimulationError,
)
from repro.freq.dvfs import FrequencyModel
from repro.freq.governor import make_governor
from repro.harness import (
    ExperimentConfig,
    ParallelRunner,
    ResultCache,
    Runner,
    cache_key,
    experiments,
)
from repro.harness.report import render_tasking_summary, split_tasking_labels
import repro.harness.runner as runner_mod
from repro.bench.taskbench import Taskbench, TaskbenchParams
from repro.omp.tasking import (
    Task,
    TaskCostModel,
    TaskCostParams,
    TaskDeque,
    WorkStealingScheduler,
    fib_tasks,
    taskloop_tasks,
    uniform_tasks,
)
from repro.omp.team import Team
from repro.osnoise.model import NoiseModel
from repro.platform import toy, vera
from repro.rng import RngFactory


# ---------------------------------------------------------------------------
# Cost parameters
# ---------------------------------------------------------------------------

class TestTaskCostParams:
    def test_defaults_validate(self):
        TaskCostParams()

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskCostParams(deque_push=-1e-9)

    def test_failed_steal_cheaper_than_success(self):
        with pytest.raises(ConfigurationError):
            TaskCostParams(steal_attempt=1e-6, steal_success=1e-7)

    def test_backoff_grows_and_caps(self):
        model = TaskCostModel(TaskCostParams(
            steal_backoff_base=1e-6, steal_backoff_factor=2.0,
            steal_backoff_max=5e-6,
        ))
        delays = [model.backoff(k) for k in range(1, 6)]
        assert delays[0] == pytest.approx(1e-6)
        assert delays[1] == pytest.approx(2e-6)
        assert delays == sorted(delays)
        assert max(delays) == pytest.approx(5e-6)
        assert model.backoff(0) == 0.0

    def test_cross_numa_team_steals_slower(self):
        plat = vera()
        model = TaskCostModel(TaskCostParams(), None)
        one_numa = Team(plat.machine, tuple(range(8)), bound=True)
        two_socket = Team(plat.machine, tuple(range(4)) + tuple(range(16, 20)),
                          bound=True)
        assert model.steal_cost(two_socket) > model.steal_cost(one_numa)
        assert model.failed_steal_cost(two_socket) > model.failed_steal_cost(one_numa)


# ---------------------------------------------------------------------------
# Deques
# ---------------------------------------------------------------------------

class TestTaskDeque:
    def test_owner_lifo_thief_fifo(self):
        d = TaskDeque(owner=0)
        for tag in "abc":
            d.push(Task(work=0.0, tag=tag))
        assert d.pop().tag == "c"        # owner: freshest
        assert d.steal().tag == "a"      # thief: oldest
        assert d.pop().tag == "b"
        assert len(d) == 0 and not d

    def test_empty_operations_raise(self):
        d = TaskDeque(owner=1)
        with pytest.raises(SimulationError):
            d.pop()
        with pytest.raises(SimulationError):
            d.steal()
        assert d.peek_steal() is None

    def test_counters(self):
        d = TaskDeque(owner=0)
        d.push(Task(work=0.0))
        d.push(Task(work=0.0))
        d.pop()
        d.steal()
        assert (d.pushes, d.pops, d.steals_taken) == (2, 1, 1)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

class TestTaskloopChunking:
    def test_grainsize_chunk_bounds(self):
        tasks = taskloop_tasks(100, 1e-6, grainsize=8)
        sizes = [t.work / 1e-6 for t in tasks]
        assert sum(sizes) == pytest.approx(100)
        assert all(8 <= s < 16 for s in sizes)  # OpenMP spec guarantee

    def test_num_tasks_near_equal(self):
        tasks = taskloop_tasks(10, 1e-6, num_tasks=4)
        sizes = sorted(round(t.work / 1e-6) for t in tasks)
        assert sizes == [2, 2, 3, 3]

    def test_num_tasks_clamped_to_iterations(self):
        assert len(taskloop_tasks(3, 1e-6, num_tasks=10)) == 3

    def test_exactly_one_sizing_clause(self):
        with pytest.raises(ConfigurationError):
            taskloop_tasks(10, 1e-6)
        with pytest.raises(ConfigurationError):
            taskloop_tasks(10, 1e-6, grainsize=2, num_tasks=2)

    def test_imbalance_ramps_but_preserves_total(self):
        flat = taskloop_tasks(64, 1e-6, num_tasks=8)
        ramped = taskloop_tasks(64, 1e-6, num_tasks=8, imbalance=0.8)
        assert sum(t.work for t in ramped) == pytest.approx(
            sum(t.work for t in flat)
        )
        works = [t.work for t in ramped]
        assert works == sorted(works)          # linear ramp: ascending chunks
        assert works[-1] > 2.0 * works[0]      # and genuinely imbalanced

    def test_determinism(self):
        a = taskloop_tasks(50, 2e-6, grainsize=4, imbalance=0.3)
        b = taskloop_tasks(50, 2e-6, grainsize=4, imbalance=0.3)
        assert a == b


class TestTreeWorkloads:
    def test_fib_counts_follow_fibonacci(self):
        # tasks(n) = 1 + tasks(n-1) + tasks(n-2), tasks(<2) = 1
        counts = {n: fib_tasks(n, 1e-6, 1e-7).count() for n in range(8)}
        for n in range(2, 8):
            assert counts[n] == 1 + counts[n - 1] + counts[n - 2]

    def test_fib_unbalanced(self):
        root = fib_tasks(8, 1e-6, 1e-7)
        first, second = root.children
        assert first.count() > second.count()

    def test_fib_cutoff(self):
        assert fib_tasks(5, 1e-6, 1e-7, cutoff=6).count() == 1

    def test_uniform(self):
        tasks = uniform_tasks(5, 3e-6)
        assert len(tasks) == 5
        assert all(t.work == 3e-6 and not t.children for t in tasks)

    def test_task_validation(self):
        with pytest.raises(ConfigurationError):
            Task(work=-1.0)


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------

def _scheduler(team, seed=3, platform=None, params=None):
    plat = platform if platform is not None else toy()
    f = RngFactory(seed)
    fm = FrequencyModel(plat.machine, plat.freq_spec)
    plan = fm.plan(0.0, 5.0, list(team.cpus),
                   make_governor(plat.default_governor), f.stream("freq"))
    noise = NoiseModel(plat.machine, plat.noise_profile.sources).realize(
        0.0, 5.0, list(team.cpus), f.stream("noise")
    )
    streams = [f.stream("thief", i) for i in range(team.n_threads)]
    model = TaskCostModel(params if params is not None else TaskCostParams())
    return WorkStealingScheduler(team, model, plan, noise, streams)


class TestWorkStealingScheduler:
    def test_every_task_executes_exactly_once(self):
        team = Team(toy().machine, (0, 2, 4, 6), bound=True)
        tasks = taskloop_tasks(128, 2e-6, grainsize=2, imbalance=0.5)
        stats = _scheduler(team).run(tasks)
        assert int(stats.tasks_executed.sum()) == stats.total_tasks == len(tasks)

    def test_recursive_tree_executes_fully(self):
        team = Team(toy().machine, (0, 2, 4, 6), bound=True)
        root = fib_tasks(10, 4e-6, 4e-7)
        stats = _scheduler(team).run(root)
        assert int(stats.tasks_executed.sum()) == root.count()
        assert stats.total_steals > 0  # the tree cannot stay on one deque

    def test_deterministic_replay(self):
        team = Team(toy().machine, (0, 2, 4, 6), bound=True)
        tasks = taskloop_tasks(64, 2e-6, grainsize=2, imbalance=0.5)
        a = _scheduler(team, seed=11).run(tasks)
        b = _scheduler(team, seed=11).run(tasks)
        assert a.makespan == b.makespan
        assert np.array_equal(a.steals, b.steals)
        assert np.array_equal(a.failed_steals, b.failed_steals)
        assert np.array_equal(a.tasks_executed, b.tasks_executed)

    def test_seed_changes_schedule(self):
        team = Team(toy().machine, (0, 2, 4, 6), bound=True)
        tasks = taskloop_tasks(64, 2e-6, grainsize=2, imbalance=0.5)
        a = _scheduler(team, seed=11).run(tasks)
        b = _scheduler(team, seed=12).run(tasks)
        assert a.makespan != b.makespan

    def test_single_thread_never_steals(self):
        team = Team(toy().machine, (0,), bound=True)
        tasks = taskloop_tasks(32, 2e-6, grainsize=4)
        stats = _scheduler(team).run(tasks)
        assert stats.total_steals == 0
        assert stats.total_failed_steals == 0
        assert int(stats.tasks_executed[0]) == len(tasks)

    def test_parallelism_speeds_up_quiet_platform(self):
        plat = toy().quiet()
        tasks = taskloop_tasks(256, 5e-6, grainsize=4)
        t1 = Team(plat.machine, (0,), bound=True)
        t4 = Team(plat.machine, (0, 2, 4, 6), bound=True)
        serial = _scheduler(t1, platform=plat).run(tasks)
        parallel = _scheduler(t4, platform=plat).run(tasks)
        assert parallel.makespan < serial.makespan

    def test_imbalanced_grainsize_forces_steals(self):
        """The acceptance-criteria scenario: imbalanced taskloop -> steals."""
        team = Team(toy().machine, (0, 2, 4, 6), bound=True)
        tasks = taskloop_tasks(256, 2e-6, grainsize=4, imbalance=0.6)
        stats = _scheduler(team).run(tasks)
        assert stats.total_steals > 0
        assert 0.0 <= stats.failed_steal_rate <= 1.0
        assert 0.0 <= stats.idle_fraction < 1.0

    def test_stats_accounting(self):
        team = Team(toy().machine, (0, 2), bound=True)
        tasks = uniform_tasks(16, 3e-6)
        stats = _scheduler(team).run(tasks, t_start=1.5)
        assert stats.t_start == 1.5
        assert stats.t_end > 1.5
        assert stats.makespan == pytest.approx(stats.t_end - 1.5)
        assert stats.events_executed > 0
        assert np.all(stats.busy_time >= 0) and np.all(stats.idle_time >= 0)

    def test_stream_count_must_match_team(self):
        team = Team(toy().machine, (0, 2), bound=True)
        sched = _scheduler(team)
        with pytest.raises(ConfigurationError):
            WorkStealingScheduler(
                team, sched.cost_model, sched.freq_plan, sched.noise,
                sched.streams[:1],
            )

    def test_empty_graph_rejected(self):
        team = Team(toy().machine, (0,), bound=True)
        with pytest.raises(ConfigurationError):
            _scheduler(team).run(())

    def test_runaway_guard_trips(self):
        team = Team(toy().machine, (0, 2, 4, 6), bound=True)
        sched = _scheduler(team)
        sched.max_events = 10  # far too small for 64 tasks
        with pytest.raises(SimulationError, match="event cap"):
            sched.run(taskloop_tasks(64, 2e-6, grainsize=1))


# ---------------------------------------------------------------------------
# Taskbench
# ---------------------------------------------------------------------------

class TestTaskbenchParams:
    def test_pattern_validated(self):
        with pytest.raises(BenchmarkError):
            TaskbenchParams(pattern="quicksort")

    def test_grainsize_num_tasks_exclusive(self):
        with pytest.raises(BenchmarkError):
            TaskbenchParams(grainsize=4, num_tasks=8)

    def test_labels(self):
        assert TaskbenchParams(grainsize=8).label(4) == "taskloop_g8"
        assert TaskbenchParams(num_tasks=32).label(4) == "taskloop_nt32"
        assert TaskbenchParams().label(4) == "taskloop_nt8"  # 2 x team size
        assert TaskbenchParams(pattern="fib", fib_n=12).label(4) == "fib_12"
        assert TaskbenchParams(pattern="uniform", n_tasks=64).label(4) == "uniform_64"


QUICK_TASK = {
    "outer_reps": 4, "pattern": "taskloop", "grainsize": 4,
    "total_iters": 128, "imbalance": 0.6,
}


def _task_cfg(**overrides) -> ExperimentConfig:
    base = dict(
        platform="toy", benchmark="taskbench", num_threads=4,
        runs=3, seed=17, benchmark_params=QUICK_TASK,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestTaskbenchThroughHarness:
    def test_series_layout(self):
        result = Runner(_task_cfg()).run()
        assert set(result.labels()) == {
            "taskloop_g4", "taskloop_g4.steals",
            "taskloop_g4.failed_steals", "taskloop_g4.idle_frac",
        }
        times = result.runs_matrix("taskloop_g4")
        assert times.shape == (3, 4)
        assert np.all(times > 0)
        assert np.all(result.runs_matrix("taskloop_g4.steals") >= 0)

    def test_nonzero_steals_under_imbalance(self):
        result = Runner(_task_cfg()).run()
        assert result.runs_matrix("taskloop_g4.steals").sum() > 0

    def test_fib_pattern(self):
        cfg = _task_cfg(benchmark_params={
            "outer_reps": 2, "pattern": "fib", "fib_n": 8,
            "fib_leaf_work": 4e-6, "fib_node_work": 4e-7,
        })
        result = Runner(cfg).run()
        assert "fib_8" in result.labels()

    def test_unbound_team_runs(self):
        cfg = _task_cfg(places=None, proc_bind="false", runs=2)
        result = Runner(cfg).run()
        assert result.runs_matrix("taskloop_g4").shape == (2, 4)

    def test_parallel_bit_identical_to_serial(self):
        cfg = _task_cfg(runs=4)
        serial = Runner(cfg).run().to_dict()
        parallel = ParallelRunner(cfg, jobs=4).run().to_dict()
        assert json.dumps(parallel, sort_keys=True) == json.dumps(serial, sort_keys=True)

    def test_json_round_trip(self):
        from repro.harness.results import ExperimentResult

        result = Runner(_task_cfg(runs=2)).run()
        again = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert again.to_dict() == result.to_dict()


class TestTaskingCache:
    def test_tasking_params_participate_in_key(self):
        base = _task_cfg()
        assert cache_key(base) != cache_key(
            base.with_overrides(benchmark_params={**QUICK_TASK, "grainsize": 8})
        )
        assert cache_key(base) != cache_key(
            base.with_overrides(benchmark_params={**QUICK_TASK, "imbalance": 0.2})
        )
        assert cache_key(base) != cache_key(base.with_overrides(noise="quiet"))

    def test_cache_round_trip_serves_without_simulation(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cfg = _task_cfg()
        first = ParallelRunner(cfg, jobs=1, cache=cache).run()
        assert cache.stores == 1

        def boom(self, run_index):
            raise AssertionError("simulated despite warm cache")

        monkeypatch.setattr(runner_mod.Runner, "run_one", boom)
        second = ParallelRunner(cfg, jobs=1, cache=cache).run()
        assert second.to_dict() == first.to_dict()
        assert cache.hits == 1


class TestNoiseProfileKnob:
    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(noise="loud")

    def test_quiet_is_deterministically_leq_default(self):
        noisy = Runner(_task_cfg()).run().runs_matrix("taskloop_g4")
        quiet = Runner(_task_cfg(noise="quiet")).run().runs_matrix("taskloop_g4")
        assert quiet.mean() <= noisy.mean()

    def test_noise_survives_round_trip(self):
        cfg = _task_cfg(noise="quiet")
        assert ExperimentConfig.from_dict(cfg.to_dict()) == cfg


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

class TestTaskingReport:
    def test_split_labels(self):
        labels = (
            "taskloop_g4", "taskloop_g4.steals", "taskloop_g4.failed_steals",
            "taskloop_g4.idle_frac", "reduction",
        )
        times, metrics = split_tasking_labels(labels)
        assert times == ["taskloop_g4", "reduction"]
        assert set(metrics) == set(labels) - {"taskloop_g4", "reduction"}

    def test_split_requires_all_companions(self):
        times, metrics = split_tasking_labels(("x", "x.steals"))
        assert times == ["x", "x.steals"] and metrics == []

    def test_render_summary(self):
        steals = np.array([[4.0, 6.0], [5.0, 5.0]])
        failed = np.array([[1.0, 3.0], [2.0, 2.0]])
        idle = np.array([[0.1, 0.2], [0.15, 0.15]])
        text = render_tasking_summary("taskloop_g4", steals, failed, idle)
        assert "taskloop_g4" in text
        assert "fail rate" in text
        assert "all" in text

    def test_render_summary_shape_mismatch(self):
        with pytest.raises(ValueError):
            render_tasking_summary(
                "x", np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((2, 2))
            )


# ---------------------------------------------------------------------------
# Experiment registry + figure8
# ---------------------------------------------------------------------------

class TestExperimentRegistry:
    def test_all_drivers_registered(self):
        names = experiments.available_experiments()
        assert "table2" in names and "figure8" in names
        assert set(names) == set(experiments.ALL_EXPERIMENTS)

    def test_spec_carries_description_and_rep_params(self):
        spec = experiments.get_experiment("figure8")
        assert spec.driver is experiments.figure8
        assert spec.rep_params == ("outer_reps",)
        assert "work-stealing" in spec.description

    def test_unknown_experiment_raises(self):
        with pytest.raises(HarnessError):
            experiments.get_experiment("figure99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(HarnessError):
            experiments.experiment("dup", name="figure8")(lambda: None)


FIGURE8_TINY = dict(
    runs=2, outer_reps=3, seed=5, threads=(2, 4), grainsizes=(2,),
    noise_profiles=("default", "quiet"), total_iters=64,
)


class TestFigure8:
    def test_serial_jobs_and_replay_bit_identical(self, tmp_path):
        """Acceptance criteria: serial == --jobs N == cached replay."""
        serial = experiments.figure8(jobs=1, **FIGURE8_TINY)
        parallel = experiments.figure8(jobs=2, **FIGURE8_TINY)
        assert parallel.data == serial.data

        cache = ResultCache(tmp_path)
        warmed = experiments.figure8(jobs=2, cache=cache, **FIGURE8_TINY)
        assert warmed.data == serial.data
        replayed = experiments.figure8(jobs=1, cache=cache, **FIGURE8_TINY)
        assert cache.hits == cache.stores > 0
        assert replayed.data == serial.data

    def test_reports_nonzero_steals_under_imbalance(self):
        art = experiments.figure8(jobs=1, **FIGURE8_TINY)
        assert art.data["default/n4/g2"]["mean_steals"] > 0
        assert 0.0 <= art.data["default/n4/g2"]["failed_steal_rate"] <= 1.0
        assert "scheduler internals" in art.render()

    def test_noise_ablation_keys_present(self):
        art = experiments.figure8(jobs=1, **FIGURE8_TINY)
        for noise in ("default", "quiet"):
            for n in (2, 4):
                assert f"{noise}/n{n}/g2" in art.data
