"""Tests for the NUMA memory-system substrate."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.mem import BandwidthModel, MemorySpec, PagePlacement
from repro.topology import TopologyBuilder
from repro.units import gb_per_s


@pytest.fixture
def machine():
    # 2 sockets x 2 numa x 2 cores, SMT-1 -> 8 cpus, numa: {0,1},{2,3},{4,5},{6,7}
    return TopologyBuilder("toy").add_sockets(2, 2, 2, smt=1).build()


@pytest.fixture
def spec():
    return MemorySpec(
        numa_bw=gb_per_s(50.0),
        core_bw=gb_per_s(20.0),
        same_socket_remote_factor=0.7,
        cross_socket_remote_factor=0.4,
        kernel_launch_overhead=0.0,
    )


class TestPagePlacement:
    def test_first_touch(self, machine):
        p = PagePlacement.first_touch(machine, [0, 2, 4, 6])
        assert p.home_domain == (0, 1, 2, 3)

    def test_first_touch_empty(self, machine):
        with pytest.raises(MemoryModelError):
            PagePlacement.first_touch(machine, [])

    def test_interleaved(self, machine):
        p = PagePlacement.interleaved(machine, 6)
        assert p.home_domain == (0, 1, 2, 3, 0, 1)

    def test_locality_vector(self, machine):
        p = PagePlacement.first_touch(machine, [0, 2])
        # thread 0 stays on numa0 cpu, thread 1 moves to cpu in numa0
        loc = p.locality_vector(machine, [1, 0])
        np.testing.assert_array_equal(loc, [1.0, 0.0])

    def test_locality_vector_length_check(self, machine):
        p = PagePlacement.first_touch(machine, [0, 2])
        with pytest.raises(MemoryModelError):
            p.locality_vector(machine, [0])


class TestPathFactor:
    def test_local(self, machine, spec):
        model = BandwidthModel(machine, spec)
        assert model.path_factor(0, 0) == 1.0

    def test_same_socket_remote(self, machine, spec):
        model = BandwidthModel(machine, spec)
        # cpu0 is numa0/socket0; domain 1 is socket0
        assert model.path_factor(0, 1) == 0.7

    def test_cross_socket(self, machine, spec):
        model = BandwidthModel(machine, spec)
        assert model.path_factor(0, 2) == 0.4


class TestSolver:
    def test_single_thread_core_limited(self, machine, spec):
        model = BandwidthModel(machine, spec)
        p = PagePlacement.first_touch(machine, [0])
        bw = model.solve([0], p)
        assert bw[0] == pytest.approx(gb_per_s(20.0))

    def test_domain_saturation(self, machine, spec):
        model = BandwidthModel(machine, spec)
        # 2 cores per domain can't saturate (40 < 50); force by dropping core count:
        # place 2 threads on the same domain's cpus -> 40 GB/s total demand, fits.
        p = PagePlacement.first_touch(machine, [0, 1])
        bw = model.solve([0, 1], p)
        np.testing.assert_allclose(bw, gb_per_s(20.0))

    def test_domain_oversubscription_scales_down(self, machine):
        spec = MemorySpec(numa_bw=gb_per_s(30.0), core_bw=gb_per_s(20.0))
        model = BandwidthModel(machine, spec)
        p = PagePlacement.first_touch(machine, [0, 1])
        bw = model.solve([0, 1], p)
        # two 20 GB/s demands into a 30 GB/s domain -> 15 each
        np.testing.assert_allclose(bw, gb_per_s(15.0), rtol=1e-6)

    def test_remote_stream_slower(self, machine, spec):
        model = BandwidthModel(machine, spec)
        local = PagePlacement.first_touch(machine, [0])
        remote = PagePlacement(home_domain=(2,))  # cross socket
        bw_local = model.solve([0], local)[0]
        bw_remote = model.solve([0], remote)[0]
        assert bw_remote == pytest.approx(0.4 * bw_local)

    def test_smt_sharing_halves_core_link(self, machine, spec):
        model = BandwidthModel(machine, spec)
        p = PagePlacement.first_touch(machine, [0, 1])
        shared = np.asarray([True, True])
        bw = model.solve([0, 1], p, smt_shared=shared)
        np.testing.assert_allclose(bw, gb_per_s(10.0))

    def test_mismatch_rejected(self, machine, spec):
        model = BandwidthModel(machine, spec)
        p = PagePlacement.first_touch(machine, [0])
        with pytest.raises(MemoryModelError):
            model.solve([0, 1], p)


class TestKernelTime:
    def test_scales_inverse_with_threads(self, machine, spec):
        model = BandwidthModel(machine, spec)
        total = 512e6  # bytes
        t1_p = PagePlacement.first_touch(machine, [0])
        t1 = model.kernel_time(np.asarray([total]), [0], t1_p)
        cpus4 = [0, 2, 4, 6]
        t4_p = PagePlacement.first_touch(machine, cpus4)
        t4 = model.kernel_time(np.full(4, total / 4), cpus4, t4_p)
        assert t4 < t1 / 3.0  # near-linear scaling while core-limited

    def test_slowest_thread_dominates(self, machine, spec):
        model = BandwidthModel(machine, spec)
        # thread 1 streams cross-socket -> sets kernel time
        p = PagePlacement(home_domain=(0, 2))
        cpus = [0, 1]
        bw = model.solve(cpus, p)
        t = model.kernel_time(np.asarray([1e9, 1e9]), cpus, p)
        assert t == pytest.approx(1e9 / bw[1])

    def test_launch_overhead_added(self, machine):
        spec = MemorySpec(numa_bw=gb_per_s(50), core_bw=gb_per_s(20),
                          kernel_launch_overhead=5e-6)
        model = BandwidthModel(machine, spec)
        p = PagePlacement.first_touch(machine, [0])
        t = model.kernel_time(np.asarray([0.0]), [0], p)
        assert t == pytest.approx(5e-6)

    def test_aggregate_bandwidth(self, machine, spec):
        model = BandwidthModel(machine, spec)
        cpus = [0, 2, 4, 6]
        p = PagePlacement.first_touch(machine, cpus)
        agg = model.aggregate_bandwidth(1e9, cpus, p)
        assert agg == pytest.approx(4 * gb_per_s(20.0), rel=1e-6)


class TestSpecValidation:
    def test_bad_bw(self):
        with pytest.raises(MemoryModelError):
            MemorySpec(numa_bw=0, core_bw=1)
        with pytest.raises(MemoryModelError):
            MemorySpec(numa_bw=1, core_bw=1, cross_socket_remote_factor=0.0)
        with pytest.raises(MemoryModelError):
            MemorySpec(numa_bw=1, core_bw=1, kernel_launch_overhead=-1.0)
