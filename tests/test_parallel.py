"""Tests for the parallel execution engine and the on-disk result cache."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness import (
    ExperimentConfig,
    ParallelRunner,
    ResultCache,
    Runner,
    Sweep,
    cache_key,
    experiments,
)
from repro.harness.parallel import resolve_jobs
import repro.harness.runner as runner_mod


QUICK = {"outer_reps": 6}


def _cfg(**overrides) -> ExperimentConfig:
    base = dict(
        platform="toy", benchmark="syncbench", num_threads=4,
        runs=3, seed=17, benchmark_params=QUICK,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_auto(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)


class TestParallelRunner:
    def test_jobs1_matches_serial(self):
        cfg = _cfg()
        assert ParallelRunner(cfg, jobs=1).run().to_dict() == Runner(cfg).run().to_dict()

    def test_parallel_bit_identical_to_serial(self):
        """jobs=4 must reproduce the serial runner byte for byte."""
        cfg = _cfg(runs=4)
        serial = Runner(cfg).run().to_dict()
        parallel = ParallelRunner(cfg, jobs=4).run().to_dict()
        assert json.dumps(parallel, sort_keys=True) == json.dumps(serial, sort_keys=True)

    def test_parallel_bit_identical_with_freq_logging(self):
        cfg = _cfg(runs=2, freq_logging=True, logger_cpu=14)
        serial = Runner(cfg).run().to_dict()
        parallel = ParallelRunner(cfg, jobs=2).run().to_dict()
        assert parallel == serial

    def test_records_come_back_in_run_order(self):
        result = ParallelRunner(_cfg(runs=5), jobs=3).run()
        assert [rec.run_index for rec in result.records] == list(range(5))


class TestSweep:
    def test_many_configs_match_individual_runs(self):
        configs = [_cfg(), _cfg(seed=18), _cfg(benchmark="babelstream",
                                               benchmark_params={"num_times": 3})]
        batched = Sweep(jobs=2).run(configs)
        for cfg, result in zip(configs, batched):
            assert result.to_dict() == Runner(cfg).run().to_dict()

    def test_results_in_input_order(self):
        configs = [_cfg(seed=s) for s in (5, 6, 7)]
        results = Sweep(jobs=2).run(configs)
        assert [r.config.seed for r in results] == [5, 6, 7]

    def test_empty_sweep(self):
        assert Sweep(jobs=2).run([]) == []


class TestCacheKey:
    def test_stable(self):
        assert cache_key(_cfg()) == cache_key(_cfg())

    def test_seed_changes_key(self):
        assert cache_key(_cfg(seed=1)) != cache_key(_cfg(seed=2))

    def test_any_config_field_changes_key(self):
        base = _cfg()
        assert cache_key(base) != cache_key(base.with_overrides(num_threads=2))
        assert cache_key(base) != cache_key(
            base.with_overrides(benchmark_params={"outer_reps": 7})
        )

    def test_unencodable_value_raises_instead_of_hashing_repr(self):
        """Regression: a non-JSON value used to be hashed via repr(), which
        can embed a memory address -> a different key every process."""
        from repro.errors import HarnessError

        class Opaque:
            pass

        cfg = _cfg(benchmark_params={"outer_reps": 3, "payload": Opaque()})
        with pytest.raises(HarnessError, match="not cacheable") as excinfo:
            cache_key(cfg)
        # the error must name the dotted path of the offending field, not
        # just say "something in to_dict() failed"
        assert "benchmark_params.payload" in str(excinfo.value)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = _cfg()
        assert cache.get(cfg) is None
        result = Runner(cfg).run()
        cache.put(result)
        again = cache.get(cfg)
        assert again is not None
        assert again.to_dict() == result.to_dict()
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_round_trip_with_tuple_params(self, tmp_path):
        """Tuple-valued benchmark params must survive the JSON round trip:
        a replayed result compares equal to the fresh one via to_dict()."""
        cache = ResultCache(tmp_path)
        cfg = _cfg(benchmark_params={"outer_reps": 3, "constructs": ("barrier",)})
        first = Runner(cfg).run()
        cache.put(first)
        again = cache.get(cfg)
        assert again is not None
        assert again.to_dict() == first.to_dict()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = _cfg()
        cache.path_for(cfg).write_text("{not json")
        assert cache.get(cfg) is None
        assert not cache.path_for(cfg).exists()

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(Runner(_cfg()).run())
        cache.put(Runner(_cfg(seed=99)).run())
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_clear_resets_counters(self, tmp_path):
        """Regression: hits/misses/stores survived clear(), so a test that
        cleared and re-ran read stale counts from before the clear."""
        cache = ResultCache(tmp_path)
        cfg = _cfg()
        assert cache.get(cfg) is None  # miss
        cache.put(Runner(cfg).run())  # store
        assert cache.get(cfg) is not None  # hit
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        cache.clear()
        assert (cache.hits, cache.misses, cache.stores) == (0, 0, 0)
        # counters now describe only post-clear traffic
        assert cache.get(cfg) is None
        assert (cache.hits, cache.misses, cache.stores) == (0, 1, 0)

    def test_stale_tmp_swept_on_init(self, tmp_path):
        """Regression: tmp files from crashed writers leaked forever."""
        dead = (tmp_path / "abc.json.tmp.999999999")  # pid can't exist
        dead.write_text("{}")
        unparseable = tmp_path / "def.json.tmp.notapid"
        unparseable.write_text("{}")
        cache = ResultCache(tmp_path)
        assert not dead.exists()
        assert not unparseable.exists()
        assert len(cache) == 0

    def test_live_writer_tmp_never_deleted(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        cache.put(Runner(_cfg()).run())
        # a tmp owned by a live foreign writer (simulated with our parent's
        # pid) survives the sweep...
        live = tmp_path / f"ghi.json.tmp.{os.getppid()}"
        live.write_text("{}")
        dead = tmp_path / "jkl.json.tmp.999999999"
        dead.write_text("{}")
        assert cache.sweep_stale_tmp() == 1  # only the dead writer's tmp
        assert live.exists() and not dead.exists()
        assert len(cache) == 1  # tmp files never count as entries
        # clear() removes entries but spares the live writer's in-flight
        # tmp (deleting it would crash that writer's rename)
        assert cache.clear() == 1
        assert live.exists()
        assert len(cache) == 0

    def test_counters_exact_under_thread_contention(self, tmp_path):
        """The job service drives one shared ResultCache from several
        worker threads at once; hit/miss/store counts must stay exact
        (the bare ``+= 1`` they replaced loses updates under the very
        interleaving this hammers)."""
        import threading

        cache = ResultCache(tmp_path)
        cfgs = [_cfg(seed=s) for s in range(4)]
        results = {cache_key(c): Runner(c).run() for c in cfgs}
        threads_per_cfg, rounds = 4, 25
        barrier = threading.Barrier(len(cfgs) * threads_per_cfg)
        failures = []

        def hammer(cfg):
            try:
                barrier.wait()
                for _ in range(rounds):
                    cache.get(cfg)  # miss until stored, hit after
                    cache.put(results[cache_key(cfg)])
                    assert cache.get(cfg) is not None
            except Exception as exc:  # pragma: no cover - diagnostics
                failures.append(exc)

        workers = [
            threading.Thread(target=hammer, args=(cfg,))
            for cfg in cfgs
            for _ in range(threads_per_cfg)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert not failures
        total_gets = len(workers) * rounds * 2
        assert cache.hits + cache.misses == total_gets
        assert cache.stores == len(workers) * rounds
        # every first-round pre-store get can miss, everything else hits
        assert cache.misses <= len(workers)

    def test_second_invocation_served_without_simulation(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cfg = _cfg()
        first = ParallelRunner(cfg, jobs=1, cache=cache).run()

        def boom(self, run_index):
            raise AssertionError("simulated despite warm cache")

        monkeypatch.setattr(runner_mod.Runner, "run_one", boom)
        second = ParallelRunner(cfg, jobs=1, cache=cache).run()
        assert second.to_dict() == first.to_dict()
        assert cache.hits == 1 and cache.stores == 1


class TestExperimentsThroughParallelPath:
    def test_table2_parallel_matches_serial(self):
        serial = experiments.table2(runs=2, outer_reps=3, seed=3, jobs=1)
        parallel = experiments.table2(runs=2, outer_reps=3, seed=3, jobs=2)
        for column in serial.data["run_means"]:
            assert (
                parallel.data["run_means"][column].tolist()
                == serial.data["run_means"][column].tolist()
            )

    def test_table2_repeat_performs_zero_new_runs(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        first = experiments.table2(runs=2, outer_reps=3, seed=3, jobs=1, cache=cache)
        assert cache.stores == 4  # one entry per column config

        def boom(self, run_index):
            raise AssertionError("simulated despite warm cache")

        monkeypatch.setattr(runner_mod.Runner, "run_one", boom)
        again = experiments.table2(runs=2, outer_reps=3, seed=3, jobs=1, cache=cache)
        assert cache.hits == 4 and cache.stores == 4
        for column in first.data["run_means"]:
            assert (
                again.data["run_means"][column].tolist()
                == first.data["run_means"][column].tolist()
            )

    def test_figure6_through_parallel_path(self):
        serial = experiments.figure6(runs=2, outer_reps=6, seed=3, jobs=1)
        parallel = experiments.figure6(runs=2, outer_reps=6, seed=3, jobs=2)
        assert parallel.data == serial.data

    #: Tiny-scale kwargs: every driver must at least execute end to end.
    TINY = {
        "table2": dict(runs=1, outer_reps=2),
        "figure1": dict(runs=1, outer_reps=2,
                        dardel_threads=(2,), vera_threads=(2,)),
        "figure2": dict(runs=1, num_times=2,
                        dardel_threads=(2,), vera_threads=(2,)),
        "figure3": dict(runs=1, outer_reps=2, num_times=2,
                        dardel_threads=(2,), vera_threads=(2,)),
        "figure4": dict(runs=1, outer_reps=2, num_times=2),
        "figure5": dict(runs=1, outer_reps=2, num_times=2),
        "figure6": dict(runs=1, outer_reps=2),
        "figure7": dict(runs=1, outer_reps=2),
        "figure8": dict(runs=1, outer_reps=2, threads=(2, 4), grainsizes=(4,),
                        noise_profiles=("default",), total_iters=64),
        "runtime_compare": dict(runs=1, outer_reps=2,
                                dardel_threads=(2,), vera_threads=(2,),
                                runtimes=("gnu", "llvm"),
                                wait_policies=("active",)),
    }

    @pytest.mark.parametrize("name", sorted(experiments.ALL_EXPERIMENTS))
    def test_every_driver_runs_through_parallel_path(self, name, tmp_path):
        cache = ResultCache(tmp_path)
        driver = experiments.ALL_EXPERIMENTS[name]
        art = driver(seed=2, jobs=2, cache=cache, **self.TINY[name])
        assert art.name == name
        assert art.render()
        assert cache.stores > 0 and cache.hits == 0
        again = driver(seed=2, jobs=2, cache=cache, **self.TINY[name])
        assert cache.hits == cache.stores  # replayed entirely from disk
        assert again.data.keys() == art.data.keys()
