"""Tests for OMP_PROC_BIND binding, cpu assignment, env parsing, and teams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BindingError, ConfigurationError
from repro.omp import OMPEnvironment, Team, assign_cpus, bind_threads, parse_places
from repro.types import ProcBind, ScheduleKind
from repro.topology import TopologyBuilder, dardel_topology


@pytest.fixture
def machine():
    return TopologyBuilder("toy").add_sockets(2, 1, 4, smt=2).build()


class TestBindThreads:
    def test_close_fewer_threads(self):
        assert bind_threads(4, 8, ProcBind.CLOSE) == [0, 1, 2, 3]

    def test_close_wraps_from_master(self):
        assert bind_threads(3, 4, ProcBind.CLOSE, master_place=2) == [2, 3, 0]

    def test_close_more_threads_groups(self):
        assert bind_threads(4, 2, ProcBind.CLOSE) == [0, 0, 1, 1]
        assert bind_threads(6, 2, ProcBind.CLOSE) == [0, 0, 0, 1, 1, 1]

    def test_spread_sparse(self):
        assert bind_threads(2, 8, ProcBind.SPREAD) == [0, 4]
        assert bind_threads(4, 8, ProcBind.SPREAD) == [0, 2, 4, 6]

    def test_master_policy(self):
        assert bind_threads(4, 8, ProcBind.MASTER, master_place=3) == [3, 3, 3, 3]

    def test_true_behaves_like_close(self):
        assert bind_threads(4, 8, ProcBind.TRUE) == bind_threads(4, 8, ProcBind.CLOSE)

    def test_false_rejected(self):
        with pytest.raises(BindingError):
            bind_threads(4, 8, ProcBind.FALSE)

    def test_validation(self):
        with pytest.raises(BindingError):
            bind_threads(0, 8, ProcBind.CLOSE)
        with pytest.raises(BindingError):
            bind_threads(4, 0, ProcBind.CLOSE)
        with pytest.raises(BindingError):
            bind_threads(4, 8, ProcBind.CLOSE, master_place=8)


@given(
    n_threads=st.integers(min_value=1, max_value=64),
    n_places=st.integers(min_value=1, max_value=64),
    policy=st.sampled_from([ProcBind.CLOSE, ProcBind.SPREAD, ProcBind.MASTER]),
)
@settings(max_examples=150)
def test_bind_threads_properties(n_threads, n_places, policy):
    out = bind_threads(n_threads, n_places, policy)
    assert len(out) == n_threads
    assert all(0 <= p < n_places for p in out)
    if policy is ProcBind.MASTER:
        assert set(out) == {0}
    if policy in (ProcBind.CLOSE, ProcBind.SPREAD) and n_threads <= n_places:
        # one place per thread, no sharing
        assert len(set(out)) == n_threads
    if n_threads >= n_places:
        counts = [out.count(p) for p in range(n_places)]
        if policy is not ProcBind.MASTER:
            # balanced to within one thread
            assert max(counts) - min(counts) <= 1


class TestAssignCpus:
    def test_distinct_cpus_within_place(self, machine):
        places = parse_places(machine, "cores")
        cpus = assign_cpus(places, [0, 0])  # two threads on core 0
        assert cpus == [0, 8]

    def test_wraps_when_oversubscribed(self, machine):
        places = parse_places(machine, "cores")
        cpus = assign_cpus(places, [0, 0, 0])
        assert cpus == [0, 8, 0]

    def test_st_config(self, machine):
        """ST: places=cores, one thread per core -> first hw threads."""
        places = parse_places(machine, "cores")
        tp = bind_threads(8, len(places), ProcBind.CLOSE)
        cpus = assign_cpus(places, tp)
        assert cpus == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_mt_config(self, machine):
        """MT: places=threads packs SMT siblings."""
        places = parse_places(machine, "threads")
        tp = bind_threads(8, len(places), ProcBind.CLOSE)
        cpus = assign_cpus(places, tp)
        # 8 threads fill 4 cores' both hw threads
        assert cpus == [0, 8, 1, 9, 2, 10, 3, 11]

    def test_bad_place_index(self, machine):
        places = parse_places(machine, "cores")
        with pytest.raises(BindingError):
            assign_cpus(places, [99])

    def test_empty_places(self):
        with pytest.raises(BindingError):
            assign_cpus([], [0])


class TestOMPEnvironment:
    def test_defaults(self):
        env = OMPEnvironment(num_threads=4)
        assert not env.bound
        assert env.schedule is ScheduleKind.STATIC

    def test_binding_implies_default_places(self):
        env = OMPEnvironment(num_threads=4, proc_bind=ProcBind.CLOSE)
        assert env.places == "cores"

    def test_from_env_full(self):
        env = OMPEnvironment.from_env(
            {
                "OMP_NUM_THREADS": "128",
                "OMP_PLACES": "threads",
                "OMP_PROC_BIND": "close",
                "OMP_SCHEDULE": "dynamic,1",
            }
        )
        assert env.num_threads == 128
        assert env.places == "threads"
        assert env.proc_bind is ProcBind.CLOSE
        assert env.schedule is ScheduleKind.DYNAMIC
        assert env.schedule_chunk == 1

    def test_from_env_defaults(self):
        env = OMPEnvironment.from_env({})
        assert env.num_threads == 1
        assert env.proc_bind is ProcBind.FALSE

    def test_from_env_errors(self):
        with pytest.raises(ConfigurationError):
            OMPEnvironment.from_env({"OMP_NUM_THREADS": "many"})
        with pytest.raises(ConfigurationError):
            OMPEnvironment.from_env({"OMP_PROC_BIND": "sideways"})
        with pytest.raises(ConfigurationError):
            OMPEnvironment.from_env({"OMP_SCHEDULE": "chaotic"})
        with pytest.raises(ConfigurationError):
            OMPEnvironment.from_env({"OMP_SCHEDULE": "static,x"})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OMPEnvironment(num_threads=0)
        with pytest.raises(ConfigurationError):
            OMPEnvironment(num_threads=1, schedule_chunk=0)

    def test_describe_roundtrip(self):
        env = OMPEnvironment(
            num_threads=16,
            places="cores",
            proc_bind=ProcBind.CLOSE,
            schedule=ScheduleKind.DYNAMIC,
            schedule_chunk=1,
        )
        text = env.describe()
        assert "OMP_NUM_THREADS=16" in text
        assert "OMP_PLACES=cores" in text
        assert "OMP_PROC_BIND=close" in text
        assert "OMP_SCHEDULE=dynamic,1" in text

    def test_with_threads(self):
        env = OMPEnvironment(num_threads=4).with_threads(8)
        assert env.num_threads == 8


class TestTeam:
    def test_basic_properties(self, machine):
        team = Team(machine, (0, 1, 2, 3), bound=True)
        assert team.n_threads == 4
        assert team.master_cpu == 0
        assert team.numa_span == 1
        assert team.socket_span == 1
        assert team.active_cores == 4
        assert not team.uses_smt

    def test_smt_shared(self, machine):
        team = Team(machine, (0, 8, 1), bound=True)  # cpus 0,8 share core 0
        np.testing.assert_array_equal(team.smt_shared, [True, True, False])
        assert team.uses_smt

    def test_span_fractions(self, machine):
        # 2 threads on socket 0, 2 on socket 1 (cpus 4-7 are socket 1)
        team = Team(machine, (0, 1, 4, 5), bound=True)
        assert team.socket_span == 2
        assert team.outside_master_socket_fraction == pytest.approx(0.5)
        assert team.outside_master_numa_fraction == pytest.approx(0.5)

    def test_with_cpus(self, machine):
        team = Team(machine, (0, 1), bound=False)
        moved = team.with_cpus([2, 3])
        assert moved.cpus == (2, 3)
        assert not moved.bound

    def test_validation(self, machine):
        with pytest.raises(BindingError):
            Team(machine, (), bound=True)
        with pytest.raises(BindingError):
            Team(machine, (99,), bound=True)

    def test_describe(self, machine):
        team = Team(machine, (0, 1), bound=True)
        assert "2 threads (bound)" in team.describe()

    def test_dardel_254_thread_team(self):
        """The paper's 254-thread configuration: 127 cores, both siblings."""
        m = dardel_topology()
        from repro.omp import bind_threads as bt, assign_cpus as ac, parse_places as pp

        places = pp(m, "threads")
        cpus = ac(places, bt(254, len(places), ProcBind.CLOSE))
        team = Team(m, tuple(cpus), bound=True)
        assert team.n_threads == 254
        assert team.active_cores == 127
        assert team.uses_smt
        assert team.socket_span == 2
