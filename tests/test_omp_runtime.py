"""Tests for the OpenMP runtime facade and run contexts."""

import numpy as np
import pytest

from repro.errors import BindingError, ConfigurationError
from repro.omp import OMPEnvironment, OpenMPRuntime
from repro.platform import dardel, toy, vera, get_platform, available_platforms
from repro.rng import RngFactory
from repro.types import ProcBind


class TestTeamResolution:
    def test_bound_team_st(self):
        rt = OpenMPRuntime(
            toy(), OMPEnvironment(num_threads=4, places="cores",
                                  proc_bind=ProcBind.CLOSE)
        )
        team = rt.resolve_bound_team()
        assert team.cpus == (0, 1, 2, 3)
        assert team.bound
        assert not team.uses_smt

    def test_bound_team_mt(self):
        rt = OpenMPRuntime(
            toy(), OMPEnvironment(num_threads=4, places="threads",
                                  proc_bind=ProcBind.CLOSE)
        )
        team = rt.resolve_bound_team()
        # toy: core c owns cpus (c, c+8); threads-places pack siblings
        assert team.cpus == (0, 8, 1, 9)
        assert team.uses_smt

    def test_dardel_254_mt(self):
        rt = OpenMPRuntime(
            dardel(), OMPEnvironment(num_threads=254, places="threads",
                                     proc_bind=ProcBind.CLOSE)
        )
        team = rt.resolve_bound_team()
        assert team.n_threads == 254
        assert team.active_cores == 127

    def test_unbound_team(self):
        rt = OpenMPRuntime(toy(), OMPEnvironment(num_threads=4))
        team, fork = rt.resolve_unbound_team(RngFactory(1).stream("p"))
        assert not team.bound
        assert team.n_threads == 4
        assert fork.cpus == team.cpus

    def test_bound_resolution_requires_binding(self):
        rt = OpenMPRuntime(toy(), OMPEnvironment(num_threads=4))
        with pytest.raises(BindingError):
            rt.resolve_bound_team()

    def test_too_many_threads(self):
        with pytest.raises(ConfigurationError):
            OpenMPRuntime(toy(), OMPEnvironment(num_threads=99))


class TestRunContext:
    def make_runtime(self):
        return OpenMPRuntime(
            toy(), OMPEnvironment(num_threads=4, places="cores",
                                  proc_bind=ProcBind.CLOSE)
        )

    def test_start_run_components(self):
        rt = self.make_runtime()
        ctx = rt.start_run(0, RngFactory(2), horizon=1.0)
        assert ctx.team.bound
        assert ctx.freq_plan.calibration_hz == rt.platform.freq_spec.calibration_hz
        assert ctx.t == 0.0
        assert ctx.machine is rt.machine

    def test_advance(self):
        ctx = self.make_runtime().start_run(0, RngFactory(2), 1.0)
        ctx.advance(0.5)
        assert ctx.t == 0.5
        with pytest.raises(ConfigurationError):
            ctx.advance(-0.1)

    def test_run_streams_scoped_by_run(self):
        rt = self.make_runtime()
        a = rt.start_run(0, RngFactory(2), 1.0).stream("x").random(4)
        b = rt.start_run(1, RngFactory(2), 1.0).stream("x").random(4)
        assert not np.array_equal(a, b)

    def test_same_run_same_noise(self):
        rt = self.make_runtime()
        n1 = rt.start_run(0, RngFactory(2), 1.0).noise
        n2 = rt.start_run(0, RngFactory(2), 1.0).noise
        assert n1 == n2

    def test_extra_busy_cpus_absorb_placement(self):
        rt = self.make_runtime()
        ctx = rt.start_run(0, RngFactory(2), 1.0, extra_busy_cpus=(15,))
        # logger cpu is busy: daemons must not land there preferentially
        assert 15 not in ctx.team.cpus

    def test_refork_unbound_changes_nothing_for_bound(self):
        rt = self.make_runtime()
        ctx = rt.start_run(0, RngFactory(2), 1.0)
        cpus_before = ctx.team.cpus
        ctx.refork_unbound(RngFactory(9).stream("z"))
        assert ctx.team.cpus == cpus_before

    def test_refork_unbound_resamples(self):
        rt = OpenMPRuntime(toy(), OMPEnvironment(num_threads=6))
        ctx = rt.start_run(0, RngFactory(2), 1.0)
        rng = RngFactory(3).stream("reforks")
        placements = set()
        for _ in range(10):
            ctx.refork_unbound(rng)
            placements.add(ctx.team.cpus)
        assert len(placements) > 1  # placement actually varies

    def test_bad_horizon(self):
        with pytest.raises(ConfigurationError):
            self.make_runtime().start_run(0, RngFactory(2), 0.0)

    def test_reforked_cpus_see_noise(self):
        """Regression: an unbound run's noise is realized machine-wide, so
        a reforked team never lands on noise-free CPUs (previously the
        realization only covered the *initial* placement)."""
        rt = OpenMPRuntime(toy(), OMPEnvironment(num_threads=6))
        ctx = rt.start_run(0, RngFactory(2), horizon=1.0)
        rng = RngFactory(3).stream("reforks")
        seen_cpus = set()
        for _ in range(20):
            ctx.refork_unbound(rng)
            seen_cpus.update(ctx.team.cpus)
            for cpu in ctx.team.cpus:
                # toy's tick source fires 250/s on every (machine-wide
                # busy) CPU: one simulated second cannot be silent
                assert not ctx.noise.stolen_on(cpu).is_empty(), (
                    f"reforked cpu {cpu} has no noise events"
                )
        assert len(seen_cpus) > 6  # reforks actually moved the team

    def test_unbound_noise_covers_whole_machine(self):
        rt = OpenMPRuntime(toy(), OMPEnvironment(num_threads=2))
        ctx = rt.start_run(0, RngFactory(2), horizon=1.0)
        machine = rt.machine
        assert all(
            not ctx.noise.stolen_on(cpu).is_empty()
            for cpu in range(machine.n_cpus)
        )

    def test_bound_noise_still_placement_scoped(self):
        """Bound teams keep the historical team-scoped realization."""
        rt = self.make_runtime()  # bound, cpus 0-3
        ctx = rt.start_run(0, RngFactory(2), horizon=1.0)
        # ticks fire on busy CPUs only; cpu 7 hosts no benchmark thread
        kinds_off_team = {
            e.kind for e in ctx.noise.events if e.cpu == 7
        }
        assert "tick" not in kinds_off_team


class TestPlatformPresets:
    def test_available(self):
        assert set(available_platforms()) == {"dardel", "toy", "vera"}

    def test_get_platform(self):
        assert get_platform("DARDEL").name == "dardel"
        with pytest.raises(ConfigurationError):
            get_platform("summit")

    def test_dardel_spec_sanity(self):
        p = dardel()
        assert p.machine.n_cpus == 256
        assert p.freq_spec.calibration_hz == pytest.approx(3.4e9)
        assert p.freq_spec.boost.all_core_floor == pytest.approx(2.8e9)

    def test_vera_spec_sanity(self):
        p = vera()
        assert p.machine.n_cpus == 32
        assert p.freq_spec.calibration_hz == pytest.approx(3.7e9)
        # Vera's dip process is the hot one (paper Sec 5.4)
        assert p.freq_spec.dips.cross_numa_rate > dardel().freq_spec.dips.cross_numa_rate

    def test_quiet_copy(self):
        p = dardel().quiet()
        assert not p.noise_profile.sources
        assert p.machine.n_cpus == 256

    def test_describe(self):
        assert "noise profile" in vera().describe()
