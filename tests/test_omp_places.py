"""Tests for OMP_PLACES parsing and place construction."""

import pytest

from repro.errors import PlacesSyntaxError
from repro.omp.places import Place, parse_places
from repro.topology import TopologyBuilder, dardel_topology, vera_topology


@pytest.fixture
def machine():
    # 2 sockets x 1 numa x 4 cores, SMT-2: cores c own cpus (c, c+8)
    return TopologyBuilder("toy").add_sockets(2, 1, 4, smt=2).build()


class TestAbstractNames:
    def test_threads_topological_order(self, machine):
        places = parse_places(machine, "threads")
        assert len(places) == 16
        # core-major: core0's both hw threads first
        assert places[0].cpus == (0,)
        assert places[1].cpus == (8,)
        assert places[2].cpus == (1,)
        assert places[3].cpus == (9,)

    def test_cores(self, machine):
        places = parse_places(machine, "cores")
        assert len(places) == 8
        assert places[0].cpus == (0, 8)
        assert places[7].cpus == (7, 15)

    def test_sockets(self, machine):
        places = parse_places(machine, "sockets")
        assert len(places) == 2
        assert set(places[0].cpus) == {0, 1, 2, 3, 8, 9, 10, 11}

    def test_numa_domains(self, machine):
        places = parse_places(machine, "numa_domains")
        assert len(places) == 2

    def test_count_limit(self, machine):
        places = parse_places(machine, "cores(3)")
        assert len(places) == 3
        assert places[2].cpus == (2, 10)

    def test_count_too_large(self, machine):
        with pytest.raises(PlacesSyntaxError):
            parse_places(machine, "cores(9)")

    def test_count_zero(self, machine):
        with pytest.raises(PlacesSyntaxError):
            parse_places(machine, "cores(0)")

    def test_unknown_name(self, machine):
        with pytest.raises(PlacesSyntaxError):
            parse_places(machine, "hyperthreads")

    def test_dardel_mt_packing_order(self):
        """places=threads + close must pack SMT siblings (MT config)."""
        m = dardel_topology()
        places = parse_places(m, "threads")
        assert places[0].cpus == (0,)
        assert places[1].cpus == (128,)  # sibling of cpu 0 comes second
        assert places[2].cpus == (1,)


class TestExplicitLists:
    def test_simple_sets(self, machine):
        places = parse_places(machine, "{0,1},{2,3}")
        assert [p.cpus for p in places] == [(0, 1), (2, 3)]

    def test_ranges(self, machine):
        places = parse_places(machine, "{0-3},{8-11}")
        assert places[0].cpus == (0, 1, 2, 3)
        assert places[1].cpus == (8, 9, 10, 11)

    def test_interval_notation(self, machine):
        places = parse_places(machine, "{0:4}")
        assert places[0].cpus == (0, 1, 2, 3)

    def test_interval_with_stride(self, machine):
        places = parse_places(machine, "{0:2:8}")
        assert places[0].cpus == (0, 8)  # a core's two hw threads

    def test_place_replication(self, machine):
        # 4 places of 2 cpus with stride 2: {0,1},{2,3},{4,5},{6,7}
        places = parse_places(machine, "{0,1}:4:2")
        assert [p.cpus for p in places] == [(0, 1), (2, 3), (4, 5), (6, 7)]

    def test_place_replication_default_stride(self, machine):
        places = parse_places(machine, "{0:2}:4")
        assert [p.cpus for p in places] == [(0, 1), (2, 3), (4, 5), (6, 7)]

    def test_vera_one_numa_vs_two(self):
        """The Figure 6 place configurations."""
        m = vera_topology()
        one = parse_places(m, "{0:16}")
        assert len(one) == 1 and m.numa_span(one[0].cpus) == 1
        two = parse_places(m, "{0:8},{16:8}")
        cpus = [c for p in two for c in p.cpus]
        assert m.numa_span(cpus) == 2

    def test_cpu_out_of_range(self, machine):
        with pytest.raises(PlacesSyntaxError):
            parse_places(machine, "{99}")

    def test_syntax_errors(self, machine):
        for bad in ("", "{}", "{0", "0}", "{0:0}", "{a}", "{0}:0", "{0-}", "{3-1}"):
            with pytest.raises(PlacesSyntaxError):
                parse_places(machine, bad)

    def test_unbalanced_braces(self, machine):
        with pytest.raises(PlacesSyntaxError):
            parse_places(machine, "{0,{1}}")


class TestPlace:
    def test_place_invariants(self):
        with pytest.raises(PlacesSyntaxError):
            Place(())
        with pytest.raises(PlacesSyntaxError):
            Place((1, 1))

    def test_contains_len(self):
        p = Place((3, 4))
        assert 3 in p and 5 not in p
        assert len(p) == 2
