"""Setup shim.

The metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works on environments whose setuptools
predates PEP 660 editable-wheel support (no ``wheel`` package available).
"""

from setuptools import setup

setup()
