"""Ablation: scheduler hazard model.

Figure 4's unpinned blow-up is modelled by OS wake hazards at region
forks.  Zeroing the stacking probability must collapse the unpinned
syncbench spread toward the pinned one, demonstrating the effect is
carried by the scheduler model (not by noise or frequency).
"""

import dataclasses

import numpy as np

from repro.harness import ExperimentConfig, Runner
from repro.platform import dardel
import repro.platform as platform_module


def _spread(platform_name, scale, seed):
    cfg = ExperimentConfig(
        platform=platform_name,
        benchmark="syncbench",
        num_threads=128,
        places=None,
        proc_bind="false",
        runs=scale["runs"],
        seed=seed,
        benchmark_params={"outer_reps": scale["reps"],
                          "constructs": ("reduction",)},
    )
    matrix = Runner(cfg).run().runs_matrix("reduction")
    return float(matrix.max() / matrix.min())


def test_sched_hazard_ablation(benchmark, scale, seed):
    def run_ablation():
        base = _spread("dardel", scale, seed)

        plat = dardel()
        no_hazard = dataclasses.replace(
            plat,
            sched_params=dataclasses.replace(
                plat.sched_params, stacking_prob_per_thread=0.0
            ),
        )
        platform_module._PLATFORMS["_abl_nohazard"] = lambda: no_hazard
        try:
            ablated = _spread("_abl_nohazard", scale, seed)
        finally:
            platform_module._PLATFORMS.pop("_abl_nohazard", None)
        return base, ablated

    base, ablated = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print(f"\nunpinned reduction@128 max/min: baseline {base:.1f}x, "
          f"no-hazard {ablated:.1f}x")
    assert base > 5 * ablated
