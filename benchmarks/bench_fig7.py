"""Figure 7: syncbench frequency variation on Vera (1 vs 2 NUMA domains).

Same check as Figure 6 for the synchronization micro-benchmark: the
cross-NUMA runs log frequency dips and show higher reduction times.
"""

import numpy as np

from conftest import run_once
from repro.harness import experiments

ONE = "one-numa (cpus 0-15)"
TWO = "two-numa (cpus 0-7,16-23)"


def test_figure7(benchmark, scale, seed):
    art = run_once(
        benchmark,
        experiments.figure7,
        runs=scale["runs"],
        outer_reps=scale["reps"],
        seed=seed,
    )
    print()
    print(art.render())

    one, two = art.data[ONE], art.data[TWO]
    assert two["dip_occupancy"] > max(one["dip_occupancy"], 1e-6)
    assert np.mean(two["run_means"]) > 1.1 * np.mean(one["run_means"])
