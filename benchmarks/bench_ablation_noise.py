"""Ablation: noise-profile components.

DESIGN.md attributes syncbench's within-run time inflation to OS noise
amplified by barrier semantics (every preemption anywhere lands on the
critical path).  This ablation runs the *same* configuration — identical
RNG streams, so jitter draws cancel — under three noise profiles and
verifies the mean repetition time responds monotonically:

    quiet  <  baseline (dardel)  <  10x-scaled daemons/IRQs
"""

import numpy as np

from repro.harness import ExperimentConfig, Runner
from repro.omp.runtime import OpenMPRuntime
from repro.osnoise import noisy_profile, quiet_profile


def _mean_with_profile(profile, scale, seed) -> float:
    """Mean barrier rep time with the platform's noise swapped to *profile*.

    The Runner is constructed for the stock platform and then its platform
    object is replaced, keeping the configuration (and thus every derived
    RNG stream) identical across variants.
    """
    cfg = ExperimentConfig(
        platform="dardel",
        benchmark="syncbench",
        num_threads=254,
        places="threads",
        proc_bind="close",
        runs=scale["runs"],
        seed=seed,
        benchmark_params={"outer_reps": scale["reps"], "constructs": ("barrier",)},
    )
    runner = Runner(cfg)
    if profile is not None:
        plat = runner.platform.with_noise(profile())
        runner.platform = plat
        runner.runtime = OpenMPRuntime(plat, runner.env)
    return float(runner.run().runs_matrix("barrier").mean())


def test_noise_ablation(benchmark, scale, seed):
    def run_ablation():
        return {
            "quiet": _mean_with_profile(quiet_profile, scale, seed),
            "baseline": _mean_with_profile(None, scale, seed),
            "noisy10x": _mean_with_profile(noisy_profile, scale, seed),
        }

    means = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print("\nbarrier@254 mean rep time (us): "
          + ", ".join(f"{k}={v * 1e6:.1f}" for k, v in means.items()))
    # noise adds time monotonically; with identical rng streams the
    # ordering is deterministic
    assert means["quiet"] < means["baseline"] < means["noisy10x"]
    # tick amplification at 254 threads is a visible fraction of the rep
    assert means["baseline"] > 1.05 * means["quiet"]
