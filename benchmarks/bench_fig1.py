"""Figure 1: syncbench (reduction) scaling on Dardel and Vera.

Checks the paper's shape: overhead grows with thread count, with a sharp
increase when the team first spans two sockets (>16 threads on Vera,
>64 cores on Dardel) and when SMT siblings are used (254 on Dardel).
"""

from conftest import run_once
from repro.harness import experiments


def test_figure1(benchmark, scale, seed):
    art = run_once(
        benchmark,
        experiments.figure1,
        runs=scale["runs"],
        outer_reps=scale["reps"],
        seed=seed,
        dardel_threads=(4, 32, 64, 128, 254),
        vera_threads=(2, 8, 16, 30),
    )
    print()
    print(art.render())

    vera = art.data["vera"]
    dardel = art.data["dardel"]

    # monotone growth with thread count
    assert vera["mean_us"] == sorted(vera["mean_us"])
    assert dardel["mean_us"] == sorted(dardel["mean_us"])

    # socket-crossing jump on Vera: 30 threads vs 16
    i16 = vera["threads"].index(16)
    i30 = vera["threads"].index(30)
    assert vera["mean_us"][i30] > 1.4 * vera["mean_us"][i16]

    # socket-crossing on Dardel: 128 cores vs 64
    i64 = dardel["threads"].index(64)
    i128 = dardel["threads"].index(128)
    assert dardel["mean_us"][i128] > 1.2 * dardel["mean_us"][i64]

    # SMT jump on Dardel: 254 (SMT siblings) vs 128 (one per core)
    i254 = dardel["threads"].index(254)
    assert dardel["mean_us"][i254] > 1.3 * dardel["mean_us"][i128]
