"""Figure 8: work-stealing taskbench, threads x grainsize x noise on Vera.

Checks the tasking subsystem's qualitative shape:

* imbalanced taskloops force stealing (nonzero steals everywhere the team
  has more than one thread);
* too-fine grainsize is overhead-bound at scale — per-task runtime costs
  plus a single-producer deque thieves rarely hit, so g=1 runs *slower*
  than a moderate grainsize and its failed-steal rate is high;
* more threads shorten the imbalanced makespan at moderate grainsize;
* ablating OS noise never makes a configuration slower (the quiet profile
  isolates the runtime's own scheduling stochasticity).
"""

from conftest import run_once
from repro.harness import experiments


def test_figure8(benchmark, scale, seed):
    art = run_once(
        benchmark,
        experiments.figure8,
        runs=scale["runs"],
        outer_reps=scale["reps"],
        seed=seed,
        threads=(2, 8, 16, 30),
        grainsizes=(1, 8, 64),
        noise_profiles=("default", "quiet"),
    )
    print()
    print(art.render())

    d = art.data

    # stealing happens in every imbalanced configuration
    for noise in ("default", "quiet"):
        for n in (2, 8, 16, 30):
            for g in (1, 8, 64):
                assert d[f"{noise}/n{n}/g{g}"]["mean_steals"] > 0

    # fine grain is overhead-bound at scale: slower than moderate grain,
    # with a failed-steal-dominated scheduler
    assert d["default/n30/g1"]["mean_us"] > d["default/n30/g8"]["mean_us"]
    assert d["default/n30/g1"]["failed_steal_rate"] > 0.5

    # parallelism still wins at moderate grain
    assert d["default/n30/g8"]["mean_us"] < d["default/n2/g8"]["mean_us"]

    # quieting the OS never slows a configuration down
    for n in (2, 8, 16, 30):
        for g in (1, 8, 64):
            assert (
                d[f"quiet/n{n}/g{g}"]["mean_us"]
                <= d[f"default/n{n}/g{g}"]["mean_us"] * 1.001
            )
