"""Engine events/sec microbenchmark (the simulation hot path).

Unlike the other ``bench_*`` files, which regenerate paper artifacts, this
one tracks the *simulator's own* throughput: every task body, steal probe
and backoff is one discrete event, so sweep wall-clock is events/sec times
event count.  The checks assert the properties the overhaul must keep:

* the engine sustains a sane floor on all three microbenchmark shapes
  (callbacks, generator processes, cancellation churn);
* the figure8-smoke probe executes a *deterministic* number of simulated
  events — wall time may vary, the simulation must not;
* cancellation compaction keeps the queue bounded under churn.

Run ``python benchmarks/bench_engine.py`` (or ``repro-omp bench``) to
print the numbers and write ``BENCH_engine.json``.
"""

from repro.sim.bench import bench_figure8_smoke, run_benchmarks
from repro.sim.engine import Engine


def test_engine_throughput(benchmark, scale):
    # NOT run through conftest.run_once: run_benchmarks is not an
    # experiment driver and takes no jobs=/cache= kwargs (the engine is
    # measured in-process by definition)
    report = benchmark.pedantic(
        run_benchmarks,
        kwargs={"quick": scale["reps"] < 100},
        rounds=1,
        iterations=1,
    )

    eng = report["engine"]
    # floors are deliberately loose (CI machines vary wildly); the point
    # is catching order-of-magnitude regressions, trajectories live in
    # the emitted BENCH_engine.json
    assert eng["callback_events_per_sec"] > 20_000
    assert eng["process_events_per_sec"] > 20_000
    assert eng["cancel_churn_events_per_sec"] > 10_000
    assert report["figure8_smoke"]["events"] > 0

    # fused rep-axis plane: bench_rep_fusion raises SimulationError if the
    # fused result diverged from the scalar engine, so reaching the
    # assertion at all means byte-identity held; the speedup floor is
    # loose here (quick shapes on shared CI), the >=2x acceptance number
    # lives in the full-run BENCH_engine.json trajectory
    fusion = report["rep_fusion"]
    assert fusion["scalar_runs_per_sec"] > 0
    assert fusion["fused_runs_per_sec"] > 0
    assert fusion["speedup"] > 1.0

    # the simulated event count is part of the determinism contract:
    # re-running the same smoke configuration (the report records its rep
    # count) must execute the exact same events, whatever the wall-clock
    again = bench_figure8_smoke(reps=report["figure8_smoke"]["reps"])
    assert again["events"] == report["figure8_smoke"]["events"]


def test_cancellation_compaction_bounds_queue():
    """Cancel-heavy churn must not accumulate dead entries in the heap."""
    eng = Engine()
    for i in range(10_000):
        eng.schedule_at(float(i) + 0.5, lambda: None).cancel()
    # lazy compaction keeps cancelled entries at most half the queue
    assert len(eng._queue) <= 2 * max(1, eng.pending)
    assert eng.pending == 0


if __name__ == "__main__":
    import json
    import sys

    from repro.sim.bench import write_report

    report = run_benchmarks(quick="--quick" in sys.argv)
    report = write_report(report, "BENCH_engine.json")
    print(json.dumps(report, indent=1))
    print("report written to BENCH_engine.json", file=sys.stderr)
