"""Figure 3: scalability of performance variability.

Checks the paper's shape: the worst normalized max across runs grows with
the thread count for syncbench on Dardel (noise amplification near
saturation), and the normalized min/max always bracket 1.
"""

from conftest import run_once
from repro.harness import experiments


def test_figure3(benchmark, scale, seed):
    art = run_once(
        benchmark,
        experiments.figure3,
        runs=scale["runs"],
        outer_reps=scale["reps"],
        num_times=scale["reps"],
        seed=seed,
        dardel_threads=(16, 128, 254),
        vera_threads=(8, 30),
    )
    print()
    print(art.render())

    # normalized min/max bracket 1 everywhere
    for panel in art.data.values():
        for entry in panel.values():
            assert min(entry["norm_min"]) <= 1.0 + 1e-9
            assert max(entry["norm_max"]) >= 1.0 - 1e-9

    # variability grows toward saturation for syncbench on Dardel
    sync = art.data["dardel/syncbench"]
    worst_16 = max(sync[16]["norm_max"])
    worst_254 = max(sync[254]["norm_max"])
    assert worst_254 > worst_16
