"""Study-driven sweep: barrier cost/variability vs team size and vendor.

Exercises the declarative sweep path end-to-end — a two-axis grid
(threads x runtime vendor) over syncbench's barrier on Vera, executed
through ``Study.run`` (the same ``Sweep`` backend as the drivers) — and
asserts the qualitative shape through the tidy-result accessors:

* barrier cost grows with the team size (pooled per-thread-count means
  are ordered);
* libomp's hyper barrier does not lose to libgomp's centralized
  gather-release at the widest team;
* the tidy record export carries one row per config x run x label.
"""

from conftest import run_once
from repro.harness import ExperimentConfig, Study

THREADS = (2, 8, 16, 30)
RUNTIMES = ("gnu", "llvm")


def _sweep(runs=3, outer_reps=15, seed=42, jobs=1, cache=None):
    study = (
        Study(
            ExperimentConfig(
                platform="vera",
                benchmark="syncbench",
                places="cores",
                proc_bind="close",
                runs=runs,
                seed=seed,
                benchmark_params={"outer_reps": outer_reps,
                                  "constructs": ("barrier",)},
            ),
            name="bench-study",
            description="barrier vs threads x vendor on Vera",
        )
        .grid(num_threads=list(THREADS), runtime=list(RUNTIMES))
    )
    return study.run(jobs=jobs, cache=cache)


def test_study_sweep(benchmark, scale, seed):
    res = run_once(
        benchmark, _sweep,
        runs=scale["runs"], outer_reps=scale["reps"], seed=seed,
    )

    # barrier *overhead* grows with the team size (pooled over both
    # vendors); the raw test time is held near the target time by EPCC's
    # inner-repetition doubling, so the overhead series is the one that
    # scales
    groups = res.group_summaries("num_threads", label="barrier.overhead")
    means = [groups[n].mean for n in THREADS]
    assert means == sorted(means)

    # the hyper barrier never loses to centralized gather-release at the
    # widest team
    widest = max(THREADS)
    gnu = res.get(num_threads=widest, runtime="gnu").runs_matrix(
        "barrier.overhead"
    )
    llvm = res.get(num_threads=widest, runtime="llvm").runs_matrix(
        "barrier.overhead"
    )
    assert llvm.mean() <= gnu.mean()

    # tidy export: one record per config x run x label
    records = res.to_records()
    labels = res.results[0].labels()
    assert len(records) == len(res) * scale["runs"] * len(labels)
