"""Figure 4: the effect of thread pinning on Dardel.

Checks the paper's shape: unpinned syncbench@128 spans orders of magnitude
(paper: >3 at full scale), unpinned BabelStream spreads several-fold
(paper: up to 6x), and pinning collapses both.
"""

from conftest import run_once
from repro.harness import experiments


def test_figure4(benchmark, scale, seed):
    art = run_once(
        benchmark,
        experiments.figure4,
        runs=scale["runs"],
        outer_reps=scale["reps"],
        num_times=scale["reps"],
        seed=seed,
    )
    print()
    print(art.render())

    sync = art.data["syncbench@128"]
    assert sync["unpinned"]["pooled_max_over_min"] > 50.0
    assert (
        sync["unpinned"]["pooled_max_over_min"]
        > 10 * sync["pinned"]["pooled_max_over_min"]
    )

    stream = art.data["babelstream@128"]
    assert (
        stream["unpinned"]["pooled_max_over_min"]
        > 1.5 * stream["pinned"]["pooled_max_over_min"]
    )

    # schedbench@16 shows the weakest pinning effect in the paper too
    # (Figure 4a vs 4d differ only in a few runs); require same ballpark
    sched = art.data["schedbench@16"]
    assert (
        sched["unpinned"]["pooled_max_over_min"]
        >= 0.95 * sched["pinned"]["pooled_max_over_min"]
    )
