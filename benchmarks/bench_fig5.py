"""Figure 5: the effect of SMT on Dardel (ST vs MT at equal thread counts).

Checks the paper's shape: the MT configuration (both hardware threads of
each core packed) shows markedly higher CV than ST for schedbench and for
the synchronization constructs the paper highlights.
"""

import numpy as np

from conftest import run_once
from repro.harness import experiments


def test_figure5(benchmark, scale, seed):
    art = run_once(
        benchmark,
        experiments.figure5,
        runs=scale["runs"],
        outer_reps=scale["reps"],
        num_times=scale["reps"],
        seed=seed,
    )
    print()
    print(art.render())

    sched = art.data["schedbench@128"]
    assert np.mean(sched["MT"]["run_cv"]) > 2 * np.mean(sched["ST"]["run_cv"])

    sync = art.data["syncbench@32"]
    for construct in ("for", "single", "ordered", "reduction"):
        st_cv = np.mean(sync["ST"][construct])
        mt_cv = np.mean(sync["MT"][construct])
        assert mt_cv > st_cv, construct
