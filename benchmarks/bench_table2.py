"""Table 2: schedbench dynamic_1 run-to-run execution times.

Regenerates the four columns (Dardel@{4,254}, Vera@{4,30}) and checks the
paper's quantitative shape: the column ordering and the ~124/154/136.5/165
ms magnitudes (the simulator is calibrated to land within a few percent).
"""

import numpy as np
import pytest

from conftest import run_once
from repro.harness import experiments
from repro.units import ms


def test_table2(benchmark, scale, seed):
    art = run_once(
        benchmark,
        experiments.table2,
        runs=scale["runs"],
        outer_reps=scale["reps"],
        seed=seed,
    )
    print()
    print(art.render())
    means = art.data["run_means"]

    # magnitudes; the run *minimum* is the clean-run value (the paper's
    # Table 2 also contains one +9.5% derated run, its run #9)
    assert np.median(means["dardel@4"]) == pytest.approx(ms(124.0), rel=0.02)
    assert np.median(means["vera@4"]) == pytest.approx(ms(136.5), rel=0.02)
    assert np.min(means["vera@30"]) == pytest.approx(ms(164.7), rel=0.03)
    assert ms(150) < np.min(means["dardel@254"]) < ms(162)

    # column ordering matches the paper (clean-run values)
    assert (
        np.min(means["dardel@4"])
        < np.min(means["vera@4"])
        < np.min(means["dardel@254"])
        < np.min(means["vera@30"])
    )

    # derated runs, when they occur, sit ~7-12% above the clean level —
    # the shape of the paper's run #9 (154.2 -> 168.8 ms)
    col = means["dardel@254"]
    clean = np.min(col)
    for value in col:
        assert value < 1.15 * clean
