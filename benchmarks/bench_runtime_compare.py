"""Runtime compare: vendor (libgomp/libomp) x wait-policy x threads.

Checks the vendor subsystem's qualitative shape:

* libomp's hyper barrier needs fewer serialized transfer rounds than
  libgomp's centralized gather-release, so its barrier overhead is
  measurably cheaper at the widest teams (>= 64 threads on Dardel);
* the distributed barrier also spreads line contention, so llvm's barrier
  CV runs below gnu's at the same width;
* passive waiting pays the scheduler wakeup path on every fork and
  barrier release: uniformly slower than active spinning for these
  fork/barrier-bound microbenchmarks, on every platform and team size.
"""

from conftest import run_once
from repro.harness import experiments

DARDEL_THREADS = (16, 64, 128)
VERA_THREADS = (8, 16, 30)


def test_runtime_compare(benchmark, scale, seed):
    art = run_once(
        benchmark,
        experiments.runtime_compare,
        runs=scale["runs"],
        outer_reps=scale["reps"],
        seed=seed,
        dardel_threads=DARDEL_THREADS,
        vera_threads=VERA_THREADS,
        runtimes=("gnu", "llvm"),
        wait_policies=("active", "passive"),
    )
    print()
    print(art.render())

    d = art.data

    # the vendors' barrier algorithms diverge with the team size: at >= 64
    # threads the hyper barrier is measurably cheaper and steadier
    for n in (64, 128):
        gnu = d[f"dardel/gnu/active/n{n}"]
        llvm = d[f"dardel/llvm/active/n{n}"]
        assert llvm["barrier_us"] < 0.95 * gnu["barrier_us"]
        assert llvm["barrier_cv"] < gnu["barrier_cv"]

    # the gap widens with the team (rounds saved grow with log n)
    gap = {
        n: d[f"dardel/gnu/active/n{n}"]["barrier_us"]
        - d[f"dardel/llvm/active/n{n}"]["barrier_us"]
        for n in DARDEL_THREADS
    }
    assert gap[128] > gap[16]

    # passive waiting pays the wakeup path on every fork/barrier: slower
    # than active spinning in every configuration, for both vendors
    for platform, threads in (("dardel", DARDEL_THREADS), ("vera", VERA_THREADS)):
        for rt in ("gnu", "llvm"):
            for n in threads:
                active = d[f"{platform}/{rt}/active/n{n}"]
                passive = d[f"{platform}/{rt}/passive/n{n}"]
                assert passive["barrier_us"] > 2 * active["barrier_us"]
                assert passive["parallel_us"] > active["parallel_us"]
