"""Ablation: the dynamic-schedule central-queue contention model.

Table 2's dynamic_1 overheads come from per-chunk dequeue latency that
grows with the team size.  This ablation sweeps the chunk size: larger
chunks amortize the dequeue cost, so dynamic_64 must approach the static
schedule while dynamic_1 stays measurably slower — the crossover the
model is designed to reproduce.
"""

import numpy as np

from repro.harness import ExperimentConfig, Runner


def _mean_time(schedule, chunk, scale, seed):
    cfg = ExperimentConfig(
        platform="vera",
        benchmark="schedbench",
        num_threads=30,
        places="cores",
        proc_bind="close",
        schedule=schedule,
        schedule_chunk=chunk,
        runs=max(2, scale["runs"] - 1),
        seed=seed,
        benchmark_params={"outer_reps": max(5, scale["reps"] // 3)},
    )
    label = f"{schedule}_{chunk}" if chunk is not None else schedule
    return float(Runner(cfg).run().runs_matrix(label).mean())


def test_queue_contention_ablation(benchmark, scale, seed):
    def run_ablation():
        return {
            "static": _mean_time("static", None, scale, seed),
            "dynamic_1": _mean_time("dynamic", 1, scale, seed),
            "dynamic_8": _mean_time("dynamic", 8, scale, seed),
            "dynamic_64": _mean_time("dynamic", 64, scale, seed),
        }

    times = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print("\nschedbench@vera/30thr mean times (s):")
    for k, v in times.items():
        print(f"  {k:>10}: {v * 1e3:9.2f} ms")

    # chunk=1 pays the most queue overhead (dynamic_8 vs dynamic_64 differ
    # by less than the run jitter, so only the strong orderings are asserted)
    assert times["dynamic_1"] > times["dynamic_8"]
    assert times["dynamic_1"] > times["dynamic_64"]
    # large chunks approach static (within 1.5%)
    assert times["dynamic_64"] < times["static"] * 1.015
    # chunk=1 overhead is clearly visible (paper: ~2% at 30 threads)
    assert times["dynamic_1"] > times["static"] * 1.005
