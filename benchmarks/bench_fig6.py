"""Figure 6: schedbench frequency variation on Vera (1 vs 2 NUMA domains).

Checks the paper's shape: the cross-NUMA configuration logs frequent
frequency dips (the "brown region") and exhibits higher execution-time
variability and higher mean time than the single-domain configuration.
"""

import numpy as np

from conftest import run_once
from repro.harness import experiments

ONE = "one-numa (cpus 0-15)"
TWO = "two-numa (cpus 0-7,16-23)"


def test_figure6(benchmark, scale, seed):
    art = run_once(
        benchmark,
        experiments.figure6,
        runs=scale["runs"],
        outer_reps=scale["reps"],
        seed=seed,
    )
    print()
    print(art.render())

    one, two = art.data[ONE], art.data[TWO]
    assert two["dip_occupancy"] > 5 * max(one["dip_occupancy"], 1e-6)
    assert two["pooled_cv"] > one["pooled_cv"]
    assert np.mean(two["run_means"]) > np.mean(one["run_means"])
    assert two["freq_min_ghz"] < one["freq_min_ghz"] + 1e-9
