"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the paper through the
experiment drivers in :mod:`repro.harness.experiments` and asserts the
paper's qualitative shape.  By default the drivers run at a reduced scale
so the whole harness finishes in a few minutes; set ``REPRO_BENCH_SCALE=full``
to run at the paper's scale (10 runs x 100 repetitions — expect tens of
minutes).

The drivers are invoked through the parallel execution path
(:mod:`repro.harness.parallel`), which is bit-identical to serial
execution for any job count:

* ``REPRO_BENCH_JOBS=N`` fans each driver's runs over N worker processes
  (``0`` = all cores; unset/1 = serial);
* ``REPRO_BENCH_CACHE_DIR=DIR`` caches finished results on disk so a
  repeated harness invocation replays them instead of re-simulating.
"""

import os

import pytest


def _full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"


def _execution_kwargs() -> dict:
    """jobs/cache driver kwargs from the environment (see module docstring)."""
    kwargs: dict = {}
    jobs = os.environ.get("REPRO_BENCH_JOBS", "")
    if jobs:
        kwargs["jobs"] = int(jobs)
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR", "")
    if cache_dir:
        from repro.harness.cache import ResultCache

        kwargs["cache"] = ResultCache(cache_dir)
    return kwargs


@pytest.fixture(scope="session")
def scale():
    """(runs, outer_reps/num_times) for the current scale."""
    if _full_scale():
        return {"runs": 10, "reps": 100}
    return {"runs": 3, "reps": 15}


@pytest.fixture(scope="session")
def seed():
    return 42


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark.

    Injects the environment-selected parallelism/caching kwargs; explicit
    kwargs from the bench file win.
    """
    kwargs = {**_execution_kwargs(), **kwargs}
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
