"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the paper through the
experiment drivers in :mod:`repro.harness.experiments` and asserts the
paper's qualitative shape.  By default the drivers run at a reduced scale
so the whole harness finishes in a few minutes; set ``REPRO_BENCH_SCALE=full``
to run at the paper's scale (10 runs x 100 repetitions — expect tens of
minutes).
"""

import os

import pytest


def _full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"


@pytest.fixture(scope="session")
def scale():
    """(runs, outer_reps/num_times) for the current scale."""
    if _full_scale():
        return {"runs": 10, "reps": 100}
    return {"runs": 3, "reps": 15}


@pytest.fixture(scope="session")
def seed():
    return 42


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
