"""Figure 2: BabelStream execution time vs thread count.

Checks the paper's shape: kernel time falls as threads are added on both
platforms (bandwidth ramps until the memory controllers saturate), and
3-array kernels (add/triad) stay slower than 2-array kernels (copy/mul).
"""

from conftest import run_once
from repro.harness import experiments


def test_figure2(benchmark, scale, seed):
    art = run_once(
        benchmark,
        experiments.figure2,
        runs=max(2, scale["runs"] - 1),
        num_times=scale["reps"],
        seed=seed,
        dardel_threads=(2, 16, 64, 128),
        vera_threads=(2, 8, 30),
    )
    print()
    print(art.render())

    for platform in ("dardel", "vera"):
        series = art.data[platform]["mean_ms"]
        # time falls from the first to the last thread count for every kernel
        for kernel, values in series.items():
            assert values[-1] < values[0], (platform, kernel, values)
        # 3-array kernels slower than 2-array kernels at the largest count
        assert series["triad"][-1] > series["copy"][-1]
        assert series["add"][-1] > series["mul"][-1]
