"""Simulated Linux CPUFreq sysfs interface.

The paper's frequency logger is "a background Python script ... [that reads]
the frequencies of all cores through the sysfs interface of the Linux
CPUFreq".  :class:`CpuFreqSysfs` reproduces that interface on top of a
:class:`~repro.freq.dvfs.FrequencyPlan`: reads are addressed by the real
sysfs paths and return the strings Linux would return (frequencies in kHz).
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import FrequencyError
from repro.freq.dvfs import FrequencyPlan, FrequencySpec
from repro.freq.governor import available_governors

_PATH_RE = re.compile(
    r"^/sys/devices/system/cpu/cpu(?P<cpu>\d+)/cpufreq/(?P<attr>[a-z_]+)$"
)


class CpuFreqSysfs:
    """Read-only view of ``/sys/devices/system/cpu/cpu*/cpufreq``.

    Reads are *time-indexed*: the caller supplies the simulated time of the
    read, exactly the way the frequency logger samples the machine.
    """

    def __init__(self, spec: FrequencySpec, plan: FrequencyPlan, governor_name: str):
        self.spec = spec
        self.plan = plan
        self.governor_name = governor_name

    # -- path-level interface ----------------------------------------------

    def read(self, path: str, t: float) -> str:
        """Read a sysfs attribute at simulated time *t*.

        Supported attributes: ``scaling_cur_freq``, ``scaling_min_freq``,
        ``scaling_max_freq``, ``cpuinfo_min_freq``, ``cpuinfo_max_freq``,
        ``scaling_governor``, ``scaling_available_governors``.
        """
        m = _PATH_RE.match(path)
        if not m:
            raise FrequencyError(f"unrecognized cpufreq path {path!r}")
        cpu = int(m.group("cpu"))
        if cpu >= self.plan.machine.n_cpus:
            raise FrequencyError(f"no cpu{cpu} on {self.plan.machine.name}")
        attr = m.group("attr")
        if attr == "scaling_cur_freq":
            return str(self._khz(self.plan.freq_at(cpu, t)))
        if attr in ("scaling_min_freq", "cpuinfo_min_freq"):
            return str(self._khz(self.spec.min_hz))
        if attr in ("scaling_max_freq", "cpuinfo_max_freq"):
            return str(self._khz(self.spec.boost.single_core_boost))
        if attr == "scaling_governor":
            return self.governor_name
        if attr == "scaling_available_governors":
            return " ".join(available_governors())
        raise FrequencyError(f"unsupported cpufreq attribute {attr!r}")

    @staticmethod
    def _khz(hz: float) -> int:
        return int(round(hz / 1e3))

    def path_for(self, cpu: int, attr: str = "scaling_cur_freq") -> str:
        """The sysfs path the real logger would open for *cpu*."""
        return f"/sys/devices/system/cpu/cpu{cpu}/cpufreq/{attr}"

    # -- bulk interface (what the logger actually uses) -----------------------

    def snapshot_khz(self, t: float) -> np.ndarray:
        """``scaling_cur_freq`` of every CPU at time *t*, in kHz."""
        return np.round(self.plan.snapshot(t) / 1e3).astype(np.int64)
