"""CPUfreq governor policies.

A governor maps the DVFS envelope (min frequency, boost-table limit) and the
core's utilization to a *target* frequency.  Only the steady-state decision
is modelled — ramp latencies are folded into the dip process — because the
paper's benchmarks run long enough that governors sit at their fixed point.

The governors mirror the Linux ones the paper's clusters expose:

* ``performance`` — always the boost-table limit (Vera's default).
* ``powersave`` — always the minimum.
* ``ondemand``   — limit when utilization exceeds a threshold, else scales
  proportionally with a floor at min.
* ``schedutil``  — the 1.25 * util * f_max curve used by the kernel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import FrequencyError


class Governor(ABC):
    """Target-frequency policy."""

    #: sysfs name, e.g. shown in ``scaling_governor``.
    name: str = "abstract"

    @abstractmethod
    def target_freq(self, min_hz: float, limit_hz: float, utilization: float) -> float:
        """Return the target frequency in Hz.

        Parameters
        ----------
        min_hz:
            Lowest p-state of the core.
        limit_hz:
            Current boost-table limit (depends on active core count).
        utilization:
            Fraction of the last window the core was busy, in ``[0, 1]``.
        """

    def _check(self, min_hz: float, limit_hz: float, utilization: float) -> None:
        if min_hz <= 0 or limit_hz <= 0:
            raise FrequencyError("frequencies must be positive")
        if limit_hz < min_hz:
            raise FrequencyError(f"limit {limit_hz} below min {min_hz}")
        if not 0.0 <= utilization <= 1.0:
            raise FrequencyError(f"utilization {utilization} outside [0, 1]")


class PerformanceGovernor(Governor):
    """Pin every core at the boost limit."""

    name = "performance"

    def target_freq(self, min_hz: float, limit_hz: float, utilization: float) -> float:
        self._check(min_hz, limit_hz, utilization)
        return limit_hz


class PowersaveGovernor(Governor):
    """Pin every core at the minimum p-state."""

    name = "powersave"

    def target_freq(self, min_hz: float, limit_hz: float, utilization: float) -> float:
        self._check(min_hz, limit_hz, utilization)
        return min_hz


class OndemandGovernor(Governor):
    """Classic ondemand: jump to the limit above the up-threshold."""

    name = "ondemand"

    def __init__(self, up_threshold: float = 0.80):
        if not 0.0 < up_threshold <= 1.0:
            raise FrequencyError(f"up_threshold {up_threshold} outside (0, 1]")
        self.up_threshold = up_threshold

    def target_freq(self, min_hz: float, limit_hz: float, utilization: float) -> float:
        self._check(min_hz, limit_hz, utilization)
        if utilization >= self.up_threshold:
            return limit_hz
        scaled = min_hz + (limit_hz - min_hz) * (utilization / self.up_threshold)
        return max(min_hz, scaled)


class SchedutilGovernor(Governor):
    """Kernel schedutil curve: ``f = 1.25 * util * f_limit`` clamped."""

    name = "schedutil"

    def __init__(self, margin: float = 1.25):
        if margin < 1.0:
            raise FrequencyError(f"margin {margin} must be >= 1")
        self.margin = margin

    def target_freq(self, min_hz: float, limit_hz: float, utilization: float) -> float:
        self._check(min_hz, limit_hz, utilization)
        return min(limit_hz, max(min_hz, self.margin * utilization * limit_hz))


_GOVERNORS = {
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "ondemand": OndemandGovernor,
    "schedutil": SchedutilGovernor,
}


def make_governor(name: str) -> Governor:
    """Instantiate a governor by sysfs name.

    >>> make_governor("performance").name
    'performance'
    """
    try:
        cls = _GOVERNORS[name]
    except KeyError:
        raise FrequencyError(
            f"unknown governor {name!r}; choose from {sorted(_GOVERNORS)}"
        ) from None
    return cls()


def available_governors() -> tuple[str, ...]:
    """Names accepted by :func:`make_governor` (sysfs ``scaling_available_governors``)."""
    return tuple(sorted(_GOVERNORS))
