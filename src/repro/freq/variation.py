"""Stochastic frequency-dip process.

The paper observes (Section 5.4, Figures 6-7) that on Vera, runs whose
threads span two NUMA domains exhibit *frequent transient frequency drops*
— visible as a wide band in the logger traces — that correlate with higher
execution-time variability, while single-domain runs and Dardel stay
steady.  The physical causes (uncore power management, remote-traffic
throttling, AVX-like license drops) are not observable from user space;
what the paper characterizes is the resulting marked point process on the
frequency signal.  :class:`DipProcess` models exactly that observable:

* dips arrive as a Poisson process whose rate is ``base_rate`` for
  single-domain teams plus ``cross_numa_rate`` for teams spanning more
  than one domain,
* each dip lasts a log-normal duration,
* each dip multiplies the core's frequency by a uniform depth factor,
* a dip affects a whole socket (package-level budget) — cores of the
  socket dip together, which is what Vera's traces show.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FrequencyError


@dataclass(frozen=True, slots=True)
class FrequencyDip:
    """One transient frequency reduction on one socket."""

    start: float
    duration: float
    depth: float  # multiplier in (0, 1]: freq during dip = depth * base
    socket_id: int

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise FrequencyError(f"negative dip duration {self.duration}")
        if not 0.0 < self.depth <= 1.0:
            raise FrequencyError(f"dip depth {self.depth} outside (0, 1]")


@dataclass(frozen=True)
class DerateProcess:
    """Run-scale boost-limit derate episodes.

    Occasionally a socket sustains a lower boost limit for a whole run —
    package thermal/power state, not transient dips.  The paper's Table 2
    shows exactly one such run (run #9 on Dardel at 254 threads, ~9.5%
    slower across all 100 repetitions); episodes are more likely the closer
    the node runs to full utilization, so low-thread-count runs almost never
    see them.

    ``probability(load)`` = ``prob_at_full_load * load**load_exponent`` where
    *load* is the fraction of the node's cores that are active.
    """

    prob_at_full_load: float = 0.0
    depth_low: float = 0.88
    depth_high: float = 0.94
    load_exponent: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob_at_full_load <= 1.0:
            raise FrequencyError("derate probability outside [0, 1]")
        if not 0.0 < self.depth_low <= self.depth_high <= 1.0:
            raise FrequencyError("need 0 < depth_low <= depth_high <= 1")
        if self.load_exponent < 0:
            raise FrequencyError("negative load exponent")

    def probability(self, load: float) -> float:
        """Episode probability for a run at core-load fraction *load*."""
        if not 0.0 <= load <= 1.0:
            raise FrequencyError(f"load {load} outside [0, 1]")
        return self.prob_at_full_load * load**self.load_exponent

    def sample_factor(self, load: float, rng: np.random.Generator) -> float:
        """Multiplier for a socket's boost limit this run (1.0 = no episode)."""
        if rng.random() < self.probability(load):
            return float(rng.uniform(self.depth_low, self.depth_high))
        return 1.0


@dataclass(frozen=True)
class DipProcess:
    """Parameters of the dip point process (rates are per second per socket).

    The cross-NUMA component is modulated by *occupancy* (fraction of the
    node's cores that are active): sparse teams spread over several domains
    leave the uncore half-idle, and package power management excursions are
    most frequent exactly then.  This matches the paper's observations —
    frequent dips for 16 threads split across Vera's two sockets
    (Figures 6d/7d), yet tight times for 30 threads filling the node
    (Table 2).  ``occupancy=None`` disables the modulation.
    """

    base_rate: float = 0.0
    cross_numa_rate: float = 0.0
    duration_median: float = 0.015  # seconds
    duration_sigma: float = 0.6  # log-normal shape
    depth_low: float = 0.70
    depth_high: float = 0.92
    occupancy_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.base_rate < 0 or self.cross_numa_rate < 0:
            raise FrequencyError("dip rates must be non-negative")
        if self.duration_median <= 0 or self.duration_sigma < 0:
            raise FrequencyError("bad dip duration parameters")
        if not 0.0 < self.depth_low <= self.depth_high <= 1.0:
            raise FrequencyError("need 0 < depth_low <= depth_high <= 1")
        if self.occupancy_exponent < 0:
            raise FrequencyError("negative occupancy exponent")

    def rate(self, cross_numa: bool, occupancy: float | None = None) -> float:
        """Arrival rate for a team that does / does not span NUMA domains."""
        cross = self.cross_numa_rate if cross_numa else 0.0
        if occupancy is not None:
            if not 0.0 <= occupancy <= 1.0:
                raise FrequencyError(f"occupancy {occupancy} outside [0, 1]")
            cross *= (1.0 - occupancy) ** self.occupancy_exponent
        return self.base_rate + cross

    def sample(
        self,
        t_start: float,
        t_end: float,
        socket_ids: tuple[int, ...],
        cross_numa: bool,
        rng: np.random.Generator,
        occupancy: float | None = None,
    ) -> list[FrequencyDip]:
        """Draw all dips in ``[t_start, t_end)`` for the given sockets."""
        if t_end < t_start:
            raise FrequencyError(f"window end {t_end} before start {t_start}")
        lam = self.rate(cross_numa, occupancy)
        horizon = t_end - t_start
        dips: list[FrequencyDip] = []
        if lam <= 0 or horizon <= 0:
            return dips
        mu = np.log(self.duration_median)
        for socket_id in socket_ids:
            count = int(rng.poisson(lam * horizon))
            if count == 0:
                continue
            starts = t_start + rng.random(count) * horizon
            durations = rng.lognormal(mean=mu, sigma=self.duration_sigma, size=count)
            depths = rng.uniform(self.depth_low, self.depth_high, size=count)
            for s, d, p in zip(np.sort(starts), durations, depths):
                dips.append(
                    FrequencyDip(
                        start=float(s),
                        duration=float(d),
                        depth=float(p),
                        socket_id=socket_id,
                    )
                )
        return dips
