"""DVFS model: per-core frequency traces for a simulation window.

:class:`FrequencyModel` combines the platform's :class:`FrequencySpec`
(p-state envelope, boost table, jitter, dip process) with a governor and
the set of active CPUs to produce a :class:`FrequencyPlan` — one
:class:`~repro.sim.trace.PiecewiseConstant` trace per logical CPU.

The plan answers the two questions the rest of the simulator asks:

* *execution*: how long does cpu *c* need to retire *W* cycles from time
  *t*  (:meth:`FrequencyPlan.duration_for_cycles`), and
* *observation*: what frequency would the sysfs logger read at time *t*
  (:meth:`FrequencyPlan.freq_at`, :meth:`FrequencyPlan.snapshot`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import FrequencyError
from repro.freq.governor import Governor
from repro.freq.power import BoostTable
from repro.freq.variation import DerateProcess, DipProcess, FrequencyDip
from repro.sim.trace import PiecewiseConstant
from repro.topology.hwthread import Machine


@dataclass(frozen=True)
class FrequencySpec:
    """Static frequency behaviour of a platform.

    Attributes
    ----------
    min_hz / base_hz:
        Lowest p-state and nominal (guaranteed) frequency.
    boost:
        Turbo license table (active cores -> sustainable frequency).
    pstate_step_hz:
        Frequency quantization step (traces snap to this grid, like real
        p-states; Intel uses 100 MHz bins).
    jitter_amplitude:
        Relative half-width of benign per-core frequency wobble (e.g. 0.004
        = ±0.4%); models measurement/board-level variation.
    jitter_rate:
        Poisson rate (per second per core) of wobble re-draws.
    dips:
        Transient dip process (see :mod:`repro.freq.variation`).
    """

    min_hz: float
    base_hz: float
    boost: BoostTable
    pstate_step_hz: float = 25e6
    jitter_amplitude: float = 0.0
    jitter_rate: float = 0.0
    dips: DipProcess = field(default_factory=DipProcess)
    derate: DerateProcess = field(default_factory=DerateProcess)

    def __post_init__(self) -> None:
        if not 0 < self.min_hz <= self.base_hz:
            raise FrequencyError("need 0 < min_hz <= base_hz")
        if self.base_hz > self.boost.single_core_boost + 1e-6:
            raise FrequencyError("base frequency above single-core boost")
        if self.pstate_step_hz <= 0:
            raise FrequencyError("pstate step must be positive")
        if self.jitter_amplitude < 0 or self.jitter_rate < 0:
            raise FrequencyError("jitter parameters must be non-negative")

    @property
    def calibration_hz(self) -> float:
        """Frequency of a lone busy core — what delay-loop calibration sees."""
        return self.boost.single_core_boost


class FrequencyPlan:
    """Per-CPU frequency traces over one run window."""

    def __init__(
        self,
        machine: Machine,
        traces: Mapping[int, PiecewiseConstant],
        window_start: float,
        calibration_hz: float,
        dips: Sequence[FrequencyDip] = (),
    ):
        if set(traces) != set(range(machine.n_cpus)):
            raise FrequencyError("plan must cover every cpu exactly once")
        self.machine = machine
        self.traces = dict(traces)
        self.window_start = float(window_start)
        self.calibration_hz = float(calibration_hz)
        self.dips = tuple(dips)

    def trace(self, cpu: int) -> PiecewiseConstant:
        return self.traces[cpu]

    def freq_at(self, cpu: int, t: float) -> float:
        return float(self.traces[cpu].value_at(t))

    def duration_for_cycles(self, cpu: int, start: float, cycles: float) -> float:
        """Seconds needed for *cpu* to retire *cycles* starting at *start*."""
        if cycles < 0:
            raise FrequencyError(f"negative cycle count {cycles}")
        if cycles == 0:
            return 0.0
        end = self.traces[cpu].invert_integral(start, cycles)
        return end - start

    def cycles_in(self, cpu: int, start: float, end: float) -> float:
        """Cycles retired by *cpu* over ``[start, end]``."""
        return self.traces[cpu].integrate(start, end)

    def snapshot(self, t: float) -> np.ndarray:
        """Frequencies (Hz) of all CPUs at time *t*, indexed by cpu id."""
        return np.asarray(
            [self.traces[c].value_at(t) for c in range(self.machine.n_cpus)]
        )

    def mean_freq(self, cpu: int, start: float, end: float) -> float:
        return self.traces[cpu].mean(start, end)


class FrequencyPlanBatch:
    """Padded rep-axis view over ``R`` runs' plans for a fixed cpu list.

    Rows are ``(run, cpu)`` pairs in run-major order.  Each row's trace is
    padded to the widest trace with ``+inf`` breakpoints, so the padded
    segment lookup ``sum(times <= t) - 1`` lands on exactly the segment
    the scalar ``bisect_right`` fast path (:meth:`PiecewiseConstant._seg_idx`)
    would pick.  The batched queries keep :class:`FrequencyPlan`'s scalar
    methods as the byte-identity reference: :meth:`duration_for_cycles_fused`
    resolves only queries answered within their first segment (the common
    case for collapsed traces) and reports the rest for scalar fallback.
    """

    __slots__ = ("plans", "cpus", "times", "values")

    def __init__(self, plans: Sequence[FrequencyPlan], cpus: Sequence[int]):
        self.plans = tuple(plans)
        self.cpus = tuple(int(c) for c in cpus)
        traces = [p.traces[c] for p in self.plans for c in self.cpus]
        width = max(len(t) for t in traces)
        # one extra +inf column: segment ends read at idx + 1 stay in bounds
        times = np.full((len(traces), width + 1), np.inf)
        values = np.ones((len(traces), width))
        for k, tr in enumerate(traces):
            times[k, : len(tr)] = tr.times
            values[k, : len(tr)] = tr.values
        self.times = times
        self.values = values

    @property
    def calibration_hz(self) -> float:
        return self.plans[0].calibration_hz

    def _segment_index(self, flat_t: np.ndarray) -> np.ndarray:
        idx = np.sum(self.times[:, :-1] <= flat_t[:, None], axis=1) - 1
        if np.any(idx < 0):
            raise FrequencyError(
                f"batched query before trace start: min t = {np.min(flat_t)}"
            )
        return idx

    def freq_at_fused(self, t: np.ndarray) -> np.ndarray:
        """``plans[r].freq_at(cpus[i], t[r, i])`` for every row, bit-identical."""
        t = np.asarray(t, dtype=np.float64)
        flat = t.reshape(-1)
        idx = self._segment_index(flat)
        return self.values[np.arange(flat.size), idx].reshape(t.shape)

    def duration_for_cycles_fused(
        self, start: np.ndarray, cycles: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`FrequencyPlan.duration_for_cycles` first-segment pass.

        Returns ``(durations, resolved)``; entries with ``resolved`` False
        need more than one trace segment and must be re-answered by the
        scalar reference.  Resolved entries reproduce the scalar arithmetic
        exactly: ``end = start + cycles / v`` then ``end - start``.
        """
        start = np.asarray(start, dtype=np.float64)
        cycles = np.asarray(cycles, dtype=np.float64)
        flat_s = start.reshape(-1)
        flat_c = cycles.reshape(-1)
        rows = np.arange(flat_s.size)
        idx = self._segment_index(flat_s)
        v = self.values[rows, idx]
        seg_end = self.times[rows, idx + 1]
        capacity = v * (seg_end - flat_s)
        resolved = flat_c <= capacity
        end = flat_s + flat_c / v
        durations = end - flat_s
        return durations.reshape(start.shape), resolved.reshape(start.shape)

    def duration_for_cycles_scalar(
        self, run: int, col: int, start: float, cycles: float
    ) -> float:
        """Scalar-reference fallback for one unresolved ``(run, cpu)`` entry."""
        return self.plans[run].duration_for_cycles(self.cpus[col], start, cycles)


class FrequencyModel:
    """Builds :class:`FrequencyPlan` instances for run windows."""

    def __init__(self, machine: Machine, spec: FrequencySpec):
        self.machine = machine
        self.spec = spec

    # -- helpers -----------------------------------------------------------

    def _quantize(self, hz: np.ndarray | float) -> np.ndarray | float:
        step = self.spec.pstate_step_hz
        return np.maximum(self.spec.min_hz, np.round(np.asarray(hz) / step) * step)

    def steady_target(
        self, governor: Governor, active_cores: int, busy: bool
    ) -> float:
        """Steady-state target of one core under *governor*."""
        limit = self.spec.boost.freq_for(max(1, active_cores))
        utilization = 1.0 if busy else 0.0
        return float(
            self._quantize(governor.target_freq(self.spec.min_hz, limit, utilization))
        )

    # -- plan construction ---------------------------------------------------

    def plan(
        self,
        window_start: float,
        window_end: float,
        active_cpus: Sequence[int],
        governor: Governor,
        rng: np.random.Generator,
        machine_wide: bool = False,
    ) -> FrequencyPlan:
        """Generate traces for ``[window_start, window_end)``.

        *active_cpus* are the CPUs hosting benchmark threads; they determine
        the boost limit (via distinct active cores) and whether the dip
        process runs in cross-NUMA mode.  Traces extend past *window_end*
        (the last segment holds), so queries slightly beyond the horizon are
        safe.

        *machine_wide* realizes the plan's stochastic triggers for the whole
        machine rather than just the sockets currently hosting work: dips
        and derate episodes are sampled on every socket, every CPU gets the
        busy steady-state target, and the dip process runs in cross-NUMA
        mode whenever the machine spans more than one NUMA domain.  Used
        for unbound teams, whose placement migrates during the run — the
        boost *limit* still follows the team's active-core count, but the
        triggers must not be anchored to the initial placement.
        """
        if window_end <= window_start:
            raise FrequencyError("empty frequency window")
        machine, spec = self.machine, self.spec
        active = list(dict.fromkeys(active_cpus))
        active_cores = machine.cores_spanned(active) if active else 0
        if machine_wide:
            cross_numa = machine.numa_span(range(machine.n_cpus)) > 1
            busy_set = set(range(machine.n_cpus))
        else:
            cross_numa = machine.numa_span(active) > 1 if active else False
            busy_set = set(active)

        if machine_wide:
            socket_ids = tuple(s.socket_id for s in machine.sockets)
        else:
            socket_ids = tuple(
                sorted({machine.hwthread(c).socket_id for c in active})
            ) or tuple(s.socket_id for s in machine.sockets)
        occupancy = (active_cores / machine.n_cores) if active else None
        dips = spec.dips.sample(
            window_start, window_end, socket_ids, cross_numa, rng,
            occupancy=occupancy,
        )
        dips_by_socket: dict[int, list[FrequencyDip]] = {}
        for dip in dips:
            dips_by_socket.setdefault(dip.socket_id, []).append(dip)

        # run-scale derate episodes (one draw per socket hosting work)
        load = active_cores / machine.n_cores
        derate_by_socket = {
            s: spec.derate.sample_factor(load, rng) for s in socket_ids
        }

        traces: dict[int, PiecewiseConstant] = {}
        horizon = window_end - window_start
        for cpu in range(machine.n_cpus):
            base = self.steady_target(governor, active_cores, cpu in busy_set)
            base *= derate_by_socket.get(machine.hwthread(cpu).socket_id, 1.0)
            # breakpoints: window start + jitter re-draws + dip edges
            times = [window_start]
            if spec.jitter_rate > 0:
                n_jit = int(rng.poisson(spec.jitter_rate * horizon))
                if n_jit:
                    times.extend(
                        (window_start + rng.random(n_jit) * horizon).tolist()
                    )
            socket_id = machine.hwthread(cpu).socket_id
            cpu_dips = dips_by_socket.get(socket_id, ())
            for dip in cpu_dips:
                times.append(dip.start)
                times.append(dip.start + dip.duration)
            times = sorted({round(t, 12) for t in times if t >= window_start})
            t_arr = np.asarray(times)

            # multiplier per segment: benign jitter (resampled at breakpoints)
            if spec.jitter_amplitude > 0:
                jitter = 1.0 + rng.uniform(
                    -spec.jitter_amplitude, spec.jitter_amplitude, size=t_arr.size
                )
            else:
                jitter = np.ones(t_arr.size)
            values = base * jitter
            # apply dips: segment value scaled by deepest overlapping dip
            for dip in cpu_dips:
                lo, hi = dip.start, dip.start + dip.duration
                mask = (t_arr >= lo - 1e-12) & (t_arr < hi - 1e-12)
                values[mask] = np.minimum(values[mask], base * jitter[mask] * dip.depth)
            values = np.asarray(self._quantize(values), dtype=np.float64)

            # collapse equal consecutive values to keep traces small
            keep = np.ones(t_arr.size, dtype=bool)
            keep[1:] = values[1:] != values[:-1]
            traces[cpu] = PiecewiseConstant(t_arr[keep], values[keep])

        return FrequencyPlan(
            machine,
            traces,
            window_start,
            calibration_hz=spec.calibration_hz,
            dips=dips,
        )
