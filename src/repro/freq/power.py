"""Package power / turbo-license model.

Modern x86 parts cannot sustain their single-core boost on all cores: the
package power budget caps the all-core frequency.  Vendors publish this as a
step table "max turbo vs. number of active cores".  :class:`BoostTable`
captures that table and is the steady-state input to the governor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import FrequencyError


@dataclass(frozen=True)
class BoostTable:
    """Sustainable frequency as a step function of active core count.

    Parameters
    ----------
    steps:
        Sequence of ``(max_active_cores, freq_hz)`` pairs with strictly
        increasing core counts and non-increasing frequencies.  A query with
        more active cores than the last entry returns the last frequency
        (the all-core sustained level).

    Examples
    --------
    >>> t = BoostTable.from_ghz([(2, 3.7), (16, 3.1), (32, 2.8)])
    >>> t.freq_for(1) / 1e9
    3.7
    >>> t.freq_for(20) / 1e9
    2.8
    """

    steps: tuple[tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise FrequencyError("boost table needs at least one step")
        prev_n, prev_f = 0, float("inf")
        for n, f in self.steps:
            if n <= prev_n:
                raise FrequencyError("boost table core counts must increase")
            if f <= 0:
                raise FrequencyError(f"non-positive frequency {f}")
            if f > prev_f:
                raise FrequencyError("boost table frequencies must not increase")
            prev_n, prev_f = n, f

    @classmethod
    def from_ghz(cls, steps: Sequence[tuple[int, float]]) -> "BoostTable":
        """Build from ``(max_active_cores, freq_GHz)`` pairs."""
        return cls(tuple((int(n), float(f) * 1e9) for n, f in steps))

    @classmethod
    def flat(cls, freq_hz: float) -> "BoostTable":
        """A table with no active-core dependence (fixed-frequency parts)."""
        return cls(((1, float(freq_hz)),))

    def freq_for(self, active_cores: int) -> float:
        """Sustainable frequency (Hz) with *active_cores* busy cores."""
        if active_cores < 0:
            raise FrequencyError(f"negative active core count {active_cores}")
        for max_n, f in self.steps:
            if active_cores <= max_n:
                return f
        return self.steps[-1][1]

    @property
    def single_core_boost(self) -> float:
        """Frequency with one active core — the delay-calibration frequency."""
        return self.steps[0][1]

    @property
    def all_core_floor(self) -> float:
        return self.steps[-1][1]
