"""Frequency / DVFS substrate.

Generates per-core frequency traces (right-continuous step signals) for a
simulation window, combining:

* a **boost table** — the sustainable frequency as a function of how many
  cores are active (turbo licensing / package power budget),
* a **governor** — the policy picking the target frequency (the paper's
  Vera runs the ``performance`` governor),
* a **dip process** — stochastic transient frequency drops whose rate grows
  when the workload spans NUMA domains (the behaviour the paper observes on
  Vera in Figures 6 and 7; Dardel is configured much steadier),
* per-core p-state jitter quantized to the platform's frequency step.

The resulting :class:`~repro.freq.dvfs.FrequencyPlan` answers the execution
model's question "how long does it take cpu *c* to retire *W* cycles
starting at time *t*" and backs the simulated sysfs cpufreq tree that the
frequency logger reads.
"""

from repro.freq.power import BoostTable
from repro.freq.governor import (
    Governor,
    PerformanceGovernor,
    PowersaveGovernor,
    OndemandGovernor,
    SchedutilGovernor,
    make_governor,
)
from repro.freq.variation import DerateProcess, DipProcess, FrequencyDip
from repro.freq.dvfs import FrequencyModel, FrequencyPlan, FrequencySpec
from repro.freq.sysfs import CpuFreqSysfs

__all__ = [
    "BoostTable",
    "Governor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "OndemandGovernor",
    "SchedutilGovernor",
    "make_governor",
    "DerateProcess",
    "DipProcess",
    "FrequencyDip",
    "FrequencyModel",
    "FrequencyPlan",
    "FrequencySpec",
    "CpuFreqSysfs",
]
