"""repro — reproduction of "Analysis and Characterization of Performance
Variability for OpenMP Runtime" (SC-W 2023, arXiv:2311.05267).

The library simulates a multicore NUMA node (topology, DVFS, OS noise,
scheduler, memory system), models an OpenMP runtime on top of it, re-implements
the paper's benchmarks (EPCC syncbench/schedbench, BabelStream), and provides
a statistics + harness layer that regenerates every table and figure of the
paper's evaluation.

Quickstart
----------
>>> from repro import experiments
>>> result = experiments.figure1(platform="vera", runs=3, outer_reps=10, seed=1)
>>> print(result.render())                                    # doctest: +SKIP

Declare a custom sweep without writing a driver (see docs/study.md)::

>>> from repro import ExperimentConfig, Study
>>> res = (Study(ExperimentConfig(benchmark="syncbench", runs=3))
...        .grid(num_threads=[4, 8], runtime=["gnu", "llvm"])
...        .run(jobs=0))                                      # doctest: +SKIP
>>> res.group_summaries("num_threads")                        # doctest: +SKIP
"""

#: Bumped to 1.2.0 by the runtime-vendor subsystem: `ExperimentConfig` grew
#: ``runtime`` / ``wait_policy`` fields (part of the cache key), so every
#: pre-1.2 cache entry is invalidated rather than replayed against the new
#: semantics.
__version__ = "1.2.0"

# Public API is re-exported lazily to keep `import repro` cheap and to avoid
# import cycles while subpackages are loaded on demand.
_LAZY_ATTRS = {
    "Machine": ("repro.topology", "Machine"),
    "CpuSet": ("repro.topology", "CpuSet"),
    "TopologyBuilder": ("repro.topology", "TopologyBuilder"),
    "dardel_topology": ("repro.topology", "dardel_topology"),
    "vera_topology": ("repro.topology", "vera_topology"),
    "Platform": ("repro.platform", "Platform"),
    "dardel": ("repro.platform", "dardel"),
    "vera": ("repro.platform", "vera"),
    "get_platform": ("repro.platform", "get_platform"),
    "RngFactory": ("repro.rng", "RngFactory"),
    "OMPEnvironment": ("repro.omp", "OMPEnvironment"),
    "OpenMPRuntime": ("repro.omp", "OpenMPRuntime"),
    "RuntimeProfile": ("repro.omp", "RuntimeProfile"),
    "WaitPolicy": ("repro.omp", "WaitPolicy"),
    "get_runtime_profile": ("repro.omp", "get_runtime_profile"),
    "available_runtimes": ("repro.omp", "available_runtimes"),
    "Task": ("repro.omp.tasking", "Task"),
    "TaskCostParams": ("repro.omp.tasking", "TaskCostParams"),
    "WorkStealingScheduler": ("repro.omp.tasking", "WorkStealingScheduler"),
    "ExperimentConfig": ("repro.harness", "ExperimentConfig"),
    "Runner": ("repro.harness", "Runner"),
    "ParallelRunner": ("repro.harness", "ParallelRunner"),
    "Sweep": ("repro.harness", "Sweep"),
    "Study": ("repro.harness", "Study"),
    "StudyResult": ("repro.harness", "StudyResult"),
    "ResultCache": ("repro.harness", "ResultCache"),
    "experiments": ("repro.harness", "experiments"),
    "SMTMode": ("repro.types", "SMTMode"),
    "ProcBind": ("repro.types", "ProcBind"),
    "ScheduleKind": ("repro.types", "ScheduleKind"),
    "SyncConstruct": ("repro.types", "SyncConstruct"),
    "StreamKernel": ("repro.types", "StreamKernel"),
}

__all__ = ["__version__", *sorted(_LAZY_ATTRS)]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_ATTRS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value  # cache for next access
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_ATTRS))
