"""Platform presets: everything the simulator knows about a machine.

A :class:`Platform` bundles the topology with the calibrated model
parameters of every substrate.  The two presets mirror the paper's
Section 4.1; the calibration targets (Table 2 and Figures 1-7 shapes) are
documented per constant below and cross-checked in EXPERIMENTS.md.

A small :func:`toy` platform (16 CPUs) is provided for tests and examples
that should run in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.freq.dvfs import FrequencySpec
from repro.freq.power import BoostTable
from repro.freq.variation import DerateProcess, DipProcess
from repro.mem.bandwidth import MemorySpec
from repro.omp.constructs import SyncCostParams
from repro.omp.region import RegionParams
from repro.omp.schedule import ScheduleCostParams
from repro.omp.tasking.params import TaskCostParams
from repro.omp.vendor import RuntimeProfile, default_profile, get_runtime_profile
from repro.osnoise.profiles import NoiseProfile, dardel_noise, quiet_profile, vera_noise
from repro.sched.params import SchedParams
from repro.topology.builder import TopologyBuilder
from repro.topology.hwthread import Machine
from repro.topology.platforms import dardel_topology, vera_topology
from repro.units import gb_per_s, ghz, ns, us


@dataclass(frozen=True)
class Platform:
    """A fully parameterized simulated node."""

    name: str
    machine: Machine
    freq_spec: FrequencySpec
    mem_spec: MemorySpec
    noise_profile: NoiseProfile
    sched_params: SchedParams = field(default_factory=SchedParams)
    sync_params: SyncCostParams = field(default_factory=SyncCostParams)
    task_params: TaskCostParams = field(default_factory=TaskCostParams)
    sched_cost_params: ScheduleCostParams = field(default_factory=ScheduleCostParams)
    region_params: RegionParams = field(default_factory=RegionParams)
    default_governor: str = "performance"
    runtime_profile: RuntimeProfile = field(default_factory=default_profile)

    def with_noise(self, profile: NoiseProfile) -> "Platform":
        """A copy with a different noise profile (ablations)."""
        return replace(self, noise_profile=profile)

    def quiet(self) -> "Platform":
        """A noise-free copy (calibration / unit tests)."""
        return self.with_noise(quiet_profile())

    def with_runtime(self, profile: RuntimeProfile | str) -> "Platform":
        """A copy running a different OpenMP implementation.

        Accepts either a :class:`~repro.omp.vendor.RuntimeProfile` or a
        registry name (``"gnu"`` / ``"llvm"``).
        """
        if isinstance(profile, str):
            profile = get_runtime_profile(profile)
        return replace(self, runtime_profile=profile)

    def describe(self) -> str:
        return (
            f"{self.machine.summary()}; "
            f"boost {self.freq_spec.calibration_hz / 1e9:.2f} GHz single-core, "
            f"{self.freq_spec.boost.all_core_floor / 1e9:.2f} GHz all-core; "
            f"{self.mem_spec.numa_bw / 1e9:.0f} GB/s per NUMA domain; "
            f"noise profile '{self.noise_profile.name}'; "
            f"runtime {self.runtime_profile.vendor}"
        )


def dardel() -> Platform:
    """Dardel: 2x AMD EPYC Zen2 64c SMT-2, 8 NUMA domains, 256 CPUs.

    Calibration notes (schedbench dynamic_1, Table 2):
    - single-core boost 3.4 GHz is the EPCC delay-calibration frequency;
    - at 4 threads the boost table still gives 3.4 GHz, so one repetition
      is 8192 x 15 us = 122.88 ms plus ~1.1 ms of dequeue overhead
      (dequeue_latency(4) ~ 138 ns x 8192) -> ~124.0 ms (paper: 124.0 ms);
    - at 254 threads (127 cores) the all-core level is 2.8 GHz, stretching
      the delay to 18.2 us -> 149.2 ms, plus dequeue_latency(254) ~ 0.6 us
      x 8192 -> ~154.2 ms (paper: 154.2 ms);
    - the derate process reproduces Table 2's run #9 (+9.5% for a whole
      run, probability rising with node load).
    """
    return Platform(
        name="dardel",
        machine=dardel_topology(),
        freq_spec=FrequencySpec(
            min_hz=ghz(1.5),
            base_hz=ghz(2.25),
            boost=BoostTable.from_ghz(
                [(8, 3.4), (32, 3.2), (64, 3.0), (128, 2.8)]
            ),
            pstate_step_hz=25e6,
            jitter_amplitude=0.002,
            jitter_rate=2.0,
            # Dardel "exhibits less frequency variation" (Sec 5.4)
            dips=DipProcess(
                base_rate=0.01,
                cross_numa_rate=0.03,
                duration_median=0.010,
                duration_sigma=0.5,
                depth_low=0.90,
                depth_high=0.97,
            ),
            derate=DerateProcess(
                prob_at_full_load=0.02,
                depth_low=0.90,
                depth_high=0.93,
                load_exponent=2.0,
            ),
        ),
        mem_spec=MemorySpec(
            numa_bw=gb_per_s(48.0),  # ~190 GB/s achievable per socket / 4 domains
            core_bw=gb_per_s(19.0),
            same_socket_remote_factor=0.75,
            cross_socket_remote_factor=0.45,
            kernel_launch_overhead=us(2.0),
        ),
        noise_profile=dardel_noise(),
        sched_params=SchedParams(
            stacking_prob_per_thread=6.0e-5,
            sched_delay_median=0.004,
            sched_delay_sigma=1.4,
            sched_delay_cap=0.40,
        ),
        sync_params=SyncCostParams(
            line_local=ns(32.0),
            line_cross_numa=ns(75.0),
            line_cross_socket=ns(130.0),
            atomic_rmw=ns(18.0),
            fork_base=us(1.5),
            fork_per_thread=ns(60.0),
        ),
        sched_cost_params=ScheduleCostParams(
            lat_base=ns(70.0),
            lat_sqrt=ns(28.0),
            thru_base=ns(15.0),
            thru_log=ns(4.0),
        ),
    )


def vera() -> Platform:
    """Vera: 2x Intel Xeon Gold 6130 16c, 2 NUMA domains, 32 CPUs, no SMT.

    Calibration notes:
    - turbo table 3.7 GHz (<=2 cores) down to 2.8 GHz all-core: schedbench
      dynamic_1 at 4 threads = 8192 x 15 us x 3.7/3.35 + dequeue ~ 136.9 ms
      (paper: 136.5 ms); at 30 threads = 8192 x 15 us x 3.7/2.8 + dequeue
      ~ 164.8 ms (paper: 164.7 ms);
    - the dip process runs hot in cross-NUMA mode (Figures 6/7: frequent
      transient drops when the team spans both sockets).
    """
    return Platform(
        name="vera",
        machine=vera_topology(),
        freq_spec=FrequencySpec(
            min_hz=ghz(1.0),
            base_hz=ghz(2.1),
            boost=BoostTable.from_ghz(
                [(2, 3.7), (4, 3.35), (8, 3.1), (16, 2.9), (32, 2.8)]
            ),
            pstate_step_hz=50e6,
            jitter_amplitude=0.004,
            jitter_rate=3.0,
            dips=DipProcess(
                base_rate=0.05,
                cross_numa_rate=4.0,
                duration_median=0.020,
                duration_sigma=0.8,
                depth_low=0.72,
                depth_high=0.90,
                occupancy_exponent=1.5,
            ),
            derate=DerateProcess(
                prob_at_full_load=0.015,
                depth_low=0.93,
                depth_high=0.97,
                load_exponent=2.0,
            ),
        ),
        mem_spec=MemorySpec(
            numa_bw=gb_per_s(85.0),  # 6x DDR4-2666 per socket, ~85 GB/s achievable
            core_bw=gb_per_s(12.0),
            same_socket_remote_factor=1.0,  # one domain per socket
            cross_socket_remote_factor=0.55,
            kernel_launch_overhead=us(2.5),
        ),
        noise_profile=vera_noise(),
        sched_params=SchedParams(
            stacking_prob_per_thread=8.0e-5,
            sched_delay_median=0.004,
            sched_delay_sigma=1.3,
            sched_delay_cap=0.30,
        ),
        sync_params=SyncCostParams(
            line_local=ns(40.0),
            line_cross_numa=ns(40.0),  # no sub-socket NUMA on Vera
            line_cross_socket=ns(150.0),
            atomic_rmw=ns(25.0),
            fork_base=us(1.2),
            fork_per_thread=ns(80.0),
        ),
        sched_cost_params=ScheduleCostParams(
            lat_base=ns(80.0),
            lat_sqrt=ns(30.0),
            thru_base=ns(30.0),
            thru_log=ns(6.0),
        ),
    )


def toy(smt: int = 2) -> Platform:
    """A small 8-core platform for fast tests and examples."""
    machine = (
        TopologyBuilder("toy").add_sockets(2, numa_per_socket=1, cores_per_numa=4, smt=smt).build()
    )
    return Platform(
        name="toy",
        machine=machine,
        freq_spec=FrequencySpec(
            min_hz=ghz(1.0),
            base_hz=ghz(2.0),
            boost=BoostTable.from_ghz([(2, 3.0), (4, 2.6), (8, 2.2)]),
        ),
        mem_spec=MemorySpec(numa_bw=gb_per_s(40.0), core_bw=gb_per_s(15.0)),
        noise_profile=NoiseProfile(
            "toy",
            tuple(
                s for s in vera_noise().sources if s.kind in ("tick", "daemon")
            ),
        ),
    )


_PLATFORMS = {"dardel": dardel, "vera": vera, "toy": toy}


def get_platform(name: str) -> Platform:
    """Look up a platform preset by name.

    >>> get_platform("vera").machine.n_cpus
    32
    """
    try:
        factory = _PLATFORMS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform {name!r}; choose from {sorted(_PLATFORMS)}"
        ) from None
    return factory()


def available_platforms() -> tuple[str, ...]:
    return tuple(sorted(_PLATFORMS))
