"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from simulation-internal problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An experiment, runtime or platform was configured inconsistently."""


class TopologyError(ConfigurationError):
    """A machine topology description is invalid (e.g. zero cores)."""


class PlacesSyntaxError(ConfigurationError):
    """An ``OMP_PLACES`` string could not be parsed."""


class BindingError(ConfigurationError):
    """Thread binding could not be satisfied (e.g. more threads than places
    with a strict policy, or a place referencing a non-existent CPU)."""


class ScheduleError(ConfigurationError):
    """An OpenMP loop schedule specification is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class TraceError(SimulationError):
    """A piecewise trace was queried outside its domain or built unsorted."""


class FrequencyError(SimulationError):
    """The DVFS subsystem was driven with invalid frequencies."""


class NoiseModelError(SimulationError):
    """A noise source produced or was configured with invalid events."""


class MemoryModelError(SimulationError):
    """The NUMA memory model was queried inconsistently."""


class BenchmarkError(ReproError):
    """A benchmark was invoked with unusable parameters."""


class HarnessError(ReproError):
    """The experiment harness failed (unknown experiment, bad result file)."""


class AnalysisError(ReproError):
    """The static-analysis framework was misused (unknown rule, bad
    baseline file) — distinct from the findings it reports."""


class ServiceError(ReproError):
    """The job service failed (unknown job, bad state transition, ...)."""


class JobSpecError(ServiceError):
    """A job spec failed validation; the message names the offending
    field (e.g. ``axes[1].kind``)."""
