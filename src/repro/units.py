"""Unit helpers.

The simulator works internally in **seconds** (time), **hertz** (frequency)
and **bytes** (data).  The paper reports microseconds (EPCC) and milliseconds
(BabelStream); these helpers keep conversions explicit and greppable instead
of scattering bare ``1e-6`` factors around the code base.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

#: One microsecond expressed in seconds.
USEC = 1e-6
#: One millisecond expressed in seconds.
MSEC = 1e-3
#: One nanosecond expressed in seconds.
NSEC = 1e-9


def us(value: float) -> float:
    """Convert *value* microseconds to seconds."""
    return value * USEC


def ms(value: float) -> float:
    """Convert *value* milliseconds to seconds."""
    return value * MSEC


def ns(value: float) -> float:
    """Convert *value* nanoseconds to seconds."""
    return value * NSEC


def to_us(seconds: float) -> float:
    """Convert *seconds* to microseconds."""
    return seconds / USEC


def to_ms(seconds: float) -> float:
    """Convert *seconds* to milliseconds."""
    return seconds / MSEC


def to_ns(seconds: float) -> float:
    """Convert *seconds* to nanoseconds."""
    return seconds / NSEC


# ---------------------------------------------------------------------------
# Frequency
# ---------------------------------------------------------------------------

#: One gigahertz in hertz.
GHZ = 1e9
#: One megahertz in hertz.
MHZ = 1e6
#: One kilohertz in hertz (sysfs cpufreq reports kHz).
KHZ = 1e3


def ghz(value: float) -> float:
    """Convert *value* GHz to Hz."""
    return value * GHZ


def mhz(value: float) -> float:
    """Convert *value* MHz to Hz."""
    return value * MHZ


def to_ghz(hz: float) -> float:
    """Convert *hz* to GHz."""
    return hz / GHZ


def to_khz(hz: float) -> float:
    """Convert *hz* to kHz (the unit used by the Linux cpufreq sysfs)."""
    return hz / KHZ


# ---------------------------------------------------------------------------
# Data
# ---------------------------------------------------------------------------

#: One kibibyte.
KIB = 1024
#: One mebibyte.
MIB = 1024 ** 2
#: One gibibyte.
GIB = 1024 ** 3
#: One gigabyte (decimal, as used in bandwidth figures).
GB = 1e9


def gib(value: float) -> float:
    """Convert *value* GiB to bytes."""
    return value * GIB


def gb_per_s(value: float) -> float:
    """Convert *value* GB/s (decimal) to bytes/s."""
    return value * GB


def to_gb_per_s(bytes_per_s: float) -> float:
    """Convert *bytes_per_s* to decimal GB/s."""
    return bytes_per_s / GB


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------


def fmt_time(seconds: float) -> str:
    """Render a duration with an auto-selected engineering unit.

    >>> fmt_time(1.5e-6)
    '1.500 us'
    >>> fmt_time(0.25)
    '250.000 ms'
    """
    if not math.isfinite(seconds):
        return str(seconds)
    a = abs(seconds)
    if a >= 1.0:
        return f"{seconds:.3f} s"
    if a >= MSEC:
        return f"{to_ms(seconds):.3f} ms"
    if a >= USEC:
        return f"{to_us(seconds):.3f} us"
    return f"{to_ns(seconds):.1f} ns"


def fmt_freq(hz: float) -> str:
    """Render a frequency in GHz or MHz as appropriate.

    >>> fmt_freq(2.25e9)
    '2.250 GHz'
    """
    if abs(hz) >= GHZ:
        return f"{hz / GHZ:.3f} GHz"
    return f"{hz / MHZ:.1f} MHz"


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary unit.

    >>> fmt_bytes(2 ** 25 * 8)
    '256.0 MiB'
    """
    a = abs(n)
    if a >= GIB:
        return f"{n / GIB:.1f} GiB"
    if a >= MIB:
        return f"{n / MIB:.1f} MiB"
    if a >= KIB:
        return f"{n / KIB:.1f} KiB"
    return f"{n:.0f} B"
