"""Benchmark registry: name-based lookup for the CLI and harness."""

from __future__ import annotations

from typing import Callable

from repro.bench.babelstream import BabelStream
from repro.bench.epcc.schedbench import Schedbench
from repro.bench.epcc.syncbench import Syncbench
from repro.bench.taskbench import Taskbench
from repro.errors import BenchmarkError

_BENCHMARKS: dict[str, Callable[[], object]] = {
    "syncbench": Syncbench,
    "schedbench": Schedbench,
    "babelstream": BabelStream,
    "taskbench": Taskbench,
}


def get_benchmark(name: str):
    """Instantiate a benchmark driver by name (default parameters).

    >>> type(get_benchmark("syncbench")).__name__
    'Syncbench'
    """
    try:
        factory = _BENCHMARKS[name.lower()]
    except KeyError:
        raise BenchmarkError(
            f"unknown benchmark {name!r}; choose from {sorted(_BENCHMARKS)}"
        ) from None
    return factory()


def available_benchmarks() -> tuple[str, ...]:
    return tuple(sorted(_BENCHMARKS))
