"""EPCC ``schedbench``: worksharing-loop scheduling overheads.

Each outer repetition times one ``parallel for`` over
``itersperthr x nthreads`` iterations of ``delay(delaytime)`` under a given
schedule.  With the paper's parameters (delay 15 us, itersperthr 8192) one
repetition is nominally 122.88 ms of work per thread; what the measurement
exposes is everything on top: dequeue overheads, the shared-queue
serialization, frequency derating at high active-core counts, scheduler
hazards for unbound teams, and OS noise.

Noise aggregation: ``static`` loops meet one barrier at the end (MAX mode
— the slowest thread's noise counts); ``dynamic``/``guided`` loops
redistribute the stalled thread's chunks (BALANCED mode — the team absorbs
noise at total/n).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.epcc.common import EpccStats, epcc_stats
from repro.errors import BenchmarkError
from repro.omp.region import NoiseMode
from repro.omp.runtime import RunContext
from repro.omp.schedule import plan_loop
from repro.types import ScheduleKind
from repro.units import us


@dataclass(frozen=True)
class SchedbenchParams:
    """Table 1 parameters for schedbench.

    ``smt_efficiency`` / ``smt_rep_jitter``: the EPCC delay loop is a
    dependency-chain of arithmetic, which co-schedules almost perfectly on
    SMT siblings (paper Table 2: 254 threads cost only the frequency
    derate) — but sibling interference makes repetition times *noisy*
    (Figure 5d), captured by a per-repetition log-normal multiplier.
    """

    outer_reps: int = 100
    delay_time: float = us(15.0)
    itersperthr: int = 8192
    test_time: float = us(1000.0)  # kept for interface parity with EPCC
    rep_gap: float = us(200.0)
    smt_efficiency: float = 1.0
    smt_rep_jitter: float = 0.025

    def __post_init__(self) -> None:
        if self.outer_reps <= 0 or self.itersperthr <= 0:
            raise BenchmarkError("outer_reps and itersperthr must be positive")
        if self.delay_time < 0 or self.rep_gap < 0:
            raise BenchmarkError("invalid schedbench timing parameters")
        if not 0.0 < self.smt_efficiency <= 1.0:
            raise BenchmarkError("smt_efficiency outside (0, 1]")
        if self.smt_rep_jitter < 0:
            raise BenchmarkError("negative smt_rep_jitter")


@dataclass(frozen=True)
class ScheduleMeasurement:
    """One schedule's measurement within one run."""

    kind: ScheduleKind
    chunk: int | None
    rep_times: np.ndarray = field(compare=False)

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``dynamic_1``."""
        suffix = f"_{self.chunk}" if self.chunk is not None else ""
        return f"{self.kind.value}{suffix}"

    @property
    def stats(self) -> EpccStats:
        return epcc_stats(self.rep_times)


class Schedbench:
    """The schedbench driver; one instance is reusable across runs."""

    def __init__(self, params: SchedbenchParams | None = None):
        self.params = params if params is not None else SchedbenchParams()

    def measure(
        self, ctx: RunContext, kind: ScheduleKind, chunk: int | None = None
    ) -> ScheduleMeasurement:
        """Measure one schedule for one run (outer_reps repetitions)."""
        p = self.params
        rng = ctx.stream("schedbench", kind.value, chunk)
        cost_params = ctx.runtime.platform.sched_cost_params

        noise_mode = (
            NoiseMode.MAX if kind is ScheduleKind.STATIC else NoiseMode.BALANCED
        )
        rep_times = np.empty(p.outer_reps)
        for rep in range(p.outer_reps):
            if not ctx.team.bound:
                ctx.refork_unbound(rng)
            team = ctx.team
            total_iters = p.itersperthr * team.n_threads
            plan = plan_loop(
                kind, total_iters, team.n_threads, chunk, p.delay_time, cost_params,
                latency_factor=1.0 + 0.6 * team.outside_master_socket_fraction,
            )
            work = plan.per_thread_work + plan.per_thread_overhead
            if team.uses_smt and p.smt_rep_jitter > 0:
                sigma = p.smt_rep_jitter
                work = work * rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma)

            # region open/close once per repetition
            sync_overhead = (
                ctx.sync_cost.fork_cost(team)
                + ctx.sync_cost.join_cost(team)
                + plan.imbalance_tail
            )
            # the queue bound is uncore-limited; scale it with the live
            # frequency the same way compute is scaled
            queue_floor = 0.0
            if plan.queue_serialization > 0.0:
                f_now = ctx.freq_plan.freq_at(team.master_cpu, ctx.t)
                queue_floor = plan.queue_serialization * (
                    ctx.freq_plan.calibration_hz / f_now
                )

            result = ctx.executor.execute(
                ctx.t,
                team,
                work,
                noise_mode=noise_mode,
                sync_overhead=sync_overhead,
                queue_floor=queue_floor,
                wake_delays=ctx.fork.wake_delays if rep == 0 or not team.bound else None,
                stacking_episodes=ctx.fork.episodes,
                barrier_cost=ctx.sync_cost.barrier_cost(team),
                smt_efficiency=p.smt_efficiency,
            )
            rep_times[rep] = result.duration
            ctx.advance(result.duration + p.rep_gap)

        return ScheduleMeasurement(kind=kind, chunk=chunk, rep_times=rep_times)

    def measure_suite(
        self,
        ctx: RunContext,
        schedules: tuple[tuple[ScheduleKind, int | None], ...] = (
            (ScheduleKind.STATIC, None),
            (ScheduleKind.STATIC, 1),
            (ScheduleKind.DYNAMIC, 1),
            (ScheduleKind.GUIDED, 1),
        ),
    ) -> dict[str, ScheduleMeasurement]:
        """Measure several schedules sequentially along the run timeline."""
        out: dict[str, ScheduleMeasurement] = {}
        for kind, chunk in schedules:
            m = self.measure(ctx, kind, chunk)
            out[m.label] = m
        return out

    def horizon_estimate(self, n_threads: int) -> float:
        """Rough single-schedule run duration for horizon sizing."""
        p = self.params
        per_rep = p.itersperthr * p.delay_time * 1.6 + p.rep_gap
        return p.outer_reps * per_rep + 1.0
