"""EPCC OpenMP micro-benchmark suite (modelled).

Re-implements the measurement methodology of Bull's EPCC micro-benchmarks:
a reference (serial) timing of the delay loop, inner-repetition targeting
so each test lasts ~``targettesttime``, ``outer_repetitions`` timed tests,
and the 3-sigma outlier statistics the suite prints.

Paper parameters (Table 1): both benchmarks use 100 outer repetitions and
a 1000 us target test time; ``schedbench`` uses a 15 us delay and
``itersperthr = 8192``; ``syncbench`` uses a 0.1 us delay.
"""

from repro.bench.epcc.common import EpccStats, epcc_stats, target_innerreps
from repro.bench.epcc.syncbench import ConstructMeasurement, Syncbench, SyncbenchParams
from repro.bench.epcc.schedbench import Schedbench, SchedbenchParams, ScheduleMeasurement

__all__ = [
    "EpccStats",
    "epcc_stats",
    "target_innerreps",
    "Syncbench",
    "SyncbenchParams",
    "ConstructMeasurement",
    "Schedbench",
    "SchedbenchParams",
    "ScheduleMeasurement",
]
