"""EPCC ``syncbench``: synchronization-construct overheads.

For every construct the benchmark runs ``outer_reps`` timed tests; each
test executes ``innerreps`` instances of the construct with a
``delay(delaytime)`` body and reports the per-construct overhead
``test_time / innerreps - reference``.

Modelling notes (mirroring the real suite's code structure):

* *parallel-type* constructs (PARALLEL, FOR, PARALLEL FOR, BARRIER,
  SINGLE, REDUCTION): all threads execute the delay concurrently each
  inner iteration, so per-thread work is ``innerreps x delay`` and the
  construct cost lands on the critical path ``innerreps`` times;
* *serialized* constructs (CRITICAL, LOCK/UNLOCK, ORDERED, ATOMIC): the
  suite normalizes so ``innerreps`` total entries happen; the whole body
  is critical-path: ``innerreps x (delay + handoff)``;
* constructs that open a parallel region per instance (PARALLEL,
  PARALLEL FOR, REDUCTION) additionally suffer OS wake-up hazards when
  the team is unbound: each region fork is a fresh chance for a worker to
  land behind another runnable thread, stalling the whole team for
  milliseconds — the mechanism behind the 3-orders-of-magnitude spread of
  Figure 4b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.epcc.common import EpccStats, epcc_stats, target_innerreps
from repro.errors import BenchmarkError
from repro.omp.constructs import CONSTRUCT_PROFILES
from repro.omp.region import NoiseMode
from repro.omp.runtime import RunContext
from repro.types import SyncConstruct
from repro.units import us


@dataclass(frozen=True)
class SyncbenchParams:
    """Table 1 parameters for syncbench."""

    outer_reps: int = 100
    delay_time: float = us(0.1)
    test_time: float = us(1000.0)
    rep_gap: float = us(50.0)
    smt_efficiency: float = 0.95  # the delay loop co-schedules well on SMT

    def __post_init__(self) -> None:
        if self.outer_reps <= 0:
            raise BenchmarkError("outer_reps must be positive")
        if self.delay_time < 0 or self.test_time <= 0 or self.rep_gap < 0:
            raise BenchmarkError("invalid syncbench timing parameters")
        if not 0.0 < self.smt_efficiency <= 1.0:
            raise BenchmarkError("smt_efficiency outside (0, 1]")


@dataclass(frozen=True)
class ConstructMeasurement:
    """One construct's measurement within one run."""

    construct: SyncConstruct
    innerreps: int
    reference: float  # reference time per logical iteration (seconds)
    rep_times: np.ndarray = field(compare=False)  # outer_reps test times

    @property
    def overheads(self) -> np.ndarray:
        """Per-construct overhead per outer rep (seconds), EPCC-style."""
        return self.rep_times / self.innerreps - self.reference

    @property
    def stats(self) -> EpccStats:
        return epcc_stats(self.rep_times)

    @property
    def overhead_stats(self) -> EpccStats:
        return epcc_stats(np.maximum(self.overheads, 0.0))


class Syncbench:
    """The syncbench driver; one instance is reusable across runs."""

    def __init__(self, params: SyncbenchParams | None = None):
        self.params = params if params is not None else SyncbenchParams()

    # -- helpers -----------------------------------------------------------

    def _iter_time_estimate(self, ctx: RunContext, construct: SyncConstruct) -> float:
        """Expected duration of one logical inner iteration."""
        cost = ctx.sync_cost.construct_cost(construct, ctx.team)
        return self.params.delay_time + cost

    def _fork_hazard_extra(
        self, ctx: RunContext, innerreps: int, rng: np.random.Generator
    ) -> float:
        """Extra critical-path time from unbound per-region wake hazards."""
        sched = ctx.runtime.sched_model.params
        n = ctx.team.n_threads
        load = len(set(ctx.team.cpus)) / ctx.machine.n_cpus
        p_single = min(1.0, sched.stacking_prob_per_thread * (1.0 + 8.0 * load))
        p_region = 1.0 - (1.0 - p_single) ** n
        n_events = int(rng.poisson(innerreps * p_region))
        if n_events == 0:
            return 0.0
        delays = np.minimum(
            rng.lognormal(
                np.log(sched.sched_delay_median), sched.sched_delay_sigma, size=n_events
            ),
            sched.sched_delay_cap,
        )
        return float(delays.sum())

    # -- measurement ---------------------------------------------------------

    def measure(self, ctx: RunContext, construct: SyncConstruct) -> ConstructMeasurement:
        """Measure one construct for one run (outer_reps repetitions)."""
        p = self.params
        profile = CONSTRUCT_PROFILES[construct]
        iter_est = self._iter_time_estimate(ctx, construct)
        innerreps = target_innerreps(p.test_time, iter_est)
        rng = ctx.stream("syncbench", construct.value)
        tracer = ctx.tracer
        tracing = tracer.enabled  # hoisted once; the null path pays one bool test

        rep_times = np.empty(p.outer_reps)
        for rep in range(p.outer_reps):
            if not ctx.team.bound:
                ctx.refork_unbound(rng)
            team = ctx.team
            cost = ctx.sync_cost.construct_cost(construct, team)
            jitter = ctx.sync_cost.sample_multiplier(team, rng)

            if profile.serialized:
                work = np.zeros(team.n_threads)
                sync_overhead = innerreps * (p.delay_time + cost * jitter)
            else:
                work = np.full(team.n_threads, innerreps * p.delay_time)
                sync_overhead = innerreps * cost * jitter

            if profile.has_fork and not team.bound:
                sync_overhead += self._fork_hazard_extra(ctx, innerreps, rng)

            result = ctx.executor.execute(
                ctx.t,
                team,
                work,
                noise_mode=NoiseMode.SYNC_SUM,
                sync_overhead=sync_overhead,
                wake_delays=ctx.fork.wake_delays if rep == 0 or not team.bound else None,
                stacking_episodes=ctx.fork.episodes,
                smt_efficiency=p.smt_efficiency,
            )
            if tracing:
                # one span per timed test (innerreps construct instances are
                # far too many to draw individually)
                args = {"rep": rep, "innerreps": innerreps}
                if profile.has_barrier:
                    args.update(ctx.sync_cost.barrier_trace_args(team))
                tracer.span(
                    0, construct.value, ctx.t, ctx.t + result.duration,
                    cat="omp", args=args,
                )
            rep_times[rep] = result.duration
            ctx.advance(result.duration + p.rep_gap)

        return ConstructMeasurement(
            construct=construct,
            innerreps=innerreps,
            reference=p.delay_time,
            rep_times=rep_times,
        )

    def measure_all(
        self, ctx: RunContext, constructs: tuple[SyncConstruct, ...] | None = None
    ) -> dict[SyncConstruct, ConstructMeasurement]:
        """Measure several constructs sequentially along the run timeline."""
        selected = constructs if constructs is not None else tuple(SyncConstruct)
        return {c: self.measure(ctx, c) for c in selected}

    def horizon_estimate(self, ctx_or_none=None) -> float:
        """Rough run duration for horizon sizing: reps x test_time x slack."""
        p = self.params
        return p.outer_reps * (p.test_time * 3.0 + p.rep_gap) + 0.5
