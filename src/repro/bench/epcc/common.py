"""EPCC measurement machinery shared by syncbench and schedbench.

The EPCC suite's procedure, reproduced here:

1. calibrate ``delay(delaylength)`` so one call lasts ``delaytime`` — in
   the simulator the calibration frequency is the platform's single-core
   boost, so the *nominal* delay stretches when a loaded machine runs at a
   lower all-core frequency, exactly as on real hardware;
2. choose ``innerreps`` by doubling from 1 until ``innerreps x
   estimated-iteration-time`` reaches the target test time;
3. run ``outer_repetitions`` timed tests and report mean / sd / min / max
   plus the count of 3-sigma outliers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class EpccStats:
    """The statistics an EPCC benchmark prints for one measurement."""

    mean: float
    sd: float
    minimum: float
    maximum: float
    n: int
    n_outliers: int

    @property
    def cv(self) -> float:
        """Coefficient of variation (the paper's Figure 5 metric)."""
        return self.sd / self.mean if self.mean else float("inf")

    @property
    def norm_min(self) -> float:
        """Minimum normalized to the mean (the paper's Figure 3 metric)."""
        return self.minimum / self.mean if self.mean else float("nan")

    @property
    def norm_max(self) -> float:
        """Maximum normalized to the mean."""
        return self.maximum / self.mean if self.mean else float("nan")


def epcc_stats(times: np.ndarray, outlier_sigmas: float = 3.0) -> EpccStats:
    """EPCC-style statistics over repetition times.

    Outliers are repetitions more than ``outlier_sigmas`` standard
    deviations from the mean (counted, not removed — matching the suite's
    output).
    """
    t = np.asarray(times, dtype=np.float64)
    if t.size == 0:
        raise BenchmarkError("no repetitions to summarize")
    if np.any(t < 0):
        raise BenchmarkError("negative repetition time")
    mean = float(t.mean())
    sd = float(t.std(ddof=1)) if t.size > 1 else 0.0
    n_out = int(np.count_nonzero(np.abs(t - mean) > outlier_sigmas * sd)) if sd else 0
    return EpccStats(
        mean=mean,
        sd=sd,
        minimum=float(t.min()),
        maximum=float(t.max()),
        n=int(t.size),
        n_outliers=n_out,
    )


def target_innerreps(test_time: float, iter_time_estimate: float,
                     max_reps: int = 1 << 22) -> int:
    """EPCC's inner-repetition doubling: smallest power of two ``p`` with
    ``p * iter_time_estimate >= test_time``.

    >>> target_innerreps(1e-3, 1e-5)
    128
    """
    if test_time <= 0:
        raise BenchmarkError(f"test time must be positive, got {test_time}")
    if iter_time_estimate <= 0:
        raise BenchmarkError(
            f"iteration estimate must be positive, got {iter_time_estimate}"
        )
    p = 1
    while p * iter_time_estimate < test_time and p < max_reps:
        p <<= 1
    return p
