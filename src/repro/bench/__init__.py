"""Benchmark implementations.

Faithful re-implementations of the paper's three benchmarks against the
simulated node:

* :mod:`repro.bench.epcc` — the EPCC OpenMP micro-benchmark machinery
  (``syncbench`` and ``schedbench`` with the paper's Table 1 parameters);
* :mod:`repro.bench.babelstream` — BabelStream's five vector kernels at
  the paper's array size of 2^25 doubles;
* :mod:`repro.bench.registry` — name-based lookup used by the CLI and the
  experiment harness.
"""

from repro.bench.epcc.common import EpccStats, epcc_stats, target_innerreps
from repro.bench.epcc.syncbench import (
    ConstructMeasurement,
    Syncbench,
    SyncbenchParams,
)
from repro.bench.epcc.schedbench import (
    Schedbench,
    SchedbenchParams,
    ScheduleMeasurement,
)
from repro.bench.babelstream import (
    BabelStream,
    BabelStreamParams,
    StreamMeasurement,
    KERNEL_BYTE_FACTORS,
)
from repro.bench.registry import available_benchmarks, get_benchmark

__all__ = [
    "EpccStats",
    "epcc_stats",
    "target_innerreps",
    "Syncbench",
    "SyncbenchParams",
    "ConstructMeasurement",
    "Schedbench",
    "SchedbenchParams",
    "ScheduleMeasurement",
    "BabelStream",
    "BabelStreamParams",
    "StreamMeasurement",
    "KERNEL_BYTE_FACTORS",
    "available_benchmarks",
    "get_benchmark",
]
