"""BabelStream (modelled): memory-bandwidth vector kernels.

The real benchmark allocates three arrays of ``2^25`` doubles and times
``num_times`` iterations of copy / mul / add / triad / dot, reporting the
min/avg/max time per kernel.  The paper normalizes min and max to the
average and compares across 10 runs (Figures 2, 3, 4c/4f, 5c/5f).

The modelled kernel time comes from the platform's NUMA bandwidth solver
(first-touch page placement, per-core link limits, remote-path penalties,
SMT link sharing), plus:

* OS noise in MAX mode (each kernel ends at a barrier),
* the reduction tree of ``dot``,
* unbound teams: spontaneous migrations move threads away from their
  pages mid-run, changing the path factors between iterations — this is
  what produces the up-to-6x min/max spread before pinning (Figure 4c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.epcc.common import EpccStats, epcc_stats
from repro.errors import BenchmarkError
from repro.mem.bandwidth import BandwidthModel
from repro.mem.pages import PagePlacement
from repro.omp.region import NoiseMode
from repro.omp.runtime import RunContext
from repro.types import StreamKernel
from repro.units import us

#: Bytes moved per array element for each kernel (read + write streams).
KERNEL_BYTE_FACTORS: dict[StreamKernel, int] = {
    StreamKernel.COPY: 2,
    StreamKernel.MUL: 2,
    StreamKernel.ADD: 3,
    StreamKernel.TRIAD: 3,
    StreamKernel.DOT: 2,
}


@dataclass(frozen=True)
class BabelStreamParams:
    """Paper configuration: default parameters, array size 2^25."""

    array_size: int = 2**25
    element_bytes: int = 8
    num_times: int = 100
    kernel_gap: float = us(5.0)

    def __post_init__(self) -> None:
        if self.array_size <= 0 or self.element_bytes <= 0 or self.num_times <= 0:
            raise BenchmarkError("invalid BabelStream parameters")
        if self.kernel_gap < 0:
            raise BenchmarkError("negative kernel gap")

    @property
    def array_bytes(self) -> int:
        return self.array_size * self.element_bytes

    def kernel_bytes(self, kernel: StreamKernel) -> int:
        return KERNEL_BYTE_FACTORS[kernel] * self.array_bytes


@dataclass(frozen=True)
class StreamMeasurement:
    """All kernel timings of one BabelStream run."""

    times: dict[StreamKernel, np.ndarray] = field(compare=False)

    def stats(self, kernel: StreamKernel) -> EpccStats:
        return epcc_stats(self.times[kernel])

    def min_avg_max(self, kernel: StreamKernel) -> tuple[float, float, float]:
        t = self.times[kernel]
        return float(t.min()), float(t.mean()), float(t.max())

    def normalized_min_max(self, kernel: StreamKernel) -> tuple[float, float]:
        """The paper's metric: min and max normalized to the average."""
        mn, avg, mx = self.min_avg_max(kernel)
        return mn / avg, mx / avg

    def bandwidth(self, kernel: StreamKernel, params: BabelStreamParams) -> float:
        """Best achieved bandwidth (bytes/s), as BabelStream reports."""
        mn, _, _ = self.min_avg_max(kernel)
        return params.kernel_bytes(kernel) / mn


class BabelStream:
    """The BabelStream driver; one instance is reusable across runs."""

    def __init__(self, params: BabelStreamParams | None = None):
        self.params = params if params is not None else BabelStreamParams()

    def run(self, ctx: RunContext) -> StreamMeasurement:
        """Execute one full BabelStream run along the run timeline."""
        p = self.params
        team = ctx.team
        machine = ctx.machine
        bw_model = BandwidthModel(machine, ctx.runtime.platform.mem_spec)
        rng = ctx.stream("babelstream")

        # first touch during parallel initialization at the current placement
        current_cpus = list(team.cpus)
        placement = PagePlacement.first_touch(machine, current_cpus)

        # unbound threads migrate during the run; pre-sample the events
        migrations = []
        if not team.bound:
            est = self._estimate_duration(ctx, bw_model, placement)
            migrations = ctx.runtime.sched_model.sample_migrations(
                current_cpus, ctx.t, ctx.t + est * 1.5, rng
            )
        mig_idx = 0

        times: dict[StreamKernel, list[float]] = {k: [] for k in StreamKernel}
        n = team.n_threads
        for _ in range(p.num_times):
            for kernel in StreamKernel:
                # apply migrations that happened before this kernel
                while mig_idx < len(migrations) and migrations[mig_idx].t <= ctx.t:
                    ev = migrations[mig_idx]
                    current_cpus[ev.thread] = ev.dst_cpu
                    ctx.advance(ev.penalty)
                    mig_idx += 1
                    team = team.with_cpus(current_cpus)

                bytes_per_thread = np.full(n, p.kernel_bytes(kernel) / n)
                base = bw_model.kernel_time(
                    bytes_per_thread,
                    current_cpus,
                    placement,
                    smt_shared=team.smt_shared,
                )
                sigma = bw_model.jitter_sigma(
                    current_cpus, placement, smt_shared=team.smt_shared
                )
                base *= float(rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))
                sync = 0.0
                if kernel is StreamKernel.DOT:
                    sync = (
                        ctx.sync_cost.barrier_cost(team)
                        + n * ctx.sync_cost.params.atomic_rmw
                    )
                result = ctx.executor.execute(
                    ctx.t,
                    team,
                    np.full(n, base),
                    noise_mode=NoiseMode.MAX,
                    sync_overhead=sync,
                    stacking_episodes=ctx.fork.episodes,
                    freq_sensitive=False,
                )
                times[kernel].append(result.duration)
                ctx.advance(result.duration + p.kernel_gap)

        return StreamMeasurement(
            times={k: np.asarray(v) for k, v in times.items()}
        )

    # -- helpers -------------------------------------------------------------

    def _estimate_duration(
        self, ctx: RunContext, bw_model: BandwidthModel, placement: PagePlacement
    ) -> float:
        p = self.params
        n = ctx.team.n_threads
        per_iter = 0.0
        for kernel in StreamKernel:
            per_iter += bw_model.kernel_time(
                np.full(n, p.kernel_bytes(kernel) / n),
                list(ctx.team.cpus),
                placement,
            )
            per_iter += p.kernel_gap
        return p.num_times * per_iter

    def horizon_estimate(self, ctx: RunContext) -> float:
        """Rough run duration for horizon sizing."""
        bw_model = BandwidthModel(ctx.machine, ctx.runtime.platform.mem_spec)
        placement = PagePlacement.first_touch(ctx.machine, list(ctx.team.cpus))
        return self._estimate_duration(ctx, bw_model, placement) * 2.0 + 0.5
