"""Two-sample comparisons between experiment configurations.

Used to answer the paper's qualitative claims quantitatively, e.g. "after
pinning, run-to-run variability is almost eliminated": the harness compares
the pinned and unpinned samples with distribution-free tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import ReproError


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a two-sample comparison (a vs b)."""

    ks_statistic: float
    ks_pvalue: float
    mw_statistic: float
    mw_pvalue: float
    mean_ratio: float  # mean(a) / mean(b)
    variance_ratio: float  # var(a) / var(b)

    def distributions_differ(self, alpha: float = 0.01) -> bool:
        """Kolmogorov-Smirnov verdict at level *alpha*."""
        return self.ks_pvalue < alpha

    def medians_differ(self, alpha: float = 0.01) -> bool:
        """Mann-Whitney verdict at level *alpha*."""
        return self.mw_pvalue < alpha


def _validated(sample) -> np.ndarray:
    x = np.asarray(sample, dtype=np.float64)
    if x.ndim != 1 or x.size < 2:
        raise ReproError("each sample needs at least 2 points")
    if not np.all(np.isfinite(x)):
        raise ReproError("sample contains non-finite values")
    return x


def variance_ratio(a, b) -> float:
    """var(a)/var(b); > 1 means *a* is more variable."""
    xa, xb = _validated(a), _validated(b)
    vb = xb.var(ddof=1)
    if vb == 0:
        return float("inf") if xa.var(ddof=1) > 0 else 1.0
    return float(xa.var(ddof=1) / vb)


def compare_samples(a, b) -> ComparisonResult:
    """Compare two timing samples (e.g. unpinned vs pinned).

    Returns KS and Mann-Whitney statistics plus mean/variance ratios;
    ratios are oriented a/b so "a is worse" shows as ratios > 1.
    """
    xa, xb = _validated(a), _validated(b)
    ks = sps.ks_2samp(xa, xb)
    mw = sps.mannwhitneyu(xa, xb, alternative="two-sided")
    mean_b = xb.mean()
    if mean_b == 0:
        raise ReproError("cannot form mean ratio against zero-mean sample")
    return ComparisonResult(
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
        mw_statistic=float(mw.statistic),
        mw_pvalue=float(mw.pvalue),
        mean_ratio=float(xa.mean() / mean_b),
        variance_ratio=variance_ratio(xa, xb),
    )
