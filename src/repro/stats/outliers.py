"""Outlier detectors.

Three standard detectors with different robustness/efficiency trade-offs:

* :func:`sigma_outliers` — the EPCC suite's 3-sigma rule (sensitive to the
  outliers themselves inflating sigma; kept for fidelity with the suite);
* :func:`iqr_outliers` — Tukey fences (robust, the boxplot rule);
* :func:`mad_outliers` — modified z-score via the median absolute
  deviation (most robust; the usual choice for heavy-tailed run-time
  distributions like Figure 4b's).

All return a boolean mask, True where the point is an outlier.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

#: Consistency constant: MAD * 1.4826 estimates sigma for normal data.
MAD_SIGMA_SCALE = 1.4826


def _validated(sample) -> np.ndarray:
    x = np.asarray(sample, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ReproError("sample must be a non-empty 1-D array")
    if not np.all(np.isfinite(x)):
        raise ReproError("sample contains non-finite values")
    return x


def sigma_outliers(sample, n_sigmas: float = 3.0) -> np.ndarray:
    """Points more than *n_sigmas* standard deviations from the mean."""
    if n_sigmas <= 0:
        raise ReproError("n_sigmas must be positive")
    x = _validated(sample)
    if x.size < 2:
        return np.zeros(x.size, dtype=bool)
    sd = x.std(ddof=1)
    if sd == 0:
        return np.zeros(x.size, dtype=bool)
    return np.abs(x - x.mean()) > n_sigmas * sd


def iqr_outliers(sample, k: float = 1.5) -> np.ndarray:
    """Tukey fences: outside ``[Q1 - k*IQR, Q3 + k*IQR]``."""
    if k <= 0:
        raise ReproError("k must be positive")
    x = _validated(sample)
    q1, q3 = np.percentile(x, [25, 75])
    iqr = q3 - q1
    return (x < q1 - k * iqr) | (x > q3 + k * iqr)


def mad_outliers(sample, threshold: float = 3.5) -> np.ndarray:
    """Modified z-score: ``|x - median| / (1.4826 * MAD) > threshold``."""
    if threshold <= 0:
        raise ReproError("threshold must be positive")
    x = _validated(sample)
    med = np.median(x)
    mad = np.median(np.abs(x - med))
    if mad == 0:
        # degenerate: fall back to "anything not equal to the median"
        return x != med
    z = np.abs(x - med) / (MAD_SIGMA_SCALE * mad)
    return z > threshold
