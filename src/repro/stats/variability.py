"""Variability decomposition and reporting.

The paper distinguishes two variability scales:

* **within-run** — across the 100 repetitions of one benchmark invocation
  (EPCC's own statistics), and
* **run-to-run** — across the 10 independent invocations.

:func:`decompose_variability` performs the one-way random-effects
decomposition (runs as groups): total variance splits into between-run and
within-run components, and the intraclass correlation states how much of
the observed variability is attributable to run identity — pinning should
drive it toward zero (Figure 4), SMT and saturation push it up (Figures 3
and 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.stats.descriptive import SummaryStats, summarize


@dataclass(frozen=True)
class VariabilityDecomposition:
    """One-way random-effects variance decomposition."""

    n_runs: int
    reps_per_run: int
    grand_mean: float
    between_run_var: float
    within_run_var: float

    @property
    def total_var(self) -> float:
        return self.between_run_var + self.within_run_var

    @property
    def icc(self) -> float:
        """Intraclass correlation: share of variance explained by runs."""
        total = self.total_var
        return self.between_run_var / total if total > 0 else 0.0

    @property
    def between_cv(self) -> float:
        return (
            float(np.sqrt(self.between_run_var)) / self.grand_mean
            if self.grand_mean
            else float("inf")
        )

    @property
    def within_cv(self) -> float:
        return (
            float(np.sqrt(self.within_run_var)) / self.grand_mean
            if self.grand_mean
            else float("inf")
        )


def decompose_variability(runs: np.ndarray) -> VariabilityDecomposition:
    """Decompose a (n_runs, reps) matrix of times.

    Uses the standard ANOVA estimators: ``MS_between = reps * var(run
    means)``, ``MS_within = mean(run variances)``; the between-run variance
    component is ``max(0, (MS_between - MS_within) / reps)``.
    """
    x = np.asarray(runs, dtype=np.float64)
    if x.ndim != 2 or x.shape[0] < 2 or x.shape[1] < 2:
        raise ReproError("need a (runs >= 2, reps >= 2) matrix")
    if not np.all(np.isfinite(x)):
        raise ReproError("matrix contains non-finite values")
    n_runs, reps = x.shape
    run_means = x.mean(axis=1)
    ms_between = reps * run_means.var(ddof=1)
    ms_within = float(x.var(axis=1, ddof=1).mean())
    sigma2_between = max(0.0, (ms_between - ms_within) / reps)
    return VariabilityDecomposition(
        n_runs=n_runs,
        reps_per_run=reps,
        grand_mean=float(x.mean()),
        between_run_var=float(sigma2_between),
        within_run_var=ms_within,
    )


@dataclass(frozen=True)
class VariabilityReport:
    """Everything the harness reports about one configuration's timings."""

    label: str
    per_run: tuple[SummaryStats, ...]
    pooled: SummaryStats
    decomposition: VariabilityDecomposition | None = None
    runs_matrix: np.ndarray | None = field(default=None, compare=False)

    @classmethod
    def from_runs(cls, label: str, runs: np.ndarray) -> "VariabilityReport":
        x = np.asarray(runs, dtype=np.float64)
        if x.ndim != 2:
            raise ReproError("runs must be a (n_runs, reps) matrix")
        per_run = tuple(summarize(row) for row in x)
        decomposition = (
            decompose_variability(x) if x.shape[0] >= 2 and x.shape[1] >= 2 else None
        )
        return cls(
            label=label,
            per_run=per_run,
            pooled=summarize(x.ravel()),
            decomposition=decomposition,
            runs_matrix=x,
        )

    @property
    def n_runs(self) -> int:
        return len(self.per_run)

    def run_means(self) -> np.ndarray:
        return np.asarray([s.mean for s in self.per_run])

    def run_norm_min_max(self) -> np.ndarray:
        """(n_runs, 2) of per-run normalized (min, max) — Figure 3's series."""
        return np.asarray([(s.norm_min, s.norm_max) for s in self.per_run])

    def render(self, unit_scale: float = 1e6, unit: str = "us") -> str:
        """ASCII rendering: one row per run + pooled summary."""
        lines = [f"== {self.label} =="]
        header = (
            f"{'run':>4} {'mean':>12} {'sd':>10} {'min':>12} "
            f"{'max':>12} {'cv':>8} {'nmin':>7} {'nmax':>7}"
        )
        lines.append(header)
        for i, s in enumerate(self.per_run, start=1):
            lines.append(
                f"{i:>4} {s.mean * unit_scale:>12.2f} {s.sd * unit_scale:>10.2f} "
                f"{s.minimum * unit_scale:>12.2f} {s.maximum * unit_scale:>12.2f} "
                f"{s.cv:>8.4f} {s.norm_min:>7.3f} {s.norm_max:>7.3f}"
            )
        p = self.pooled
        lines.append(
            f"{'all':>4} {p.mean * unit_scale:>12.2f} {p.sd * unit_scale:>10.2f} "
            f"{p.minimum * unit_scale:>12.2f} {p.maximum * unit_scale:>12.2f} "
            f"{p.cv:>8.4f} {p.norm_min:>7.3f} {p.norm_max:>7.3f}  [{unit}]"
        )
        if self.decomposition is not None:
            d = self.decomposition
            lines.append(
                f"     run-to-run CV {d.between_cv:.4f} | within-run CV "
                f"{d.within_cv:.4f} | ICC {d.icc:.3f}"
            )
        return "\n".join(lines)
