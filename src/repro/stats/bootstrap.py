"""Bootstrap confidence intervals.

Run-time distributions are skewed and multi-modal (Figure 4b spans three
orders of magnitude), so normal-theory intervals are inappropriate; the
harness quotes percentile-bootstrap intervals instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_ci(
    sample,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapCI:
    """Percentile bootstrap CI for an arbitrary statistic.

    >>> import numpy as np
    >>> ci = bootstrap_ci(np.ones(50), np.mean,
    ...                   rng=np.random.default_rng(0))
    >>> ci.low == ci.high == 1.0
    True
    """
    x = np.asarray(sample, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ReproError("sample must be a non-empty 1-D array")
    if not 0.0 < confidence < 1.0:
        raise ReproError(f"confidence {confidence} outside (0, 1)")
    if n_resamples < 10:
        raise ReproError("need at least 10 resamples")
    if rng is None:
        rng = np.random.default_rng(0)
    n = x.size
    # One (n_resamples, n) draw consumes the generator's stream exactly as
    # n_resamples sequential size-n draws would (row-major fill), so results
    # for a fixed rng are unchanged from the former Python loop.
    idx = rng.integers(0, n, size=(n_resamples, n))
    resamples = x[idx]
    if statistic is np.mean:
        estimates = resamples.mean(axis=1)
    elif statistic is np.median:
        estimates = np.median(resamples, axis=1)
    else:
        estimates = np.apply_along_axis(statistic, 1, resamples)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(estimates, [100 * alpha, 100 * (1 - alpha)])
    return BootstrapCI(
        estimate=float(statistic(x)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )
