"""Descriptive statistics used throughout the evaluation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a sample of times."""

    n: int
    mean: float
    sd: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation, sd/mean (the paper's Figure 5 metric)."""
        return self.sd / self.mean if self.mean else float("inf")

    @property
    def norm_min(self) -> float:
        return self.minimum / self.mean if self.mean else float("nan")

    @property
    def norm_max(self) -> float:
        return self.maximum / self.mean if self.mean else float("nan")

    @property
    def spread_ratio(self) -> float:
        """max/min — the paper quotes "up to 6x" for unpinned BabelStream."""
        return self.maximum / self.minimum if self.minimum else float("inf")


def _validated(sample) -> np.ndarray:
    x = np.asarray(sample, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ReproError("sample must be a non-empty 1-D array")
    if not np.all(np.isfinite(x)):
        raise ReproError("sample contains non-finite values")
    return x


def summarize(sample) -> SummaryStats:
    """Full summary of a sample.

    >>> s = summarize([1.0, 2.0, 3.0, 4.0])
    >>> s.mean, s.minimum, s.maximum
    (2.5, 1.0, 4.0)
    """
    x = _validated(sample)
    return SummaryStats(
        n=int(x.size),
        mean=float(x.mean()),
        sd=float(x.std(ddof=1)) if x.size > 1 else 0.0,
        minimum=float(x.min()),
        p25=float(np.percentile(x, 25)),
        median=float(np.median(x)),
        p75=float(np.percentile(x, 75)),
        maximum=float(x.max()),
    )


def coefficient_of_variation(sample) -> float:
    """CV = sd/mean (lower is better, per the paper)."""
    x = _validated(sample)
    mean = float(x.mean())
    if mean == 0:
        raise ReproError("CV undefined for zero-mean sample")
    sd = float(x.std(ddof=1)) if x.size > 1 else 0.0
    return sd / mean


def normalized_min_max(sample) -> tuple[float, float]:
    """(min/mean, max/mean) — the paper's Figure 3 y-axis.

    Always satisfies ``norm_min <= 1 <= norm_max``.
    """
    x = _validated(sample)
    mean = float(x.mean())
    if mean == 0:
        raise ReproError("normalization undefined for zero-mean sample")
    return float(x.min()) / mean, float(x.max()) / mean
