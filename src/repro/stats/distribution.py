"""Distribution characterization.

The paper's methodology ("a statistical analysis of the observed execution
times") needs more than summary statistics once pinning is off: Figure 4b's
unpinned repetition times are *bimodal* — a tight mode of clean repetitions
plus a heavy cloud of OS-delayed ones.  This module provides the
characterization tools the analysis layer uses:

* :func:`fit_lognormal` / :func:`lognormal_ks` — pinned repetition times
  are well described by a log-normal (multiplicative jitter);
* :func:`bimodality_coefficient` — the SAS bimodality coefficient
  (``(skew^2 + 1) / kurtosis``-style); values above ~0.555 (the uniform
  distribution's value) indicate more than one mode;
* :func:`tail_fraction` — fraction of mass beyond k x the mode estimate,
  a direct "how many repetitions were disturbed" measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import ReproError

#: Bimodality-coefficient value of the uniform distribution; the customary
#: threshold above which a sample is flagged as potentially multi-modal.
BIMODALITY_THRESHOLD = 5.0 / 9.0


def _validated(sample, min_size: int = 2) -> np.ndarray:
    x = np.asarray(sample, dtype=np.float64)
    if x.ndim != 1 or x.size < min_size:
        raise ReproError(f"need a 1-D sample with >= {min_size} points")
    if not np.all(np.isfinite(x)):
        raise ReproError("sample contains non-finite values")
    return x


@dataclass(frozen=True)
class LognormalFit:
    """Maximum-likelihood log-normal fit (location fixed at zero)."""

    mu: float  # mean of log(sample)
    sigma: float  # std of log(sample)

    @property
    def median(self) -> float:
        return float(np.exp(self.mu))

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu + 0.5 * self.sigma**2))


def fit_lognormal(sample) -> LognormalFit:
    """Fit a zero-location log-normal to strictly positive data.

    >>> fit = fit_lognormal([1.0, 1.0, 1.0])
    >>> fit.median
    1.0
    """
    x = _validated(sample)
    if np.any(x <= 0):
        raise ReproError("log-normal fit requires strictly positive data")
    logs = np.log(x)
    return LognormalFit(mu=float(logs.mean()), sigma=float(logs.std(ddof=0)))


def lognormal_ks(sample) -> tuple[float, float]:
    """KS statistic and p-value of the sample against its log-normal fit.

    High p-values mean "consistent with log-normal" — the expected verdict
    for pinned repetition times; unpinned times fail decisively.
    """
    x = _validated(sample, min_size=8)
    fit = fit_lognormal(x)
    if fit.sigma <= 1e-12 * max(1.0, abs(fit.mu)):
        # degenerate (constant sample up to rounding): trivially consistent
        return 0.0, 1.0
    result = sps.kstest(np.log(x), "norm", args=(fit.mu, fit.sigma))
    return float(result.statistic), float(result.pvalue)


def bimodality_coefficient(sample) -> float:
    """Sarle's bimodality coefficient ``(g1^2 + 1) / (g2 + 3(n-1)^2/((n-2)(n-3)))``.

    Returns a value in ``(0, 1]``; > 5/9 suggests bimodality/heavy tails.
    """
    x = _validated(sample, min_size=4)
    n = x.size
    g1 = float(sps.skew(x, bias=False))
    g2 = float(sps.kurtosis(x, bias=False))  # excess kurtosis
    denom = g2 + 3.0 * (n - 1) ** 2 / ((n - 2) * (n - 3))
    if denom <= 0:
        raise ReproError("degenerate kurtosis; cannot compute coefficient")
    return (g1**2 + 1.0) / denom


def is_bimodal(sample, threshold: float = BIMODALITY_THRESHOLD) -> bool:
    """Bimodality verdict by Sarle's coefficient."""
    return bimodality_coefficient(sample) > threshold


def tail_fraction(sample, k: float = 2.0) -> float:
    """Fraction of repetitions slower than ``k x`` the sample's mode.

    The mode is estimated as the median of the fastest half — robust to a
    large disturbed cloud — so this directly answers "what fraction of
    repetitions were hit by the OS?".
    """
    if k <= 1.0:
        raise ReproError(f"k must exceed 1, got {k}")
    x = _validated(sample, min_size=4)
    fastest_half = np.sort(x)[: max(2, x.size // 2)]
    mode_estimate = float(np.median(fastest_half))
    if mode_estimate <= 0:
        raise ReproError("non-positive mode estimate")
    return float(np.mean(x > k * mode_estimate))
