"""Statistical analysis of performance variability.

Implements the paper's metrics and the standard characterization toolkit:

* :mod:`repro.stats.descriptive` — mean/sd/CV, normalized min/max
  (Figure 3's metric), percentiles;
* :mod:`repro.stats.outliers` — 3-sigma (EPCC), IQR and MAD detectors;
* :mod:`repro.stats.bootstrap` — bootstrap confidence intervals;
* :mod:`repro.stats.compare` — two-sample comparisons (Kolmogorov-Smirnov,
  Mann-Whitney, variance ratio) used to decide whether a mitigation
  (pinning, ST) significantly changed the distribution;
* :mod:`repro.stats.variability` — run-to-run vs within-run variance
  decomposition and the :class:`~repro.stats.variability.VariabilityReport`
  the harness renders.
"""

from repro.stats.descriptive import (
    SummaryStats,
    coefficient_of_variation,
    normalized_min_max,
    summarize,
)
from repro.stats.outliers import (
    iqr_outliers,
    mad_outliers,
    sigma_outliers,
)
from repro.stats.bootstrap import bootstrap_ci
from repro.stats.compare import ComparisonResult, compare_samples, variance_ratio
from repro.stats.distribution import (
    LognormalFit,
    bimodality_coefficient,
    fit_lognormal,
    is_bimodal,
    lognormal_ks,
    tail_fraction,
)
from repro.stats.variability import (
    VariabilityDecomposition,
    VariabilityReport,
    decompose_variability,
)

__all__ = [
    "SummaryStats",
    "summarize",
    "coefficient_of_variation",
    "normalized_min_max",
    "sigma_outliers",
    "iqr_outliers",
    "mad_outliers",
    "bootstrap_ci",
    "compare_samples",
    "ComparisonResult",
    "variance_ratio",
    "LognormalFit",
    "fit_lognormal",
    "lognormal_ks",
    "bimodality_coefficient",
    "is_bimodal",
    "tail_fraction",
    "VariabilityDecomposition",
    "VariabilityReport",
    "decompose_variability",
]
