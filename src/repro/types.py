"""Shared enums and small value types used across the library."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SMTMode(str, enum.Enum):
    """How hardware threads (SMT siblings) are used by an experiment.

    ``ST`` uses at most one hardware thread per physical core and leaves the
    sibling free (available to absorb OS activity); ``MT`` packs both
    hardware threads of each core.  Mirrors the paper's Section 3.
    """

    ST = "ST"
    MT = "MT"


class ProcBind(str, enum.Enum):
    """Values of ``OMP_PROC_BIND`` supported by the modelled runtime."""

    FALSE = "false"
    TRUE = "true"
    CLOSE = "close"
    SPREAD = "spread"
    MASTER = "master"

    @property
    def is_bound(self) -> bool:
        """Whether threads are pinned to places (anything but ``false``)."""
        return self is not ProcBind.FALSE


class ScheduleKind(str, enum.Enum):
    """OpenMP worksharing-loop schedule kinds."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


class SyncConstruct(str, enum.Enum):
    """Synchronization constructs measured by EPCC ``syncbench``.

    The member order matches the order EPCC reports them in.
    """

    PARALLEL = "parallel"
    FOR = "for"
    PARALLEL_FOR = "parallel_for"
    BARRIER = "barrier"
    SINGLE = "single"
    CRITICAL = "critical"
    LOCK_UNLOCK = "lock_unlock"
    ORDERED = "ordered"
    ATOMIC = "atomic"
    REDUCTION = "reduction"


class StreamKernel(str, enum.Enum):
    """BabelStream kernels, in execution order."""

    COPY = "copy"
    MUL = "mul"
    ADD = "add"
    TRIAD = "triad"
    DOT = "dot"


@dataclass(frozen=True)
class TimeWindow:
    """A half-open interval of simulated time ``[start, end)`` in seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"TimeWindow end {self.end} < start {self.start}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end

    def overlap(self, other: "TimeWindow") -> float:
        """Length of the intersection with *other* (0.0 if disjoint)."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        return max(0.0, hi - lo)

    def shifted(self, dt: float) -> "TimeWindow":
        return TimeWindow(self.start + dt, self.end + dt)
