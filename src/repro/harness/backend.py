"""Pluggable execution backends for the sweep engine.

:class:`~repro.harness.parallel.Sweep` owns the *policy* of a batch run —
cache lookups, result ordering, telemetry — and delegates the *mechanism*
of simulating the configurations that missed the cache to an
:class:`ExecutionBackend`.  Four backends implement the protocol:

* :class:`SerialBackend` — simulate in-process, one config at a time (the
  historical ``jobs=1`` path);
* :class:`FusedBackend` — simulate in-process through the fused rep-axis
  engine (:mod:`repro.sim.fused`), which evaluates all repetitions of a
  config as one batched array program, falling back to the scalar loop
  for configs the fused engine has no formulation for;
* :class:`ProcessPoolBackend` — fan individual runs out over a
  ``ProcessPoolExecutor``, interleaved round-robin by run index (the
  historical ``jobs=N`` path); with ``fused != "off"``, eligible configs
  are submitted as whole-config fused tasks instead;
* :class:`ShardedBackend` — execute only the configurations assigned to
  one shard of a distributed run, delegating the actual simulation to an
  inner backend.  Every shard worker computes the same partition from the
  configs' cache keys alone (see :func:`shard_index_of`), so N workers on
  N hosts cover a study exactly once with no coordination beyond a shared
  cache directory (see :mod:`repro.harness.shard` and
  docs/distributed.md).

All backends produce results *bit-identical* to serial execution: a
backend only decides where and in what order runs simulate, never what
they compute (the named RNG streams derive every run from
``(master seed, run index)`` alone).

Shard assignment is deliberately a pure function of the configuration's
cache key: it must not depend on wall-clock time, process ids, host
names or the order in which configs were expanded — otherwise two
workers could compute different partitions and silently skip or
duplicate work.  The DET004 lint rule enforces this statically.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult, RunRecord
from repro.harness.runner import Runner

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ExecutionBackend",
    "FUSED_MODES",
    "FusedBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ShardedBackend",
    "available_backends",
    "make_backend",
    "normalize_fused",
    "parse_shard",
    "resolve_jobs",
    "shard_index_of",
]

#: ``--fused`` choices.  ``auto`` fuses eligible multi-run configs, ``on``
#: fuses every eligible config, ``off`` keeps the scalar per-run loop.
FUSED_MODES = ("auto", "on", "off")


def normalize_fused(mode: str | None) -> str:
    """Validate a ``--fused`` mode request (``None`` means ``off``)."""
    mode = "off" if mode is None else mode
    if mode not in FUSED_MODES:
        raise ConfigurationError(
            f"unknown fused mode {mode!r}; choose from {FUSED_MODES}"
        )
    return mode


def _wants_fused(mode: str, config: ExperimentConfig) -> bool:
    """Whether *config* should take the fused rep-axis path under *mode*.

    ``auto`` fuses only multi-run configs (a single run has no rep axis to
    batch); ``on`` fuses everything eligible.  Eligibility itself
    (benchmark + binding shape) is :func:`repro.sim.fused.fused_ineligibility`.
    """
    if mode == "off":
        return False
    from repro.sim.fused import fused_ineligibility

    if fused_ineligibility(config) is not None:
        return False
    return mode == "on" or config.runs >= 2


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a job-count request: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be positive, got {jobs}")
    return jobs


#: Hex digits of the cache key consumed by shard assignment.  16 nibbles
#: = 64 bits, far beyond any realistic shard count, and cheap to parse.
_SHARD_KEY_NIBBLES = 16


def shard_index_of(key: str, shard_count: int) -> int:
    """Deterministic shard assignment for one cache *key*.

    A pure function of the key's leading 64 bits and the shard count:
    independent of config order, wall time, process and host, so every
    worker of an N-shard run computes the identical partition.  Because
    the cache key is itself a SHA-256 over the canonical config JSON,
    assignment is uniform across shards for any config family.
    """
    if shard_count <= 0:
        raise ConfigurationError(f"shard_count must be positive, got {shard_count}")
    return int(key[:_SHARD_KEY_NIBBLES], 16) % shard_count


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse an ``I/N`` shard spec into ``(shard_index, shard_count)``.

    ``I`` is zero-based and must satisfy ``0 <= I < N``.
    """
    index_text, sep, count_text = spec.partition("/")
    try:
        if not sep:
            raise ValueError("missing '/'")
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ConfigurationError(
            f"bad shard spec {spec!r}: expected I/N with integers, "
            f"e.g. --shard 0/4"
        ) from None
    if count <= 0:
        raise ConfigurationError(f"shard count must be positive, got {count}")
    if not 0 <= index < count:
        raise ConfigurationError(
            f"shard index {index} out of range for {count} shard(s) "
            f"(zero-based: 0..{count - 1})"
        )
    return index, count


class ExecutionBackend:
    """Protocol: simulate a batch of cache-missed configurations.

    :meth:`execute` receives ``(config, cache_key)`` pairs and returns a
    list aligned with its input: each element is an
    ``(ExperimentResult, wall_seconds)`` tuple for a config this backend
    executed, or ``None`` for a config it deliberately skipped (only
    :class:`ShardedBackend` skips; whole-batch backends never return
    ``None``).  ``wall_seconds`` is telemetry — the wall time the
    config's simulation consumed (summed across workers for pooled
    execution) — and never flows into results or cache keys.
    """

    #: Display name (CLI ``--backend`` value for constructible backends).
    name: str = "abstract"
    #: Whether this backend executes only a subset of its input batch.
    is_sharded: bool = False

    @property
    def workers(self) -> int:
        """Worker processes this backend occupies (1 for in-process)."""
        return 1

    def execute(
        self,
        pending: Sequence[tuple[ExperimentConfig, str]],
        metrics: "MetricsRegistry | None" = None,
    ) -> list[tuple[ExperimentResult, float] | None]:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Simulate every pending config in-process, in input order."""

    name = "serial"

    def execute(
        self,
        pending: Sequence[tuple[ExperimentConfig, str]],
        metrics: "MetricsRegistry | None" = None,
    ) -> list[tuple[ExperimentResult, float] | None]:
        out: list[tuple[ExperimentResult, float] | None] = []
        for cfg, _key in pending:
            t_cfg = time.time()
            runner = Runner(cfg)
            records = []
            for run in range(cfg.runs):
                t_run = time.time()
                record = runner.run_one(run)
                records.append(replace(
                    record,
                    worker_id="main",
                    wall_seconds=time.time() - t_run,
                ))
            result = ExperimentResult(config=cfg, records=tuple(records))
            out.append((result, time.time() - t_cfg))
        return out


class FusedBackend(ExecutionBackend):
    """Simulate pending configs in-process through the fused rep-axis
    engine (:func:`repro.sim.fused.run_fused`), which evaluates every
    repetition of a config as one batched array program.

    Configs the fused engine has no formulation for (see
    :func:`repro.sim.fused.fused_ineligibility`) — and, in ``auto`` mode,
    single-run configs — silently take the scalar per-run loop instead, so
    this backend is a safe default for any batch.  Either path produces
    byte-identical results; only the ``worker_id`` provenance stamp
    (``compare=False``, never serialized) records which engine ran.
    """

    name = "fused"

    def __init__(self, mode: str = "auto"):
        mode = normalize_fused(mode)
        if mode == "off":
            raise ConfigurationError(
                "FusedBackend with mode='off' is just SerialBackend; "
                "construct that instead"
            )
        self.mode = mode

    def execute(
        self,
        pending: Sequence[tuple[ExperimentConfig, str]],
        metrics: "MetricsRegistry | None" = None,
    ) -> list[tuple[ExperimentResult, float] | None]:
        from repro.sim.fused import run_fused

        scalar = SerialBackend()
        out: list[tuple[ExperimentResult, float] | None] = []
        for cfg, key in pending:
            if not _wants_fused(self.mode, cfg):
                out.extend(scalar.execute([(cfg, key)], metrics))
                continue
            t_cfg = time.time()
            result = run_fused(Runner(cfg))
            elapsed = time.time() - t_cfg
            per_run = elapsed / max(1, cfg.runs)
            records = tuple(
                replace(rec, worker_id="fused", wall_seconds=per_run)
                for rec in result.records
            )
            out.append(
                (ExperimentResult(config=cfg, records=records), elapsed)
            )
        return out


#: Per-worker-process table of constructed runners (config key -> Runner).
_WORKER_RUNNERS: dict[str, Runner] = {}


def _execute_run(
    key: str, config: ExperimentConfig, run_index: int
) -> tuple[RunRecord, float]:
    """Worker entry point: simulate one run of *config* by index.

    Returns the record stamped with execution provenance (worker id + wall
    duration; both ``compare=False`` and never serialized, see
    :class:`~repro.harness.results.RunRecord`) alongside the wall time at
    which the worker actually started — the parent subtracts its submit time
    to measure queue wait.
    """
    t_started = time.time()
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = _WORKER_RUNNERS[key] = Runner(config)
    record = runner.run_one(run_index)
    stamped = replace(
        record,
        worker_id=f"pid{os.getpid()}",
        wall_seconds=time.time() - t_started,
    )
    return stamped, t_started


def _execute_config_fused(
    key: str, config: ExperimentConfig
) -> tuple[ExperimentResult, float, float]:
    """Worker entry point: simulate *all* runs of *config* fused.

    The fused engine batches the whole rep axis, so a fused config is one
    pool task rather than ``runs`` interleaved run tasks.  Returns the
    provenance-stamped result, the worker's start wall time (for
    queue-wait telemetry) and the elapsed simulation wall time.
    """
    from repro.sim.fused import run_fused

    t_started = time.time()
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = _WORKER_RUNNERS[key] = Runner(config)
    result = run_fused(runner)
    elapsed = time.time() - t_started
    per_run = elapsed / max(1, config.runs)
    records = tuple(
        replace(rec, worker_id=f"fused-pid{os.getpid()}", wall_seconds=per_run)
        for rec in result.records
    )
    return ExperimentResult(config=config, records=records), t_started, elapsed


class ProcessPoolBackend(ExecutionBackend):
    """Fan the runs of every pending config out over a process pool.

    Runs are interleaved round-robin by run index so every config makes
    progress from the start instead of whole configs queueing FIFO; the
    parent reassembles records in run order, so results are bit-identical
    to serial execution.

    With ``persistent=True`` the executor is created lazily on first use
    and reused across :meth:`execute` calls until :meth:`close` — the job
    service multiplexes every job over one such backend, so concurrent
    jobs share a single pool instead of each paying pool startup and
    oversubscribing the host.  ``submit`` on a ``ProcessPoolExecutor`` is
    thread-safe, so concurrent ``execute`` calls interleave safely; only
    the lazy construction needs the lock.
    """

    name = "process"

    def __init__(
        self,
        jobs: int | None = None,
        persistent: bool = False,
        fused: str = "off",
    ):
        self.jobs = resolve_jobs(jobs)
        self.persistent = persistent
        self.fused = normalize_fused(fused)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self.jobs

    def _acquire_pool(self, task_count: int) -> tuple[ProcessPoolExecutor, bool]:
        """Executor for one batch plus whether the caller owns (must close) it."""
        if not self.persistent:
            return (
                ProcessPoolExecutor(max_workers=min(self.jobs, task_count)),
                True,
            )
        with self._pool_lock:
            if self._pool is None:
                # shared across batches, so size by the configured job
                # count rather than any one batch's task count
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            return self._pool, False

    def close(self) -> None:
        """Shut down the persistent executor (no-op for per-batch pools)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def execute(
        self,
        pending: Sequence[tuple[ExperimentConfig, str]],
        metrics: "MetricsRegistry | None" = None,
    ) -> list[tuple[ExperimentResult, float] | None]:
        if not pending:
            return []
        # fused-eligible configs batch their whole rep axis in one worker
        # task; the rest interleave round-robin by run index so every
        # config makes progress from the start instead of queueing FIFO
        fused_idx = {
            i
            for i, (cfg, _key) in enumerate(pending)
            if _wants_fused(self.fused, cfg)
        }
        tasks = sorted(
            (run, i, cfg, key)
            for i, (cfg, key) in enumerate(pending)
            if i not in fused_idx
            for run in range(cfg.runs)
        )
        n_tasks = len(tasks) + len(fused_idx)
        max_workers = min(self.jobs, n_tasks)
        m = metrics
        out: list[tuple[ExperimentResult, float] | None] = [None] * len(pending)
        t_pool = time.time()
        pool, owned = self._acquire_pool(n_tasks)
        try:
            submits: dict[tuple[int, int], float] = {}
            futures = {}
            fused_submits: dict[int, float] = {}
            fused_futures = {}
            for i in sorted(fused_idx):
                cfg, key = pending[i]
                fused_submits[i] = time.time()
                fused_futures[i] = pool.submit(_execute_config_fused, key, cfg)
            for run, i, cfg, key in tasks:
                submits[(i, run)] = time.time()
                futures[(i, run)] = pool.submit(_execute_run, key, cfg, run)
            for i, (cfg, _key) in enumerate(pending):
                if i in fused_idx:
                    result, t_started, elapsed = fused_futures[i].result()
                    if m is not None:
                        m.histogram("queue_wait_seconds").observe(
                            max(0.0, t_started - fused_submits[i])
                        )
                    out[i] = (result, elapsed)
                    continue
                records = []
                for run in range(cfg.runs):
                    record, t_started = futures[(i, run)].result()
                    records.append(record)
                    if m is not None:
                        m.histogram("queue_wait_seconds").observe(
                            max(0.0, t_started - submits[(i, run)])
                        )
                result = ExperimentResult(config=cfg, records=tuple(records))
                # pooled configs report the CPU time their runs consumed
                # (run walls overlap across workers, so elapsed is not it)
                out[i] = (result, sum(r.wall_seconds or 0.0 for r in records))
        finally:
            if owned:
                pool.shutdown(wait=True)
        if m is not None:
            elapsed = time.time() - t_pool
            busy = sum(outcome[1] for outcome in out if outcome is not None)
            m.gauge("pool_elapsed_seconds").set(elapsed)
            m.gauge("pool_utilization").set(
                min(1.0, busy / (elapsed * max_workers)) if elapsed > 0 else 0.0
            )
            used = {
                rec.worker_id
                for outcome in out
                if outcome is not None
                for rec in outcome[0].records
            }
            m.gauge("pool_workers_used").set(len(used))
        return out


class ShardedBackend(ExecutionBackend):
    """Execute only the configs assigned to shard ``shard_index`` of
    ``shard_count``, delegating the simulation to *inner*.

    Assignment is :func:`shard_index_of` over each config's cache key —
    a pure content hash, so independent workers running the same study
    with ``--shard 0/N`` .. ``--shard N-1/N`` partition it exactly, in
    any order, on any host.  Skipped configs come back as ``None``; the
    sweep layer writes a shard manifest and stops instead of returning
    partial results (see :mod:`repro.harness.shard`).
    """

    name = "sharded"
    is_sharded = True

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        inner: ExecutionBackend | None = None,
    ):
        if shard_count <= 0:
            raise ConfigurationError(
                f"shard_count must be positive, got {shard_count}"
            )
        if not 0 <= shard_index < shard_count:
            raise ConfigurationError(
                f"shard index {shard_index} out of range for "
                f"{shard_count} shard(s)"
            )
        if inner is not None and inner.is_sharded:
            raise ConfigurationError("sharded backends do not nest")
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.inner = inner if inner is not None else SerialBackend()

    @property
    def workers(self) -> int:
        return self.inner.workers

    @property
    def label(self) -> str:
        """Display form, e.g. ``"0/4"``."""
        return f"{self.shard_index}/{self.shard_count}"

    def assigns(self, key: str) -> bool:
        """Whether the config with cache *key* belongs to this shard."""
        return shard_index_of(key, self.shard_count) == self.shard_index

    def execute(
        self,
        pending: Sequence[tuple[ExperimentConfig, str]],
        metrics: "MetricsRegistry | None" = None,
    ) -> list[tuple[ExperimentResult, float] | None]:
        mine = [
            (i, pair) for i, pair in enumerate(pending) if self.assigns(pair[1])
        ]
        inner_out = self.inner.execute([pair for _i, pair in mine], metrics)
        out: list[tuple[ExperimentResult, float] | None] = [None] * len(pending)
        for (i, _pair), outcome in zip(mine, inner_out):
            out[i] = outcome
        return out


#: ``--backend`` choices: ``auto`` picks serial for jobs=1, process otherwise.
_BACKEND_NAMES = ("auto", "serial", "process")


def available_backends() -> tuple[str, ...]:
    return _BACKEND_NAMES


def make_backend(
    name: str | None = "auto",
    jobs: int | None = 1,
    shard: tuple[int, int] | None = None,
    fused: str | None = "off",
) -> ExecutionBackend | None:
    """Build a backend from CLI-shaped knobs.

    ``name`` is one of :func:`available_backends`; ``auto`` (or ``None``)
    resolves to :class:`SerialBackend` for one worker and
    :class:`ProcessPoolBackend` otherwise — with no *shard* and fusion
    off, ``auto`` returns ``None`` so callers keep the sweep's own
    default path.  *fused* (``auto``/``on``/``off``) routes eligible
    configs through the fused rep-axis engine: serial execution becomes a
    :class:`FusedBackend`, pooled execution submits whole-config fused
    tasks.  *shard* wraps the chosen backend in a :class:`ShardedBackend`.
    """
    name = "auto" if name is None else name
    fused = normalize_fused(fused)
    if name not in _BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown backend {name!r}; choose from {_BACKEND_NAMES}"
        )
    if name == "auto" and shard is None and fused == "off":
        return None

    def serial_like() -> ExecutionBackend:
        return SerialBackend() if fused == "off" else FusedBackend(fused)

    if name == "serial":
        inner: ExecutionBackend = serial_like()
    elif name == "process":
        inner = ProcessPoolBackend(jobs, fused=fused)
    else:  # auto
        inner = (
            serial_like()
            if resolve_jobs(jobs) == 1
            else ProcessPoolBackend(jobs, fused=fused)
        )
    if shard is None:
        return inner
    shard_index, shard_count = shard
    return ShardedBackend(shard_index, shard_count, inner)
