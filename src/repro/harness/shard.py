"""Shard manifests and the gather step for distributed sweeps.

A sharded sweep splits one :class:`~repro.harness.study.Study` across N
independent workers: each worker runs the same study spec with
``--shard i/N`` and a *shared* cache directory, executes only the configs
:func:`~repro.harness.backend.shard_index_of` assigns to it, and finishes
by writing a **shard manifest** — a small JSON file recording exactly
which cache entries its shard covers, each with the SHA-256 of the entry
file's bytes.  ``repro-omp gather`` then assembles the shards: it checks
that every shard of the partition reported in (no missing or duplicate
indices), that every config of the study is covered by the shard that
owns it, and that every referenced cache entry still hashes to the digest
its producer recorded — then replays the entries into a single
:class:`~repro.harness.study.StudyResult` that is byte-identical to an
unsharded serial run of the same study.

Everything that *identifies* work here — shard assignment, manifest entry
keys, entry digests — is a pure function of config content and file
bytes.  No wall-clock values, process ids or host names participate
(enforced statically by the DET004 lint rule); timing telemetry travels
in a separate ``telemetry`` block that gather merges for reporting but
never hashes.

See docs/distributed.md for the workflow end to end.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

from repro import __version__ as _code_version
from repro.errors import HarnessError, ReproError
from repro.harness.backend import shard_index_of
from repro.harness.cache import CACHE_SCHEMA_VERSION, ResultCache, cache_key
from repro.harness.config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.study import Study, StudyResult
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "ReplayCache",
    "ShardRunComplete",
    "ShardSummary",
    "gather_study",
    "load_manifests",
    "manifest_path",
    "write_shard_manifest",
]

#: Bump when the manifest JSON layout changes.
MANIFEST_SCHEMA_VERSION = 1

#: Discriminator stored in every manifest (refuses foreign JSON files).
_MANIFEST_KIND = "repro-omp-shard-manifest"

_MANIFEST_NAME_RE = re.compile(r"^shard-(\d+)of(\d+)\.manifest\.json$")


@dataclass(frozen=True)
class ShardSummary:
    """What one shard of a sweep did (returned via :class:`ShardRunComplete`)."""

    shard_index: int
    shard_count: int
    configs_total: int
    assigned: int
    simulated: int
    cached: int
    manifest_path: Path

    @property
    def label(self) -> str:
        return f"{self.shard_index}/{self.shard_count}"


class ShardRunComplete(ReproError):
    """Control flow, not failure: a sharded sweep finished *its shard*.

    A shard deliberately executes only a subset of the study, so there is
    no complete :class:`~repro.harness.study.StudyResult` to hand back —
    returning a partial one would let downstream rendering silently
    aggregate a fraction of the data.  The sweep instead raises this after
    committing the shard's results and manifest; drivers let it propagate
    and the CLI reports the shard summary and exits cleanly.
    """

    def __init__(self, summary: ShardSummary):
        self.summary = summary
        super().__init__(
            f"shard {summary.label} complete: {summary.assigned} of "
            f"{summary.configs_total} config(s) assigned "
            f"({summary.simulated} simulated, {summary.cached} from cache); "
            f"manifest: {summary.manifest_path}"
        )


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write *payload* as JSON atomically (same tmp + rename discipline as
    :meth:`~repro.harness.cache.ResultCache.put`, so a crashed writer never
    leaves a truncated file and concurrent shards on one host don't race)."""
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _entry_digest(path: Path) -> tuple[str, int]:
    """SHA-256 hex digest and size in bytes of one cache entry file."""
    data = path.read_bytes()
    return hashlib.sha256(data).hexdigest(), len(data)


def manifest_path(cache: ResultCache, shard_index: int, shard_count: int) -> Path:
    """Where the manifest of shard ``shard_index``/``shard_count`` lives
    inside *cache*'s directory."""
    return cache.cache_dir / f"shard-{shard_index}of{shard_count}.manifest.json"


def write_shard_manifest(
    cache: ResultCache,
    shard_index: int,
    shard_count: int,
    configs: Sequence[ExperimentConfig],
    telemetry: Mapping | None = None,
) -> Path:
    """Record the cache entries shard ``shard_index`` covers.

    *configs* are the configs assigned to this shard (cache hits and
    freshly simulated alike — the manifest describes coverage, not work).
    Every config's entry must already be committed to *cache*; each is
    re-read and digested so the manifest pins the exact bytes gather will
    verify.  Returns the manifest path.
    """
    entries = []
    for cfg in configs:
        key = cache_key(cfg)
        path = cache.cache_dir / f"{key}.json"
        if not path.exists():
            raise HarnessError(
                f"cannot write shard manifest: cache entry {key} for config "
                f"{cfg.display_label!r} is missing from {cache.cache_dir}"
            )
        digest, n_bytes = _entry_digest(path)
        entries.append({
            "key": key,
            "sha256": digest,
            "bytes": n_bytes,
            "label": cfg.display_label,
        })
    entries.sort(key=lambda e: e["key"])
    payload = {
        "kind": _MANIFEST_KIND,
        "schema": MANIFEST_SCHEMA_VERSION,
        "shard_index": shard_index,
        "shard_count": shard_count,
        "code_version": _code_version,
        "cache_schema": CACHE_SCHEMA_VERSION,
        "entries": entries,
        "telemetry": dict(telemetry) if telemetry is not None else None,
    }
    path = manifest_path(cache, shard_index, shard_count)
    _atomic_write_json(path, payload)
    return path


def _load_manifest_file(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise HarnessError(f"unreadable shard manifest {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != _MANIFEST_KIND:
        raise HarnessError(
            f"{path} is not a shard manifest (missing kind={_MANIFEST_KIND!r})"
        )
    if payload.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise HarnessError(
            f"shard manifest {path} has schema {payload.get('schema')!r}, "
            f"this build reads schema {MANIFEST_SCHEMA_VERSION} — regenerate "
            f"the shards with matching tooling"
        )
    for field in ("shard_index", "shard_count", "entries"):
        if field not in payload:
            raise HarnessError(f"shard manifest {path} lacks {field!r}")
    return payload


def load_manifests(
    cache: ResultCache, expected_shards: int | None = None
) -> dict[int, dict]:
    """Load and cross-validate every shard manifest in *cache*'s directory.

    Returns ``{shard_index: payload}`` for a complete, consistent
    partition.  Raises :class:`HarnessError` with an actionable message
    when shards disagree on the partition size, an index appears twice,
    indices are missing (lists the exact ``--shard i/N`` runs to repeat),
    or a cache entry is claimed by more than one shard.
    """
    found: dict[int, tuple[Path, dict]] = {}
    counts: set[int] = set()
    paths = sorted(cache.cache_dir.glob("shard-*.manifest.json"))
    for path in paths:
        if not _MANIFEST_NAME_RE.match(path.name):
            continue
        payload = _load_manifest_file(path)
        index = int(payload["shard_index"])
        count = int(payload["shard_count"])
        counts.add(count)
        if expected_shards is not None and count != expected_shards:
            raise HarnessError(
                f"shard manifest {path.name} belongs to a {count}-shard "
                f"partition but --expect-shards={expected_shards}; remove "
                f"stale manifests from {cache.cache_dir} or fix the flag"
            )
        if index in found:
            raise HarnessError(
                f"duplicate manifests for shard {index}: {found[index][0].name} "
                f"and {path.name} — remove the stale one from {cache.cache_dir}"
            )
        found[index] = (path, payload)
    if not found:
        raise HarnessError(
            f"no shard manifests in {cache.cache_dir}; run the sweep with "
            f"--shard i/N into this cache dir first"
        )
    if len(counts) > 1:
        raise HarnessError(
            f"shard manifests in {cache.cache_dir} disagree on the partition "
            f"size ({sorted(counts)} shards); they come from different runs — "
            f"clear the stale manifests or use --expect-shards to say which "
            f"partition to gather"
        )
    (count,) = counts
    missing = sorted(set(range(count)) - set(found))
    if missing:
        todo = ", ".join(f"--shard {i}/{count}" for i in missing)
        raise HarnessError(
            f"incomplete partition: {len(found)} of {count} shard manifest(s) "
            f"present in {cache.cache_dir}; missing shard(s) "
            f"{missing} — run the same sweep with {todo} first"
        )
    claimed: dict[str, int] = {}
    for index, (path, payload) in sorted(found.items()):
        for entry in payload["entries"]:
            key = entry["key"]
            owner = shard_index_of(key, count)
            if owner != index:
                raise HarnessError(
                    f"shard manifest {path.name} claims entry {key[:16]}… "
                    f"which the partition assigns to shard {owner} — the "
                    f"manifests were produced by inconsistent sweeps; "
                    f"re-run the shards from one study spec"
                )
            if key in claimed:
                raise HarnessError(
                    f"cache entry {key[:16]}… is claimed by shard "
                    f"{claimed[key]} and shard {index} — duplicate or stale "
                    f"manifests in {cache.cache_dir}"
                )
            claimed[key] = index
    return {index: payload for index, (path, payload) in sorted(found.items())}


def verify_manifest_entries(
    cache: ResultCache, manifests: Mapping[int, dict]
) -> int:
    """Recompute the digest of every cache entry the manifests reference.

    Returns the number of entries verified; raises :class:`HarnessError`
    naming the first missing or tampered entry.
    """
    verified = 0
    for index, payload in sorted(manifests.items()):
        for entry in payload["entries"]:
            path = cache.cache_dir / f"{entry['key']}.json"
            if not path.exists():
                raise HarnessError(
                    f"integrity failure: cache entry {entry['key'][:16]}… "
                    f"({entry.get('label', '?')}) recorded by shard {index} "
                    f"is missing from {cache.cache_dir} — re-run that shard"
                )
            digest, n_bytes = _entry_digest(path)
            if digest != entry["sha256"]:
                raise HarnessError(
                    f"integrity failure: cache entry {entry['key'][:16]}… "
                    f"({entry.get('label', '?')}) does not match the digest "
                    f"shard {index} recorded (file {digest[:16]}… vs manifest "
                    f"{entry['sha256'][:16]}…, {n_bytes} vs {entry['bytes']} "
                    f"bytes) — the entry was modified after the shard ran; "
                    f"re-run shard {index} or clear the cache"
                )
            verified += 1
    return verified


class ReplayCache(ResultCache):
    """A :class:`ResultCache` that refuses to simulate around a miss.

    Gather must assemble results that already exist; a miss means the
    shards did not actually cover the study (or the cache dir is wrong),
    and silently re-simulating would mask that.  ``get`` raises on a miss
    and ``put`` refuses outright.
    """

    def get(self, config: ExperimentConfig):
        result = super().get(config)
        if result is None:
            raise HarnessError(
                f"gather: no cache entry for config {config.display_label!r} "
                f"in {self.cache_dir} — the shard runs did not cover this "
                f"study (wrong --cache-dir, or the study spec differs from "
                f"the one the shards ran)"
            )
        return result

    def put(self, result) -> Path:
        raise HarnessError(
            "gather replays existing entries and never simulates; refusing "
            f"to write config {result.config.display_label!r} into the cache"
        )


def _record_gather_metrics(
    metrics: "MetricsRegistry",
    manifests: Mapping[int, dict],
    verified: int,
) -> None:
    total_entries = sum(len(p["entries"]) for p in manifests.values())
    total_bytes = sum(
        e["bytes"] for p in manifests.values() for e in p["entries"]
    )
    metrics.gauge("manifest_shards").set(len(manifests))
    metrics.gauge("manifest_entries").set(total_entries)
    metrics.gauge("manifest_total_bytes").set(total_bytes)
    metrics.counter("manifest_entries_verified").inc(verified)
    for index, payload in sorted(manifests.items()):
        label = f"{index}/{payload['shard_count']}"
        metrics.counter("shard_manifest_entries", shard=label).inc(
            len(payload["entries"])
        )
        telemetry = payload.get("telemetry")
        if telemetry:
            metrics.merge_dict(telemetry)


def gather_study(
    study: "Study",
    cache: ResultCache,
    expected_shards: int | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> "StudyResult":
    """Assemble the shards of *study* into one :class:`StudyResult`.

    Validates the manifest partition (:func:`load_manifests`), verifies
    every referenced entry's digest (:func:`verify_manifest_entries`),
    checks that the study's own config expansion is fully covered — each
    config's entry must appear in the manifest of the shard that owns its
    key — then replays the entries through a :class:`ReplayCache`.  The
    result is byte-identical to ``study.run(jobs=1, cache=...)`` on a
    single host because the cached entries *are* the serial results.
    """
    from repro.harness.study import StudyResult

    manifests = load_manifests(cache, expected_shards)
    verified = verify_manifest_entries(cache, manifests)
    shard_count = next(iter(manifests.values()))["shard_count"]

    configs = study.configs()
    if not configs:
        raise HarnessError(
            f"study {study.name!r} selects no configurations — nothing to gather"
        )
    covered = {
        entry["key"]: index
        for index, payload in manifests.items()
        for entry in payload["entries"]
    }
    for cfg in configs:
        key = cache_key(cfg)
        owner = shard_index_of(key, shard_count)
        if key not in covered:
            raise HarnessError(
                f"config {cfg.display_label!r} (entry {key[:16]}…) is not in "
                f"any shard manifest; shard {owner}/{shard_count} should have "
                f"produced it — that shard ran a different study spec, or "
                f"didn't run; re-run --shard {owner}/{shard_count} with this "
                f"exact spec"
            )

    replay = ReplayCache(cache.cache_dir)
    results = [replay.get(cfg) for cfg in configs]
    if metrics is not None:
        _record_gather_metrics(metrics, manifests, verified)
        metrics.counter("configs_total").inc(len(configs))
        metrics.counter("configs_cached").inc(len(configs))
    return StudyResult(study=study, configs=configs, results=tuple(results))
