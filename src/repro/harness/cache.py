"""On-disk experiment result cache.

Every run of the simulator is a pure function of its
:class:`~repro.harness.config.ExperimentConfig` (the master seed is part of
the config), so a finished :class:`~repro.harness.results.ExperimentResult`
can be stored on disk and replayed instead of re-simulated.  The cache key
is a SHA-256 hash over three components:

* the canonical JSON encoding of ``config.to_dict()`` (which includes the
  master ``seed``),
* the library version (``repro.__version__``) — bumping the version
  invalidates every cached entry, so model changes never replay stale
  results,
* a cache schema version (:data:`CACHE_SCHEMA_VERSION`) — bumped whenever
  the on-disk layout itself changes.

The key encoding is *strict*: a config whose ``to_dict()`` payload is not
JSON-serializable raises :class:`~repro.errors.HarnessError` instead of
silently hashing a ``repr`` (which can embed per-process memory addresses
and would yield a fresh key — and a fresh cache entry — every process).

Entries are single JSON files named ``<key>.json`` produced by
:meth:`ExperimentResult.to_dict` plus a ``cache_meta`` block recording the
producing code/schema version (ignored by
:meth:`ExperimentResult.from_dict`, read back by :meth:`ResultCache.stats`
and :meth:`ResultCache.gc`), written atomically (temp file +
``os.replace``) so a crashed writer never leaves a truncated entry behind.
Corrupt or unreadable entries are treated as misses and deleted; stale
``<key>.json.tmp.<pid>.<tid>`` files from crashed writers are swept on init and
on :meth:`ResultCache.clear`.  Because keys embed the code version, a
version bump silently *orphans* every older entry rather than deleting
it; :meth:`ResultCache.gc` prunes those dead keys (any entry whose
recomputed key no longer matches its filename) so shared cache
directories don't grow without bound.

Shard manifests (``shard-<i>of<n>.manifest.json``, see
:mod:`repro.harness.shard`) live in the same directory but are *not*
cache entries: entry enumeration matches only 64-hex-digit names, so
manifests never count toward :meth:`ResultCache.__len__`, ``stats`` or
``gc`` (``clear`` removes them along with everything else).

The cache keeps ``hits`` / ``misses`` / ``stores`` counters so callers (and
tests) can assert that a warmed cache performs zero new simulation runs;
:meth:`ResultCache.clear` resets them along with the entries, so counts
always describe the cache contents since the last clear.  Counter updates
are guarded by a lock: the job service (:mod:`repro.serve`) shares one
cache object across request-handler and job-runner threads, and an
unguarded ``+= 1`` is a read-modify-write that loses increments under
that interleaving.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from pathlib import Path
from typing import TYPE_CHECKING

from repro import __version__ as _code_version
from repro.errors import HarnessError

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.config import ExperimentConfig
    from repro.harness.results import ExperimentResult

__all__ = ["CACHE_SCHEMA_VERSION", "ResultCache", "cache_key"]


def _pid_alive(pid: int) -> bool:
    """Whether a process with *pid* currently exists (POSIX signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but isn't ours
    return True

#: Bump when the on-disk entry layout changes (invalidates all entries).
CACHE_SCHEMA_VERSION = 1

#: Cache entry filenames are the full SHA-256 hex digest.
_ENTRY_NAME_RE = re.compile(r"^[0-9a-f]{64}\.json$")


def _unserializable_paths(value, prefix: str = "") -> list[str]:
    """Dotted paths of every non-JSON-serializable leaf inside *value*.

    Walks the structure json.dumps would walk, so the paths returned are
    exactly the fields whose values break strict encoding — e.g.
    ``benchmark_params.grainsize``.
    """
    if isinstance(value, dict):
        bad: list[str] = []
        for k, v in sorted(value.items(), key=lambda kv: str(kv[0])):
            child = f"{prefix}.{k}" if prefix else str(k)
            if not isinstance(k, str):
                bad.append(child)
            bad.extend(_unserializable_paths(v, child))
        return bad
    if isinstance(value, (list, tuple)):
        bad = []
        for i, v in enumerate(value):
            bad.extend(_unserializable_paths(v, f"{prefix}[{i}]"))
        return bad
    if value is None or isinstance(value, (str, int, bool)):
        return []
    if isinstance(value, float):
        # json.dumps(float('nan')) succeeds by default but produces
        # non-standard JSON; strict encoding treats it as serializable
        # because sort_keys/dumps accepts it — so no path reported here.
        return []
    return [prefix or "<root>"]


def cache_key(config: "ExperimentConfig") -> str:
    """Stable hex digest identifying *config* under the current code version.

    Two configs with equal ``to_dict()`` payloads share a key; any change to
    the config (including the master seed) or to the library version yields
    a different key.
    """
    payload = {
        "config": config.to_dict(),
        "code_version": _code_version,
        "cache_schema": CACHE_SCHEMA_VERSION,
    }
    try:
        # strict encoding: a repr/str fallback would silently hash transient
        # values (e.g. object reprs embedding memory addresses), producing a
        # different key in every process and an unbounded cache
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        bad = _unserializable_paths(payload["config"])
        where = (
            f"offending field path(s): {', '.join(bad)}"
            if bad
            else f"({exc})"
        )
        raise HarnessError(
            f"config {config.display_label!r} is not cacheable: "
            f"to_dict() contains a non-JSON-serializable value; {where}"
        ) from exc
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed cache of :class:`ExperimentResult` JSON blobs.

    Parameters
    ----------
    cache_dir:
        Directory holding the entries; created (with parents) if missing.
    """

    def __init__(self, cache_dir: str | Path):
        self.cache_dir = Path(cache_dir)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise HarnessError(f"cannot create cache dir {cache_dir}: {exc}") from exc
        # counter updates happen from many threads when the cache backs the
        # job service; the lock keeps the read-modify-write increments exact
        self._stats_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.sweep_stale_tmp()

    def _count(self, counter: str) -> None:
        """Increment one traffic counter under the stats lock."""
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    # -- tmp hygiene ---------------------------------------------------------

    def _tmp_files(self):
        return self.cache_dir.glob("*.json.tmp.*")

    def sweep_stale_tmp(self) -> int:
        """Remove tmp entries left behind by crashed writers.

        :meth:`put` writes ``<key>.json.tmp.<pid>.<tid>`` and renames it into
        place; a writer that dies in between leaks the tmp file forever
        (entry globs only see ``*.json``).  A tmp file is stale when its
        owning process is gone (or its name carries no parseable pid);
        tmps of live pids — including this process's own — are spared, as
        deleting one would crash that writer's rename.  Called on init and
        by :meth:`clear`.  (A recycled pid can make a dead writer's tmp
        look alive; such a file persists until that pid exits and the next
        sweep runs — delete the cache directory to force the issue.)
        """
        removed = 0
        for tmp in self._tmp_files():
            # suffix is "<pid>" (older writers) or "<pid>.<tid>"; the pid
            # always leads, and liveness is a process-level question
            pid_text = tmp.name.split(".tmp.", 1)[-1].split(".", 1)[0]
            try:
                pid = int(pid_text)
            except ValueError:
                pid = None
            if pid is not None and pid != os.getpid() and _pid_alive(pid):
                continue  # a live writer may still rename it into place
            if pid == os.getpid():
                continue  # our own in-flight write
            tmp.unlink(missing_ok=True)
            removed += 1
        return removed

    # -- key/path ---------------------------------------------------------------

    def path_for(self, config: "ExperimentConfig") -> Path:
        return self.cache_dir / f"{cache_key(config)}.json"

    # -- lookup/store -----------------------------------------------------------

    def get(self, config: "ExperimentConfig") -> "ExperimentResult | None":
        """Return the cached result for *config*, or ``None`` on a miss.

        A corrupt entry (unparseable JSON, wrong shape) counts as a miss and
        is removed so the next :meth:`put` can rewrite it cleanly.
        """
        from repro.harness.results import ExperimentResult

        path = self.path_for(config)
        if not path.exists():
            self._count("misses")
            return None
        try:
            result = ExperimentResult.load(path)
        except Exception:
            path.unlink(missing_ok=True)
            self._count("misses")
            return None
        self._count("hits")
        return result

    def put(self, result: "ExperimentResult") -> Path:
        """Store *result* atomically; returns the entry path.

        The entry embeds a ``cache_meta`` block naming the code/schema
        version that produced it — read back by :meth:`stats` and
        :meth:`gc`, invisible to :meth:`ExperimentResult.from_dict`.
        """
        path = self.path_for(result.config)
        payload = {
            **result.to_dict(),
            "cache_meta": {
                "code_version": _code_version,
                "cache_schema": CACHE_SCHEMA_VERSION,
            },
        }
        # pid alone is not unique enough: the job service drives one cache
        # from several threads, and two overlapping jobs storing the same
        # key would collide on the tmp name and race each other's rename
        tmp = path.with_name(
            f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
        )
        tmp.write_text(json.dumps(payload))
        try:
            os.replace(tmp, path)
        except FileNotFoundError as exc:
            # another process swept our tmp out from under us (it should
            # spare live pids, but be robust against older/foreign sweepers)
            raise HarnessError(
                f"cache tmp file {tmp} vanished before commit: {exc}"
            ) from exc
        self._count("stores")
        return path

    # -- maintenance --------------------------------------------------------------

    def _entry_files(self):
        """Committed cache entries only (manifests and tmps excluded)."""
        for path in self.cache_dir.glob("*.json"):
            if _ENTRY_NAME_RE.match(path.name):
                yield path

    def clear(self) -> int:
        """Delete every entry, shard manifest and stale tmp file; returns
        the number of *entries* removed.  A live concurrent writer's
        in-flight tmp is spared — deleting it would crash that writer's
        rename.

        The ``hits`` / ``misses`` / ``stores`` counters are reset too: a
        cleared cache is an empty cache, and a test that clears between
        sweeps must read counts for the re-run alone, not stale totals
        accumulated before the clear.
        """
        removed = 0
        for path in self.cache_dir.glob("*.json"):
            is_entry = _ENTRY_NAME_RE.match(path.name) is not None
            path.unlink(missing_ok=True)
            if is_entry:
                removed += 1
        self.sweep_stale_tmp()
        with self._stats_lock:
            self.hits = 0
            self.misses = 0
            self.stores = 0
        return removed

    def stats(self) -> dict:
        """Inventory + traffic snapshot (``repro-omp cache stats``).

        Walks the entries once: count, total bytes, and a per-producing-
        version breakdown from each entry's ``cache_meta`` (entries from
        before ``cache_meta`` existed report as ``"unknown"``, unparseable
        ones as ``"corrupt"``).  Traffic counters describe *this process's*
        cache object since construction/:meth:`clear`, so ``hit_rate`` is
        ``None`` until the cache has served a lookup.
        """
        entries = 0
        total_bytes = 0
        by_version: dict[str, int] = {}
        for path in self._entry_files():
            entries += 1
            try:
                total_bytes += path.stat().st_size
                meta = json.loads(path.read_text()).get("cache_meta") or {}
                version = str(meta.get("code_version", "unknown"))
            except OSError:
                continue
            except ValueError:
                version = "corrupt"
            by_version[version] = by_version.get(version, 0) + 1
        with self._stats_lock:
            hits, misses, stores = self.hits, self.misses, self.stores
        lookups = hits + misses
        return {
            "cache_dir": str(self.cache_dir),
            "entries": entries,
            "total_bytes": total_bytes,
            "by_version": dict(sorted(by_version.items())),
            "hits": hits,
            "misses": misses,
            "stores": stores,
            "hit_rate": hits / lookups if lookups else None,
            "code_version": _code_version,
            "cache_schema": CACHE_SCHEMA_VERSION,
        }

    def gc(self) -> dict:
        """Prune entries the current code version can never hit.

        Keys embed the code + schema version, so bumping either orphans
        every older entry under a key no lookup will compute again.  For
        each entry, recompute the key from the stored config: a mismatch
        against the filename means the entry predates the current version
        (or config encoding) — dead weight, deleted.  Unparseable entries
        are deleted too (``get`` would anyway), and stale tmp files are
        swept.  Returns ``{"kept", "removed_stale", "removed_corrupt",
        "removed_tmp"}`` counts.
        """
        from repro.harness.config import ExperimentConfig

        kept = removed_stale = removed_corrupt = 0
        for path in self._entry_files():
            try:
                data = json.loads(path.read_text())
                config = ExperimentConfig.from_dict(data["config"])
                key = cache_key(config)
            except Exception:
                path.unlink(missing_ok=True)
                removed_corrupt += 1
                continue
            if key != path.name[: -len(".json")]:
                path.unlink(missing_ok=True)
                removed_stale += 1
            else:
                kept += 1
        removed_tmp = self.sweep_stale_tmp()
        return {
            "kept": kept,
            "removed_stale": removed_stale,
            "removed_corrupt": removed_corrupt,
            "removed_tmp": removed_tmp,
        }

    def __len__(self) -> int:
        """Number of committed entries (manifests and tmp files never count)."""
        return sum(1 for _ in self._entry_files())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache({str(self.cache_dir)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
