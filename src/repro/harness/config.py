"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.omp.env import OMPEnvironment
from repro.omp.vendor import WaitPolicy, get_runtime_profile
from repro.types import ProcBind, ScheduleKind


def _jsonify(value: Any) -> Any:
    """Normalize to JSON-representable shapes (tuples become lists), so a
    ``to_dict()`` payload equals its own JSON round-trip."""
    if isinstance(value, (tuple, list)):
        return [_jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {k: _jsonify(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class ExperimentConfig:
    """One benchmark launch configuration.

    Attributes
    ----------
    platform:
        Platform preset name (``dardel`` / ``vera`` / ``toy``).
    benchmark:
        ``syncbench`` / ``schedbench`` / ``babelstream``.
    num_threads:
        ``OMP_NUM_THREADS``.
    places / proc_bind:
        ``OMP_PLACES`` / ``OMP_PROC_BIND``.  ``proc_bind="false"`` leaves
        placement to the OS (the paper's "before thread-pinning").
    runs:
        Independent benchmark invocations (the paper uses 10).
    seed:
        Master seed; everything downstream is derived from it.
    benchmark_params:
        Keyword overrides for the benchmark's parameter dataclass
        (e.g. ``{"outer_reps": 20}`` to shrink a test).
    noise:
        OS-noise profile selector: ``"default"`` uses the platform's
        calibrated profile, ``"quiet"`` ablates all noise sources (the
        experiment drivers sweep this to attribute variability).
    runtime:
        OpenMP implementation vendor profile (``"gnu"`` = GCC libgomp, the
        historical default; ``"llvm"`` = LLVM libomp); see
        :mod:`repro.omp.vendor`.
    wait_policy:
        ``OMP_WAIT_POLICY`` override (``"active"`` / ``"passive"``);
        ``None`` keeps the vendor's default.
    freq_logging / logger_cpu:
        Run the frequency logger on a (spare) CPU during every run.
    label:
        Optional display label; defaults to a generated one.
    """

    platform: str = "vera"
    benchmark: str = "syncbench"
    num_threads: int = 4
    places: str | None = "cores"
    proc_bind: str = "close"
    schedule: str = "static"
    schedule_chunk: int | None = None
    runs: int = 10
    seed: int = 42
    benchmark_params: Mapping[str, Any] = field(default_factory=dict)
    noise: str = "default"
    runtime: str = "gnu"
    wait_policy: str | None = None
    freq_logging: bool = False
    logger_cpu: int | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if self.num_threads <= 0:
            raise ConfigurationError("num_threads must be positive")
        if self.runs <= 0:
            raise ConfigurationError("runs must be positive")
        try:
            ProcBind(self.proc_bind)
        except ValueError:
            raise ConfigurationError(f"bad proc_bind {self.proc_bind!r}") from None
        try:
            ScheduleKind(self.schedule)
        except ValueError:
            raise ConfigurationError(f"bad schedule {self.schedule!r}") from None
        if self.noise not in ("default", "quiet"):
            raise ConfigurationError(
                f"bad noise profile {self.noise!r}; choose 'default' or 'quiet'"
            )
        # normalize case before validation so 'GNU' and 'gnu' are the same
        # config (and the same cache key)
        object.__setattr__(self, "runtime", self.runtime.lower())
        get_runtime_profile(self.runtime)  # raises on unknown vendors
        if self.wait_policy is not None:
            object.__setattr__(self, "wait_policy", self.wait_policy.lower())
            try:
                WaitPolicy(self.wait_policy)
            except ValueError:
                raise ConfigurationError(
                    f"bad wait_policy {self.wait_policy!r}; choose from "
                    f"{sorted(p.value for p in WaitPolicy)}"
                ) from None

    # -- derived ---------------------------------------------------------------

    @property
    def display_label(self) -> str:
        if self.label:
            return self.label
        bind = self.proc_bind if self.proc_bind != "false" else "unbound"
        runtime = "" if self.runtime == "gnu" else f" rt={self.runtime}"
        policy = "" if self.wait_policy is None else f" wait={self.wait_policy}"
        return (
            f"{self.benchmark}@{self.platform} n={self.num_threads} "
            f"{bind}{runtime}{policy} seed={self.seed}"
        )

    def runtime_profile(self):
        """The resolved vendor profile (before env wait-policy overrides)."""
        return get_runtime_profile(self.runtime)

    def omp_environment(self) -> OMPEnvironment:
        return OMPEnvironment(
            num_threads=self.num_threads,
            places=self.places,
            proc_bind=ProcBind(self.proc_bind),
            schedule=ScheduleKind(self.schedule),
            schedule_chunk=self.schedule_chunk,
            wait_policy=(
                None if self.wait_policy is None else WaitPolicy(self.wait_policy)
            ),
        )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        return {
            "platform": self.platform,
            "benchmark": self.benchmark,
            "num_threads": self.num_threads,
            "places": self.places,
            "proc_bind": self.proc_bind,
            "schedule": self.schedule,
            "schedule_chunk": self.schedule_chunk,
            "runs": self.runs,
            "seed": self.seed,
            "benchmark_params": _jsonify(dict(self.benchmark_params)),
            "noise": self.noise,
            "runtime": self.runtime,
            "wait_policy": self.wait_policy,
            "freq_logging": self.freq_logging,
            "logger_cpu": self.logger_cpu,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentConfig":
        return cls(**data)
