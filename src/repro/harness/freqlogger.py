"""The frequency logger (paper Section 3, "Frequency logging on a separate
core").

A background sampler pinned to a spare CPU reads ``scaling_cur_freq`` of
every CPU at a fixed interval through the simulated sysfs.  It is
implemented as a :mod:`repro.sim` process driven by the event engine — the
same structure as the authors' background Python script — and its CPU is
marked busy to the noise/placement models so the logger itself perturbs
the benchmark as little as possible (and measurably, if you pin it onto a
benchmark core on purpose).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HarnessError
from repro.freq.dvfs import FrequencyPlan, FrequencySpec
from repro.freq.sysfs import CpuFreqSysfs
from repro.sim.engine import Engine
from repro.sim.process import Timeout


@dataclass(frozen=True)
class FrequencyLog:
    """Sampled frequencies: ``freqs_khz[i, c]`` at ``times[i]`` for cpu c."""

    logger_cpu: int
    interval: float
    times: np.ndarray = field(compare=False)
    freqs_khz: np.ndarray = field(compare=False)

    @property
    def n_samples(self) -> int:
        return int(self.times.size)

    def cpu_series(self, cpu: int) -> np.ndarray:
        return self.freqs_khz[:, cpu]

    def min_freq_ghz(self) -> float:
        return float(self.freqs_khz.min()) / 1e6

    def max_freq_ghz(self) -> float:
        return float(self.freqs_khz.max()) / 1e6

    def band_occupancy(self, low_ghz: float) -> float:
        """Fraction of (sample, cpu) readings below *low_ghz* — the paper's
        "brown region": how often cores sat in a dipped state."""
        return float(np.mean(self.freqs_khz < low_ghz * 1e6))

    def summary(self) -> str:
        return (
            f"freqlog: {self.n_samples} samples @ {self.interval * 1e3:.1f} ms "
            f"on cpu {self.logger_cpu}; observed "
            f"{self.min_freq_ghz():.2f}-{self.max_freq_ghz():.2f} GHz"
        )


class FrequencyLogger:
    """Samples a run's frequency plan the way the real logger samples sysfs."""

    def __init__(self, logger_cpu: int, interval: float = 0.01):
        if interval <= 0:
            raise HarnessError(f"logger interval must be positive, got {interval}")
        self.logger_cpu = int(logger_cpu)
        self.interval = float(interval)

    def capture(
        self,
        spec: FrequencySpec,
        plan: FrequencyPlan,
        governor_name: str,
        t_start: float,
        t_end: float,
    ) -> FrequencyLog:
        """Run the sampling process over ``[t_start, t_end]``."""
        if t_end <= t_start:
            raise HarnessError("empty logging window")
        sysfs = CpuFreqSysfs(spec, plan, governor_name)
        times: list[float] = []
        rows: list[np.ndarray] = []

        engine = Engine()
        engine.clock.advance_to(t_start)

        def sampler():
            while engine.clock.now <= t_end:
                times.append(engine.clock.now)
                rows.append(sysfs.snapshot_khz(engine.clock.now))
                yield Timeout(self.interval)

        engine.spawn(sampler(), name="freqlogger")
        engine.run(until=t_end)
        if not times:
            raise HarnessError("logger captured no samples")
        return FrequencyLog(
            logger_cpu=self.logger_cpu,
            interval=self.interval,
            times=np.asarray(times),
            freqs_khz=np.vstack(rows),
        )
