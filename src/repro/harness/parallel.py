"""Parallel execution of experiment runs over a process pool.

The paper's evaluation is a sweep of *independent* benchmark runs: the named
RNG streams in :mod:`repro.rng` derive every run's realization from
``(master seed, run index)`` alone, so run 7 is the same realization whether
it is simulated alone, serially after runs 0-6, or concurrently on another
process.  That makes fan-out trivially deterministic: each worker
reconstructs the platform + runtime from the (picklable) config and executes
single runs by index, and the parent reassembles records in run order.  The
output is therefore *bit-identical* to the serial :class:`Runner`.

Two entry points:

* :class:`ParallelRunner` — drop-in parallel counterpart of
  :class:`~repro.harness.runner.Runner` for one config
  (``jobs=1`` degenerates to the serial runner);
* :class:`Sweep` — schedules the runs of *many* configs into one shared
  pool, interleaved round-robin by run index so short configs don't
  serialize behind long ones, with an optional
  :class:`~repro.harness.cache.ResultCache` consulted per config before any
  simulation is scheduled.

:class:`Sweep` is the execution backend of the declarative
:class:`~repro.harness.study.Study` API: a study expands its axes into a
config list and hands the whole list to one ``Sweep``, so every study —
and every experiment driver built on one — inherits the same fan-out,
interleaving and caching semantics described here.

Workers keep a per-process table of constructed runners keyed by the
config's cache key, so a config's platform/runtime/benchmark stack is built
at most once per worker rather than once per run.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Sequence

from repro.errors import ConfigurationError
from repro.harness.cache import ResultCache, cache_key
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult, RunRecord
from repro.harness.runner import Runner
from repro.obs.metrics import MetricsRegistry

__all__ = ["ParallelRunner", "Sweep", "resolve_jobs"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a job-count request: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be positive, got {jobs}")
    return jobs


#: Per-worker-process table of constructed runners (config key -> Runner).
_WORKER_RUNNERS: dict[str, Runner] = {}


def _execute_run(
    key: str, config: ExperimentConfig, run_index: int
) -> tuple[RunRecord, float]:
    """Worker entry point: simulate one run of *config* by index.

    Returns the record stamped with execution provenance (worker id + wall
    duration; both ``compare=False`` and never serialized, see
    :class:`~repro.harness.results.RunRecord`) alongside the wall time at
    which the worker actually started — the parent subtracts its submit time
    to measure queue wait.
    """
    t_started = time.time()
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = _WORKER_RUNNERS[key] = Runner(config)
    record = runner.run_one(run_index)
    stamped = replace(
        record,
        worker_id=f"pid{os.getpid()}",
        wall_seconds=time.time() - t_started,
    )
    return stamped, t_started


class Sweep:
    """Batch executor: many configs, one shared process pool, one cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` executes serially in-process (the
        degenerate case, no pool); ``None``/``0`` use every core.
    cache:
        Optional :class:`ResultCache`.  Each config is looked up before
        scheduling; finished results (cached or fresh) are written back.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` (plane 2 of
        :mod:`repro.obs`).  When given, each :meth:`run` records config
        counts (total/cached/simulated), cache hit/miss/store deltas,
        per-run and per-config wall times, pool worker count and
        utilization, and queue-wait times.  Telemetry only — results are
        byte-identical with or without it.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.metrics = metrics
        #: Wall seconds each config of the most recent :meth:`run` took
        #: (aligned with its ``configs`` argument; cache hits cost ~0).
        #: The Study layer aggregates these per axis value.
        self.last_config_walls: list[float] = []

    def run(self, configs: Sequence[ExperimentConfig]) -> list[ExperimentResult]:
        """Execute every config; results come back in input order."""
        configs = list(configs)
        results: list[ExperimentResult | None] = [None] * len(configs)
        walls = [0.0] * len(configs)
        cache = self.cache
        cache_before = (
            (cache.hits, cache.misses, cache.stores) if cache is not None else None
        )

        pending: list[tuple[int, ExperimentConfig, str]] = []
        for i, cfg in enumerate(configs):
            if cache is not None:
                hit = cache.get(cfg)
                if hit is not None:
                    results[i] = hit
                    continue
            pending.append((i, cfg, cache_key(cfg)))

        if pending:
            if self.jobs == 1:
                for i, cfg, _key in pending:
                    t_cfg = time.time()
                    runner = Runner(cfg)
                    records = []
                    for run in range(cfg.runs):
                        t_run = time.time()
                        record = runner.run_one(run)
                        records.append(replace(
                            record,
                            worker_id="main",
                            wall_seconds=time.time() - t_run,
                        ))
                    results[i] = ExperimentResult(
                        config=cfg, records=tuple(records)
                    )
                    walls[i] = time.time() - t_cfg
            else:
                self._run_pool(pending, results, walls)
            if cache is not None:
                for i, _cfg, _key in pending:
                    cache.put(results[i])

        self.last_config_walls = walls
        if self.metrics is not None:
            self._record_metrics(
                self.metrics, len(configs), pending, results, walls, cache_before
            )
        return results  # type: ignore[return-value]

    def _run_pool(
        self,
        pending: list[tuple[int, ExperimentConfig, str]],
        results: list[ExperimentResult | None],
        walls: list[float],
    ) -> None:
        # interleave round-robin by run index so every config makes progress
        # from the start instead of queueing whole configs FIFO
        tasks = sorted(
            (
                (run, i, cfg, key)
                for i, cfg, key in pending
                for run in range(cfg.runs)
            ),
        )
        max_workers = min(self.jobs, len(tasks))
        m = self.metrics
        t_pool = time.time()
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            submits: dict[tuple[int, int], float] = {}
            futures = {}
            for run, i, cfg, key in tasks:
                submits[(i, run)] = time.time()
                futures[(i, run)] = pool.submit(_execute_run, key, cfg, run)
            for i, cfg, _key in pending:
                records = []
                for run in range(cfg.runs):
                    record, t_started = futures[(i, run)].result()
                    records.append(record)
                    if m is not None:
                        m.histogram("queue_wait_seconds").observe(
                            max(0.0, t_started - submits[(i, run)])
                        )
                results[i] = ExperimentResult(config=cfg, records=tuple(records))
                # pooled configs report the CPU time their runs consumed
                # (run walls overlap across workers, so elapsed is not it)
                walls[i] = sum(r.wall_seconds or 0.0 for r in records)
        if m is not None:
            elapsed = time.time() - t_pool
            busy = sum(walls[i] for i, _cfg, _key in pending)
            m.gauge("pool_elapsed_seconds").set(elapsed)
            m.gauge("pool_utilization").set(
                min(1.0, busy / (elapsed * max_workers)) if elapsed > 0 else 0.0
            )
            used = {
                rec.worker_id
                for i, _cfg, _key in pending
                for rec in results[i].records
            }
            m.gauge("pool_workers_used").set(len(used))

    def _record_metrics(
        self,
        m: MetricsRegistry,
        n_configs: int,
        pending: list[tuple[int, ExperimentConfig, str]],
        results: list[ExperimentResult | None],
        walls: list[float],
        cache_before: tuple[int, int, int] | None,
    ) -> None:
        m.gauge("pool_workers").set(self.jobs)
        m.counter("configs_total").inc(n_configs)
        m.counter("configs_simulated").inc(len(pending))
        m.counter("configs_cached").inc(n_configs - len(pending))
        for i, _cfg, _key in pending:
            m.histogram("config_wall_seconds").observe(walls[i])
            for rec in results[i].records:
                if rec.wall_seconds is not None:
                    m.histogram("run_wall_seconds").observe(rec.wall_seconds)
        if cache_before is not None and self.cache is not None:
            h0, mi0, s0 = cache_before
            m.counter("cache_hits").inc(self.cache.hits - h0)
            m.counter("cache_misses").inc(self.cache.misses - mi0)
            m.counter("cache_stores").inc(self.cache.stores - s0)


class ParallelRunner:
    """Parallel counterpart of :class:`~repro.harness.runner.Runner`.

    Fans the runs of one :class:`ExperimentConfig` out over a process pool;
    ``ParallelRunner(cfg, jobs=1).run()`` is exactly ``Runner(cfg).run()``
    and any ``jobs`` produces bit-identical results (see module docstring).
    """

    def __init__(
        self,
        config: ExperimentConfig,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config
        self._sweep = Sweep(jobs=jobs, cache=cache, metrics=metrics)

    @property
    def jobs(self) -> int:
        return self._sweep.jobs

    def run(self) -> ExperimentResult:
        return self._sweep.run([self.config])[0]
