"""Parallel execution of experiment runs over a process pool.

The paper's evaluation is a sweep of *independent* benchmark runs: the named
RNG streams in :mod:`repro.rng` derive every run's realization from
``(master seed, run index)`` alone, so run 7 is the same realization whether
it is simulated alone, serially after runs 0-6, or concurrently on another
process.  That makes fan-out trivially deterministic: each worker
reconstructs the platform + runtime from the (picklable) config and executes
single runs by index, and the parent reassembles records in run order.  The
output is therefore *bit-identical* to the serial :class:`Runner`.

Two entry points:

* :class:`ParallelRunner` — drop-in parallel counterpart of
  :class:`~repro.harness.runner.Runner` for one config
  (``jobs=1`` degenerates to the serial runner);
* :class:`Sweep` — schedules the runs of *many* configs into one shared
  pool, interleaved round-robin by run index so short configs don't
  serialize behind long ones, with an optional
  :class:`~repro.harness.cache.ResultCache` consulted per config before any
  simulation is scheduled.

:class:`Sweep` is the execution backend of the declarative
:class:`~repro.harness.study.Study` API: a study expands its axes into a
config list and hands the whole list to one ``Sweep``, so every study —
and every experiment driver built on one — inherits the same fan-out,
interleaving and caching semantics described here.

Workers keep a per-process table of constructed runners keyed by the
config's cache key, so a config's platform/runtime/benchmark stack is built
at most once per worker rather than once per run.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.errors import ConfigurationError
from repro.harness.cache import ResultCache, cache_key
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult, RunRecord
from repro.harness.runner import Runner

__all__ = ["ParallelRunner", "Sweep", "resolve_jobs"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a job-count request: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be positive, got {jobs}")
    return jobs


#: Per-worker-process table of constructed runners (config key -> Runner).
_WORKER_RUNNERS: dict[str, Runner] = {}


def _execute_run(key: str, config: ExperimentConfig, run_index: int) -> RunRecord:
    """Worker entry point: simulate one run of *config* by index."""
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = _WORKER_RUNNERS[key] = Runner(config)
    return runner.run_one(run_index)


class Sweep:
    """Batch executor: many configs, one shared process pool, one cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` executes serially in-process (the
        degenerate case, no pool); ``None``/``0`` use every core.
    cache:
        Optional :class:`ResultCache`.  Each config is looked up before
        scheduling; finished results (cached or fresh) are written back.
    """

    def __init__(self, jobs: int | None = 1, cache: ResultCache | None = None):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache

    def run(self, configs: Sequence[ExperimentConfig]) -> list[ExperimentResult]:
        """Execute every config; results come back in input order."""
        configs = list(configs)
        results: list[ExperimentResult | None] = [None] * len(configs)

        pending: list[tuple[int, ExperimentConfig, str]] = []
        for i, cfg in enumerate(configs):
            if self.cache is not None:
                hit = self.cache.get(cfg)
                if hit is not None:
                    results[i] = hit
                    continue
            pending.append((i, cfg, cache_key(cfg)))

        if pending:
            if self.jobs == 1:
                for i, cfg, _key in pending:
                    results[i] = Runner(cfg).run()
            else:
                self._run_pool(pending, results)
            if self.cache is not None:
                for i, _cfg, _key in pending:
                    self.cache.put(results[i])

        return results  # type: ignore[return-value]

    def _run_pool(
        self,
        pending: list[tuple[int, ExperimentConfig, str]],
        results: list[ExperimentResult | None],
    ) -> None:
        # interleave round-robin by run index so every config makes progress
        # from the start instead of queueing whole configs FIFO
        tasks = sorted(
            (
                (run, i, cfg, key)
                for i, cfg, key in pending
                for run in range(cfg.runs)
            ),
        )
        max_workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                (i, run): pool.submit(_execute_run, key, cfg, run)
                for run, i, cfg, key in tasks
            }
            for i, cfg, _key in pending:
                records = tuple(
                    futures[(i, run)].result() for run in range(cfg.runs)
                )
                results[i] = ExperimentResult(config=cfg, records=records)


class ParallelRunner:
    """Parallel counterpart of :class:`~repro.harness.runner.Runner`.

    Fans the runs of one :class:`ExperimentConfig` out over a process pool;
    ``ParallelRunner(cfg, jobs=1).run()`` is exactly ``Runner(cfg).run()``
    and any ``jobs`` produces bit-identical results (see module docstring).
    """

    def __init__(
        self,
        config: ExperimentConfig,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
    ):
        self.config = config
        self._sweep = Sweep(jobs=jobs, cache=cache)

    @property
    def jobs(self) -> int:
        return self._sweep.jobs

    def run(self) -> ExperimentResult:
        return self._sweep.run([self.config])[0]
