"""Batch execution of experiment runs through pluggable backends.

The paper's evaluation is a sweep of *independent* benchmark runs: the named
RNG streams in :mod:`repro.rng` derive every run's realization from
``(master seed, run index)`` alone, so run 7 is the same realization whether
it is simulated alone, serially after runs 0-6, or concurrently on another
process.  That makes fan-out trivially deterministic: each worker
reconstructs the platform + runtime from the (picklable) config and executes
single runs by index, and the parent reassembles records in run order.  The
output is therefore *bit-identical* to the serial :class:`Runner`.

Two entry points:

* :class:`ParallelRunner` — drop-in parallel counterpart of
  :class:`~repro.harness.runner.Runner` for one config
  (``jobs=1`` degenerates to the serial runner);
* :class:`Sweep` — schedules many configs through one
  :class:`~repro.harness.backend.ExecutionBackend`, with an optional
  :class:`~repro.harness.cache.ResultCache` consulted per config before any
  simulation is scheduled.

:class:`Sweep` owns batch *policy* — cache lookups, write-back, result
ordering, telemetry — and delegates the *mechanism* of simulating
cache-missed configs to its backend (:mod:`repro.harness.backend`):
serial in-process, a shared process pool interleaved round-robin by run
index, or one shard of a distributed partition.  A sharded sweep commits
its shard's results plus a shard manifest to the cache and then raises
:class:`~repro.harness.shard.ShardRunComplete` instead of returning — a
shard has no complete result set to hand back (see
:mod:`repro.harness.shard` and ``repro-omp gather``).

Pool workers keep a per-process table of constructed runners keyed by the
config's cache key, so a config's platform/runtime/benchmark stack is built
at most once per worker rather than once per run.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import HarnessError
from repro.harness.backend import (
    ExecutionBackend,
    FusedBackend,
    ProcessPoolBackend,
    SerialBackend,
    ShardedBackend,
    normalize_fused,
    resolve_jobs,
)
from repro.harness.cache import ResultCache, cache_key
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.harness.shard import ShardRunComplete, ShardSummary, write_shard_manifest
from repro.obs.metrics import MetricsRegistry

__all__ = ["ParallelRunner", "Sweep", "resolve_jobs"]


class Sweep:
    """Batch executor: many configs, one execution backend, one cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` executes serially in-process (the
        degenerate case, no pool); ``None``/``0`` use every core.
        Ignored when an explicit *backend* is given.
    cache:
        Optional :class:`ResultCache`.  Each config is looked up before
        scheduling; finished results (cached or fresh) are written back.
        Mandatory for sharded backends — the shared cache directory *is*
        the channel shard workers communicate results through.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` (plane 2 of
        :mod:`repro.obs`).  When given, each :meth:`run` records config
        counts (total/cached/simulated), cache hit/miss/store deltas,
        per-run and per-config wall times, pool worker count and
        utilization, and queue-wait times.  Telemetry only — results are
        byte-identical with or without it.
    backend:
        Explicit :class:`~repro.harness.backend.ExecutionBackend`.  When
        ``None`` (the default), *jobs* picks one:
        :class:`~repro.harness.backend.SerialBackend` for one worker,
        :class:`~repro.harness.backend.ProcessPoolBackend` otherwise.
    fused:
        Fused rep-axis engine mode (``"auto"``/``"on"``/``"off"``, see
        :mod:`repro.sim.fused`); consulted only when no explicit
        *backend* is given.  Fused and scalar execution are
        byte-identical; fusion only changes how fast eligible configs
        simulate.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        metrics: MetricsRegistry | None = None,
        backend: ExecutionBackend | None = None,
        fused: str = "off",
    ):
        if backend is None:
            n = resolve_jobs(jobs)
            fused = normalize_fused(fused)
            if n == 1:
                backend = (
                    SerialBackend() if fused == "off" else FusedBackend(fused)
                )
            else:
                backend = ProcessPoolBackend(n, fused=fused)
        self.backend = backend
        self.jobs = backend.workers
        self.cache = cache
        self.metrics = metrics
        #: Wall seconds each config of the most recent :meth:`run` took
        #: (aligned with its ``configs`` argument; cache hits cost ~0).
        #: The Study layer aggregates these per axis value.
        self.last_config_walls: list[float] = []

    def run(self, configs: Sequence[ExperimentConfig]) -> list[ExperimentResult]:
        """Execute every config; results come back in input order.

        With a sharded backend this executes the shard's subset, writes
        the shard manifest, and raises
        :class:`~repro.harness.shard.ShardRunComplete` — see the module
        docstring.
        """
        configs = list(configs)
        if self.backend.is_sharded:
            self._run_shard(configs)  # raises ShardRunComplete
        results: list[ExperimentResult | None] = [None] * len(configs)
        walls = [0.0] * len(configs)
        cache = self.cache
        cache_before = (
            (cache.hits, cache.misses, cache.stores) if cache is not None else None
        )

        pending: list[tuple[int, ExperimentConfig, str]] = []
        for i, cfg in enumerate(configs):
            if cache is not None:
                hit = cache.get(cfg)
                if hit is not None:
                    results[i] = hit
                    continue
            pending.append((i, cfg, cache_key(cfg)))

        if pending:
            outcomes = self.backend.execute(
                [(cfg, key) for _i, cfg, key in pending], self.metrics
            )
            for (i, _cfg, _key), outcome in zip(pending, outcomes):
                result, wall = outcome
                results[i] = result
                walls[i] = wall
            if cache is not None:
                for i, _cfg, _key in pending:
                    cache.put(results[i])

        self.last_config_walls = walls
        if self.metrics is not None:
            self._record_metrics(
                self.metrics, len(configs), pending, results, walls, cache_before
            )
        return results  # type: ignore[return-value]

    def _run_shard(self, configs: list[ExperimentConfig]) -> None:
        """Execute this worker's shard of *configs*, then stop.

        Looks up the cache for assigned configs only, simulates the
        misses through the backend, writes everything back, records the
        manifest covering the *whole* assigned set (hits included — the
        manifest describes coverage, not work), and raises
        :class:`ShardRunComplete` with the summary.

        Everything that decides membership here is a pure function of the
        configs' cache keys (no wall clock, no pids — DET004), so every
        worker of the partition computes the identical split.
        """
        backend = self.backend
        assert isinstance(backend, ShardedBackend)
        cache = self.cache
        if cache is None:
            raise HarnessError(
                "sharded execution requires a shared cache (--cache-dir): "
                "the cache directory is how shard workers publish results "
                "for gather"
            )
        cache_before = (cache.hits, cache.misses, cache.stores)

        assigned: list[tuple[int, ExperimentConfig, str]] = []
        for i, cfg in enumerate(configs):
            key = cache_key(cfg)
            if backend.assigns(key):
                assigned.append((i, cfg, key))

        pending: list[tuple[int, ExperimentConfig, str]] = []
        for i, cfg, key in assigned:
            if cache.get(cfg) is None:
                pending.append((i, cfg, key))

        m = self.metrics
        if pending:
            outcomes = backend.execute(
                [(cfg, key) for _i, cfg, key in pending], m
            )
            for (_i, _cfg, _key), outcome in zip(pending, outcomes):
                result, wall = outcome
                cache.put(result)
                if m is not None:
                    m.histogram("config_wall_seconds").observe(wall)
                    for rec in result.records:
                        if rec.wall_seconds is not None:
                            m.histogram("run_wall_seconds").observe(
                                rec.wall_seconds
                            )

        if m is not None:
            label = backend.label
            m.gauge("pool_workers").set(backend.workers)
            m.counter("configs_total").inc(len(configs))
            m.counter("configs_simulated").inc(len(pending))
            m.counter("configs_cached").inc(len(assigned) - len(pending))
            m.counter("shard_configs_assigned", shard=label).inc(len(assigned))
            m.counter("shard_configs_simulated", shard=label).inc(len(pending))
            m.counter("shard_configs_cached", shard=label).inc(
                len(assigned) - len(pending)
            )
            h0, mi0, s0 = cache_before
            m.counter("cache_hits").inc(cache.hits - h0)
            m.counter("cache_misses").inc(cache.misses - mi0)
            m.counter("cache_stores").inc(cache.stores - s0)

        manifest = write_shard_manifest(
            cache,
            backend.shard_index,
            backend.shard_count,
            [cfg for _i, cfg, _key in assigned],
            telemetry=m.to_dict() if m is not None else None,
        )
        raise ShardRunComplete(ShardSummary(
            shard_index=backend.shard_index,
            shard_count=backend.shard_count,
            configs_total=len(configs),
            assigned=len(assigned),
            simulated=len(pending),
            cached=len(assigned) - len(pending),
            manifest_path=manifest,
        ))

    def _record_metrics(
        self,
        m: MetricsRegistry,
        n_configs: int,
        pending: list[tuple[int, ExperimentConfig, str]],
        results: list[ExperimentResult | None],
        walls: list[float],
        cache_before: tuple[int, int, int] | None,
    ) -> None:
        m.gauge("pool_workers").set(self.jobs)
        m.counter("configs_total").inc(n_configs)
        m.counter("configs_simulated").inc(len(pending))
        m.counter("configs_cached").inc(n_configs - len(pending))
        for i, _cfg, _key in pending:
            m.histogram("config_wall_seconds").observe(walls[i])
            for rec in results[i].records:
                if rec.wall_seconds is not None:
                    m.histogram("run_wall_seconds").observe(rec.wall_seconds)
        if cache_before is not None and self.cache is not None:
            h0, mi0, s0 = cache_before
            m.counter("cache_hits").inc(self.cache.hits - h0)
            m.counter("cache_misses").inc(self.cache.misses - mi0)
            m.counter("cache_stores").inc(self.cache.stores - s0)


class ParallelRunner:
    """Parallel counterpart of :class:`~repro.harness.runner.Runner`.

    Fans the runs of one :class:`ExperimentConfig` out over a process pool;
    ``ParallelRunner(cfg, jobs=1).run()`` is exactly ``Runner(cfg).run()``
    and any ``jobs`` produces bit-identical results (see module docstring).
    """

    def __init__(
        self,
        config: ExperimentConfig,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        metrics: MetricsRegistry | None = None,
        backend: ExecutionBackend | None = None,
        fused: str = "off",
    ):
        self.config = config
        self._sweep = Sweep(
            jobs=jobs, cache=cache, metrics=metrics, backend=backend, fused=fused
        )

    @property
    def jobs(self) -> int:
        return self._sweep.jobs

    def run(self) -> ExperimentResult:
        return self._sweep.run([self.config])[0]
