"""The experiment runner: N independent runs of one configuration."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.bench.babelstream import BabelStream, BabelStreamParams
from repro.bench.epcc.schedbench import Schedbench, SchedbenchParams
from repro.bench.epcc.syncbench import Syncbench, SyncbenchParams
from repro.bench.taskbench import Taskbench, TaskbenchParams
from repro.errors import ConfigurationError, HarnessError
from repro.harness.config import ExperimentConfig
from repro.harness.freqlogger import FrequencyLogger
from repro.harness.results import ExperimentResult, RunRecord
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.omp.runtime import OpenMPRuntime, RunContext
from repro.platform import get_platform
from repro.rng import RngFactory
from repro.types import ScheduleKind, SyncConstruct


class Runner:
    """Executes an :class:`ExperimentConfig` into an :class:`ExperimentResult`.

    A benchmark "run" corresponds to one launch of the real benchmark
    binary: a fresh OS placement, frequency realization and noise
    realization, followed by the benchmark's own outer repetitions.
    """

    def __init__(self, config: ExperimentConfig, tracer: Tracer = NULL_TRACER):
        self.config = config
        self.tracer = tracer
        self.platform = get_platform(config.platform)
        if config.noise == "quiet":
            self.platform = self.platform.quiet()
        self.env = config.omp_environment()
        # vendor profile from the config; env carries wait-policy overrides
        self.runtime = OpenMPRuntime(
            self.platform, self.env, profile=config.runtime_profile()
        )
        self.rng_factory = RngFactory(config.seed).child(
            config.platform, config.benchmark, config.num_threads, config.proc_bind
        )
        self._bench = self._make_benchmark()

    # -- benchmark construction -----------------------------------------------

    def _make_benchmark(self) -> Any:
        name = self.config.benchmark.lower()
        params = dict(self.config.benchmark_params)
        try:
            return self._build_benchmark(name, params)
        except TypeError as exc:
            # a mistyped/unknown benchmark parameter (e.g. --param bogus=1,
            # or a sweep axis that matches no knob of this benchmark) fails
            # the params-dataclass construction with TypeError; surface it
            # as a configuration error instead of a raw traceback
            raise ConfigurationError(
                f"bad parameters for benchmark {name!r}: {exc}"
            ) from exc

    def _build_benchmark(self, name: str, params: dict) -> Any:
        if name == "syncbench":
            constructs = params.pop("constructs", None)
            bench = Syncbench(SyncbenchParams(**params))
            bench_constructs = (
                tuple(SyncConstruct(c) for c in constructs)
                if constructs is not None
                else (SyncConstruct.REDUCTION,)
            )
            return ("syncbench", bench, bench_constructs)
        if name == "schedbench":
            schedules = params.pop("schedules", None)
            bench = Schedbench(SchedbenchParams(**params))
            if schedules is None:
                sched_list = (
                    (ScheduleKind(self.config.schedule), self.config.schedule_chunk),
                )
            else:
                sched_list = tuple(
                    (ScheduleKind(k), c) for k, c in schedules
                )
            return ("schedbench", bench, sched_list)
        if name == "babelstream":
            bench = BabelStream(BabelStreamParams(**params))
            return ("babelstream", bench, None)
        if name == "taskbench":
            bench = Taskbench(TaskbenchParams(**params))
            return ("taskbench", bench, None)
        raise HarnessError(f"unknown benchmark {self.config.benchmark!r}")

    # -- horizon estimation ------------------------------------------------------

    def _horizon(self, ctx_threads: int) -> float:
        kind, bench, payload = self._bench
        if kind == "syncbench":
            return bench.horizon_estimate() * (len(payload) + 0.5)
        if kind == "schedbench":
            return bench.horizon_estimate(ctx_threads) * (len(payload) + 0.5)
        if kind == "taskbench":
            return bench.horizon_estimate(ctx_threads) * 1.5
        # babelstream: needs a context to price kernels; use a generous bound
        p = bench.params
        per_iter = 5 * p.array_bytes * 3 / 20e9 + 5 * p.kernel_gap
        return p.num_times * per_iter * 4.0 + 1.0

    # -- execution -----------------------------------------------------------------

    def planned_cpus(self) -> tuple[int, ...]:
        """CPUs the benchmark team is planned to occupy.

        Bound runs resolve OMP_PLACES/OMP_PROC_BIND to an exact cpuset.  An
        unbound team's placement is the OS's choice and unknowable ahead of
        time, except when the team needs every CPU of the machine.
        """
        if self.env.bound:
            return tuple(self.runtime.resolve_bound_team().cpus)
        if self.config.num_threads >= self.platform.machine.n_cpus:
            return tuple(range(self.platform.machine.n_cpus))
        return ()

    def _logger_cpu(self) -> int:
        n_cpus = self.platform.machine.n_cpus
        planned = set(self.planned_cpus())
        if self.config.logger_cpu is not None:
            cpu = self.config.logger_cpu
        else:
            # default: the last CPU of the machine (a spare core in the
            # paper's configurations, which leave at least 2 CPUs free)
            cpu = n_cpus - 1
        if cpu in planned:
            free = [c for c in range(n_cpus) if c not in planned]
            hint = (
                f"; pass logger_cpu={free[-1]}" if free
                else "; no CPU is free for the logger on this machine"
            )
            raise HarnessError(
                f"frequency logger CPU {cpu} collides with the benchmark "
                f"team's planned cpuset {sorted(planned)}{hint}"
            )
        return cpu

    def start_run_context(
        self, run_index: int
    ) -> tuple[RunContext, FrequencyLogger | None]:
        """Realize one run's context (and its frequency logger, if any).

        The per-run setup shared by the scalar loop (:meth:`run_one`) and
        the fused rep-axis engine (:func:`repro.sim.fused.run_fused`).
        """
        cfg = self.config
        extra_busy: tuple[int, ...] = ()
        logger = None
        if cfg.freq_logging:
            logger = FrequencyLogger(self._logger_cpu())
            extra_busy = (logger.logger_cpu,)
        horizon = self._horizon(cfg.num_threads)
        tracer = self.tracer
        if tracer.enabled:
            tracer.begin_run(run_index)
        ctx = self.runtime.start_run(
            run_index, self.rng_factory, horizon, extra_busy_cpus=extra_busy,
            tracer=tracer,
        )
        return ctx, logger

    def capture_freq_log(self, ctx: RunContext, logger: FrequencyLogger | None):
        """Post-run frequency-logger capture (``None`` without logging)."""
        if logger is None:
            return None
        return logger.capture(
            self.platform.freq_spec,
            ctx.freq_plan,
            self.platform.default_governor,
            0.0,
            max(ctx.t, 1e-3),
        )

    def run_one(self, run_index: int) -> RunRecord:
        ctx, logger = self.start_run_context(run_index)
        tracer = self.tracer

        kind, bench, payload = self._bench
        series: dict[str, Any] = {}
        if kind == "syncbench":
            for construct in payload:
                m = bench.measure(ctx, construct)
                series[construct.value] = m.rep_times
                # EPCC's reported metric: per-construct overhead
                series[f"{construct.value}.overhead"] = np.maximum(
                    m.overheads, 0.0
                )
        elif kind == "schedbench":
            for sched_kind, chunk in payload:
                m = bench.measure(ctx, sched_kind, chunk)
                series[m.label] = m.rep_times
        elif kind == "taskbench":
            tm = bench.measure(ctx)
            series[tm.label] = tm.rep_times
            series.update(tm.metric_series())
        else:  # babelstream
            sm = bench.run(ctx)
            for kernel, times in sm.times.items():
                series[kernel.value] = times

        if tracer.enabled:
            # paint the realized OS noise under the run we just executed
            ctx.noise.trace_onto(
                tracer, sorted(set(ctx.team.cpus)), 0.0, max(ctx.t, 1e-9)
            )
        freq_log = self.capture_freq_log(ctx, logger)
        return RunRecord(run_index=run_index, series=series, freq_log=freq_log)

    def run(self) -> ExperimentResult:
        records = tuple(self.run_one(i) for i in range(self.config.runs))
        return ExperimentResult(config=self.config, records=records)
