"""Canonical experiment drivers — one per table/figure of the paper.

Every public function regenerates one artifact of the evaluation section
and returns an :class:`ExperimentArtifact` carrying both structured data
(for assertions and further analysis) and an ASCII rendering (the
"figure").  Default arguments are the paper's scale (10 runs x 100
repetitions); tests and the pytest-benchmark harness pass reduced values.

Every driver declares its sweep as a :class:`~repro.harness.study.Study`:
the axes (``grid`` / ``zip`` / ``cases``), derived fields and filters
compose into the explicit config list, and ``Study.run`` executes it —
so a driver is the sweep declaration plus the artifact rendering, and a
new scenario needs no hand-rolled config assembly (or, via the
``repro-omp sweep`` CLI, no Python at all).  The rendered artifacts are
regression-locked byte-for-byte against the pre-Study drivers
(``tests/test_study.py``).

Every driver accepts two execution knobs, forwarded to ``Study.run``:

``jobs``
    Worker processes for the run fan-out (default ``1`` = serial, the
    historical behavior; ``0``/``None`` = every core).  Each driver's
    study schedules *all* of its configs through one shared
    :class:`~repro.harness.parallel.Sweep`, so the runs of short configs
    interleave with long ones instead of serializing behind them.  Results
    are bit-identical to serial execution for any ``jobs``.
``cache``
    Optional :class:`~repro.harness.cache.ResultCache`; configs already in
    the cache are replayed from disk without any simulation.

Index (see DESIGN.md section 4):

========  ==================================================================
table2    schedbench dynamic_1 total times, Dardel@{4,254} / Vera@{4,30}
figure1   syncbench (reduction) time vs thread count, both platforms
figure2   BabelStream kernel times vs thread count, both platforms
figure3   scalability of normalized min/max variability, 3 benchmarks x 2
figure4   pinning on/off on Dardel (schedbench@16, syncbench@128, stream@128)
figure5   ST vs MT on Dardel (schedbench@128, syncbench@32, stream@128)
figure6   Vera schedbench, 16 cores on 1 vs 2 NUMA domains + freq traces
figure7   Vera syncbench, same configurations
figure8   taskbench work-stealing, threads x grainsize x noise on Vera

runtime_compare  vendor (libgomp/libomp) x wait-policy x threads, both
                 platforms — an open-comparison scenario beyond the paper
========  ==================================================================

Drivers register themselves through the :func:`experiment` decorator; the
CLI (``repro-omp list`` / ``repro-omp experiment``) and the bench harness
discover them from the registry, so a new driver needs no dispatch edits
anywhere else.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import HarnessError
from repro.harness.backend import ExecutionBackend
from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig
from repro.harness.report import (
    render_pivot,
    render_series,
    render_table,
    render_tasking_summary,
)
from repro.harness.study import Study
from repro.stats.descriptive import summarize
from repro.types import StreamKernel, SyncConstruct
from repro.units import to_ms, to_us


@dataclass(frozen=True)
class ExperimentArtifact:
    """One regenerated table/figure."""

    name: str
    description: str
    sections: tuple[tuple[str, str], ...]
    data: dict[str, Any] = field(compare=False, default_factory=dict)

    def render(self) -> str:
        parts = [f"### {self.name}: {self.description}"]
        for title, text in self.sections:
            parts.append(f"--- {title} ---")
            parts.append(text)
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment driver.

    ``rep_params`` names the driver's repetition knobs (``outer_reps`` /
    ``num_times``), extracted from the signature at registration so callers
    like the CLI's ``--reps`` can map one number onto whichever knobs a
    driver has.

    ``study_builder`` is the driver's sweep declaration factored out as a
    pure function of the scale knobs (no ``jobs``/``cache``/``backend``):
    it returns the exact :class:`~repro.harness.study.Study` the driver
    executes.  The job service builds experiment jobs from it, and the
    schema round-trip tests lock it to the driver's own config list.
    """

    name: str
    driver: Callable[..., ExperimentArtifact]
    description: str
    rep_params: tuple[str, ...]
    study_builder: Callable[..., Study] | None = None

    def build_study(self, **knobs: Any) -> Study:
        """Call ``study_builder`` with the knobs its signature accepts.

        Unknown knobs are dropped (a caller mapping ``--reps`` onto both
        rep param names can pass the union), so one call site serves every
        registered experiment.
        """
        if self.study_builder is None:
            raise HarnessError(
                f"experiment {self.name!r} does not declare a study builder"
            )
        params = inspect.signature(self.study_builder).parameters
        accepted = {k: v for k, v in knobs.items() if k in params}
        return self.study_builder(**accepted)


#: name -> spec, populated by the :func:`experiment` decorator.
EXPERIMENTS: dict[str, ExperimentSpec] = {}

#: Legacy name -> driver view of the registry (kept for callers that only
#: need the callable, e.g. the bench harness).
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentArtifact]] = {}

_REP_PARAM_NAMES = ("outer_reps", "num_times")


def experiment(
    description: str,
    name: str | None = None,
    study: Callable[..., Study] | None = None,
):
    """Register an experiment driver under *name* (default: function name).

    *study* registers the driver's sweep declaration as a standalone
    builder (see :attr:`ExperimentSpec.study_builder`); every built-in
    driver provides one, and the driver body calls it so the two can
    never drift apart.
    """

    def decorate(fn: Callable[..., ExperimentArtifact]):
        exp_name = name if name is not None else fn.__name__
        if exp_name in EXPERIMENTS:
            raise HarnessError(f"experiment {exp_name!r} registered twice")
        params = inspect.signature(fn).parameters
        spec = ExperimentSpec(
            name=exp_name,
            driver=fn,
            description=description,
            rep_params=tuple(k for k in _REP_PARAM_NAMES if k in params),
            study_builder=study,
        )
        EXPERIMENTS[exp_name] = spec
        ALL_EXPERIMENTS[exp_name] = fn
        return fn

    return decorate


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered driver; raises :class:`HarnessError` if unknown."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise HarnessError(
            f"unknown experiment {name!r}; choose from {available_experiments()}"
        ) from None


def available_experiments() -> tuple[str, ...]:
    return tuple(sorted(EXPERIMENTS))


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

_TABLE2_COLUMNS = (
    ("dardel", 4, "cores"),
    ("dardel", 254, "threads"),
    ("vera", 4, "cores"),
    ("vera", 30, "cores"),
)


def table2_study(
    runs: int = 10, outer_reps: int = 100, seed: int = 42
) -> Study:
    """The table2 sweep: schedbench dynamic_1 on four platform@threads."""
    return Study(
        ExperimentConfig(
            benchmark="schedbench",
            proc_bind="close",
            schedule="dynamic",
            schedule_chunk=1,
            runs=runs,
            seed=seed,
            benchmark_params={"outer_reps": outer_reps},
        ),
        name="table2",
        description="run-to-run schedbench dynamic_1 execution times",
    ).cases(*(
        {"platform": platform, "num_threads": threads, "places": places}
        for platform, threads, places in _TABLE2_COLUMNS
    ))


@experiment(
    "Table 2: run-to-run schedbench dynamic_1 times, Dardel/Vera",
    study=table2_study,
)
def table2(
    runs: int = 10,
    outer_reps: int = 100,
    seed: int = 42,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentArtifact:
    """Table 2: higher execution time (us) for schedbench ``dynamic_1``."""
    columns = _TABLE2_COLUMNS
    study = table2_study(runs=runs, outer_reps=outer_reps, seed=seed)
    by_combo = study.run(jobs=jobs, cache=cache, backend=backend).by("platform", "num_threads")

    per_column_means: dict[str, np.ndarray] = {}
    for platform, threads, _places in columns:
        matrix = by_combo[(platform, threads)].runs_matrix("dynamic_1")
        per_column_means[f"{platform}@{threads}"] = matrix.mean(axis=1)

    headers = ["run #"] + [k for k in per_column_means]
    rows = []
    for r in range(runs):
        rows.append(
            [r + 1] + [f"{to_us(per_column_means[k][r]):.2f}" for k in per_column_means]
        )
    table = render_table(headers, rows, title="schedbench dynamic_1 mean time (us) per run")
    return ExperimentArtifact(
        name="table2",
        description="run-to-run schedbench dynamic_1 execution times",
        sections=(("per-run means", table),),
        data={"run_means": per_column_means},
    )


# ---------------------------------------------------------------------------
# Figure 1 — syncbench scalability
# ---------------------------------------------------------------------------

_DARDEL_THREADS = (4, 8, 16, 32, 64, 128, 254)
_VERA_THREADS = (2, 4, 8, 16, 30)


def _thread_places(platform: str, threads: int) -> str:
    """ST-style placement except when SMT siblings are required."""
    if platform == "dardel" and threads > 128:
        return "threads"  # must use SMT siblings beyond the 128 cores
    return "cores"


def figure1_study(
    runs: int = 10,
    outer_reps: int = 100,
    seed: int = 42,
    dardel_threads: Sequence[int] = _DARDEL_THREADS,
    vera_threads: Sequence[int] = _VERA_THREADS,
) -> Study:
    """The figure1 sweep: syncbench reduction across both thread ladders."""
    sweeps = (("dardel", dardel_threads), ("vera", vera_threads))
    return (
        Study(
            ExperimentConfig(
                benchmark="syncbench",
                proc_bind="close",
                runs=runs,
                seed=seed,
                benchmark_params={
                    "outer_reps": outer_reps,
                    "constructs": (SyncConstruct.REDUCTION.value,),
                },
            ),
            name="figure1",
            description="syncbench execution time scaling",
        )
        .cases(*(
            {"platform": platform, "num_threads": threads}
            for platform, sweep in sweeps
            for threads in sweep
        ))
        .derive(places=lambda cfg: _thread_places(cfg.platform, cfg.num_threads))
    )


@experiment(
    "Figure 1: syncbench (reduction) time vs thread count",
    study=figure1_study,
)
def figure1(
    runs: int = 10,
    outer_reps: int = 100,
    seed: int = 42,
    dardel_threads: Sequence[int] = _DARDEL_THREADS,
    vera_threads: Sequence[int] = _VERA_THREADS,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentArtifact:
    """Figure 1: syncbench (reduction) time vs HW thread count."""
    sweeps = (("dardel", dardel_threads), ("vera", vera_threads))
    study = figure1_study(
        runs=runs,
        outer_reps=outer_reps,
        seed=seed,
        dardel_threads=dardel_threads,
        vera_threads=vera_threads,
    )
    by_combo = study.run(jobs=jobs, cache=cache, backend=backend).by("platform", "num_threads")

    sections = []
    data: dict[str, Any] = {}
    for platform, sweep in sweeps:
        xs, ys = [], []
        for threads in sweep:
            result = by_combo[(platform, threads)]
            # EPCC reports the per-construct overhead; that is what grows
            # with thread count (raw test times are held near the target
            # test time by the inner-repetition doubling)
            matrix = result.runs_matrix(f"{SyncConstruct.REDUCTION.value}.overhead")
            xs.append(threads)
            ys.append(to_us(float(matrix.mean())))
        data[platform] = {"threads": list(xs), "mean_us": list(ys)}
        sections.append(
            (
                f"{platform}: reduction overhead vs threads",
                render_series(f"syncbench(reduction)@{platform}", xs, ys, unit="us"),
            )
        )
    return ExperimentArtifact(
        name="figure1",
        description="syncbench execution time scaling (socket/SMT jumps)",
        sections=tuple(sections),
        data=data,
    )


# ---------------------------------------------------------------------------
# Figure 2 — BabelStream scalability
# ---------------------------------------------------------------------------

def figure2_study(
    runs: int = 3,
    num_times: int = 100,
    seed: int = 42,
    dardel_threads: Sequence[int] = (2, 4, 8, 16, 32, 64, 128, 254),
    vera_threads: Sequence[int] = _VERA_THREADS,
) -> Study:
    """The figure2 sweep: BabelStream across both thread ladders."""
    sweeps = (("dardel", dardel_threads), ("vera", vera_threads))
    return (
        Study(
            ExperimentConfig(
                benchmark="babelstream",
                proc_bind="close",
                runs=runs,
                seed=seed,
                benchmark_params={"num_times": num_times},
            ),
            name="figure2",
            description="BabelStream kernel time scaling",
        )
        .cases(*(
            {"platform": platform, "num_threads": threads}
            for platform, sweep in sweeps
            for threads in sweep
        ))
        .derive(places=lambda cfg: _thread_places(cfg.platform, cfg.num_threads))
    )


@experiment(
    "Figure 2: BabelStream kernel times vs thread count",
    study=figure2_study,
)
def figure2(
    runs: int = 3,
    num_times: int = 100,
    seed: int = 42,
    dardel_threads: Sequence[int] = (2, 4, 8, 16, 32, 64, 128, 254),
    vera_threads: Sequence[int] = _VERA_THREADS,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentArtifact:
    """Figure 2: BabelStream kernel time (ms) vs HW thread count."""
    sweeps = (("dardel", dardel_threads), ("vera", vera_threads))
    study = figure2_study(
        runs=runs,
        num_times=num_times,
        seed=seed,
        dardel_threads=dardel_threads,
        vera_threads=vera_threads,
    )
    by_combo = study.run(jobs=jobs, cache=cache, backend=backend).by("platform", "num_threads")

    sections = []
    data: dict[str, Any] = {}
    for platform, sweep in sweeps:
        per_kernel: dict[str, list[float]] = {k.value: [] for k in StreamKernel}
        for threads in sweep:
            result = by_combo[(platform, threads)]
            for kernel in StreamKernel:
                matrix = result.runs_matrix(kernel.value)
                per_kernel[kernel.value].append(to_ms(float(matrix.mean())))
        data[platform] = {"threads": list(sweep), "mean_ms": per_kernel}
        lines = [
            render_series(f"{k}@{platform}", list(sweep), v, unit="ms")
            for k, v in per_kernel.items()
        ]
        sections.append((f"{platform}: kernel time vs threads", "\n".join(lines)))
    return ExperimentArtifact(
        name="figure2",
        description="BabelStream execution time falls with added threads",
        sections=tuple(sections),
        data=data,
    )


# ---------------------------------------------------------------------------
# Figure 3 — scalability of variability
# ---------------------------------------------------------------------------

def _figure3_benches(outer_reps: int, num_times: int) -> tuple:
    """(benchmark, reported label, params) triples shared by the figure3
    study builder and the panel rendering."""
    return (
        ("schedbench", "dynamic_1", {"outer_reps": outer_reps}),
        (
            "syncbench",
            SyncConstruct.REDUCTION.value,
            {"outer_reps": outer_reps,
             "constructs": (SyncConstruct.REDUCTION.value,)},
        ),
        ("babelstream", StreamKernel.TRIAD.value, {"num_times": num_times}),
    )


def figure3_study(
    runs: int = 10,
    outer_reps: int = 100,
    num_times: int = 100,
    seed: int = 42,
    dardel_threads: Sequence[int] = (4, 16, 64, 128, 254),
    vera_threads: Sequence[int] = (2, 8, 16, 30),
) -> Study:
    """The figure3 sweep: three benchmarks across both thread ladders."""
    benches = _figure3_benches(outer_reps, num_times)
    sweeps = (("dardel", dardel_threads), ("vera", vera_threads))
    return (
        Study(
            ExperimentConfig(
                proc_bind="close",
                schedule="dynamic",
                schedule_chunk=1,
                runs=runs,
                seed=seed,
            ),
            name="figure3",
            description="normalized min/max variability scaling",
        )
        .cases(*(
            {
                "platform": platform,
                "benchmark": bench,
                "num_threads": threads,
                "benchmark_params": params,
            }
            for platform, sweep in sweeps
            for bench, _label, params in benches
            for threads in sweep
        ))
        .derive(places=lambda cfg: _thread_places(cfg.platform, cfg.num_threads))
    )


@experiment(
    "Figure 3: normalized min/max variability vs thread count",
    study=figure3_study,
)
def figure3(
    runs: int = 10,
    outer_reps: int = 100,
    num_times: int = 100,
    seed: int = 42,
    dardel_threads: Sequence[int] = (4, 16, 64, 128, 254),
    vera_threads: Sequence[int] = (2, 8, 16, 30),
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentArtifact:
    """Figure 3: normalized min/max per run vs thread count, 6 panels."""
    panels: list[tuple[str, str]] = []
    data: dict[str, Any] = {}

    def norm_rows(matrix: np.ndarray) -> tuple[list[float], list[float]]:
        mins, maxs = [], []
        for row in matrix:
            s = summarize(row)
            mins.append(s.norm_min)
            maxs.append(s.norm_max)
        return mins, maxs

    benches = _figure3_benches(outer_reps, num_times)
    sweeps = (("dardel", dardel_threads), ("vera", vera_threads))
    study = figure3_study(
        runs=runs,
        outer_reps=outer_reps,
        num_times=num_times,
        seed=seed,
        dardel_threads=dardel_threads,
        vera_threads=vera_threads,
    )
    by_combo = study.run(jobs=jobs, cache=cache, backend=backend).by(
        "platform", "benchmark", "num_threads"
    )

    for platform, sweep in sweeps:
        for bench, label, _params in benches:
            worst_max, best_min, xs = [], [], []
            panel_data = {}
            for threads in sweep:
                matrix = by_combo[(platform, bench, threads)].runs_matrix(label)
                mins, maxs = norm_rows(matrix)
                xs.append(threads)
                best_min.append(min(mins))
                worst_max.append(max(maxs))
                panel_data[threads] = {"norm_min": mins, "norm_max": maxs}
            key = f"{platform}/{bench}"
            data[key] = panel_data
            body = "\n".join(
                [
                    render_series("worst norm max", xs, worst_max),
                    render_series("best norm min", xs, best_min),
                ]
            )
            panels.append((f"{key} ({label})", body))
    return ExperimentArtifact(
        name="figure3",
        description="variability grows with thread count, esp. near saturation",
        sections=tuple(panels),
        data=data,
    )


# ---------------------------------------------------------------------------
# Figure 4 — the effect of thread pinning (Dardel)
# ---------------------------------------------------------------------------

_FIGURE4_BINDINGS = (("unpinned", "false"), ("pinned", "close"))


def _figure4_cases(outer_reps: int, num_times: int) -> tuple:
    """(benchmark, threads, reported label, params) for the figure4 panels."""
    return (
        ("schedbench", 16, "dynamic_1", {"outer_reps": outer_reps}),
        (
            "syncbench",
            128,
            SyncConstruct.REDUCTION.value,
            {"outer_reps": outer_reps,
             "constructs": (SyncConstruct.REDUCTION.value,)},
        ),
        ("babelstream", 128, StreamKernel.TRIAD.value, {"num_times": num_times}),
    )


def figure4_study(
    runs: int = 10,
    outer_reps: int = 100,
    num_times: int = 100,
    seed: int = 42,
) -> Study:
    """The figure4 sweep: three Dardel workloads x pinned/unpinned."""
    cases = _figure4_cases(outer_reps, num_times)
    bindings = _FIGURE4_BINDINGS
    return (
        Study(
            ExperimentConfig(
                platform="dardel",
                schedule="dynamic",
                schedule_chunk=1,
                runs=runs,
                seed=seed,
            ),
            name="figure4",
            description="thread pinning on/off on Dardel",
        )
        .cases(*(
            {
                "benchmark": bench,
                "num_threads": threads,
                "benchmark_params": params,
            }
            for bench, threads, _label, params in cases
        ))
        .zip(
            proc_bind=[bind for _bound, bind in bindings],
            places=[None if bind == "false" else "cores" for _bound, bind in bindings],
        )
    )


@experiment("Figure 4: thread pinning on/off on Dardel", study=figure4_study)
def figure4(
    runs: int = 10,
    outer_reps: int = 100,
    num_times: int = 100,
    seed: int = 42,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentArtifact:
    """Figure 4: before/after pinning on Dardel."""
    cases = _figure4_cases(outer_reps, num_times)
    bindings = _FIGURE4_BINDINGS
    study = figure4_study(
        runs=runs, outer_reps=outer_reps, num_times=num_times, seed=seed
    )
    by_combo = study.run(jobs=jobs, cache=cache, backend=backend).by(
        "benchmark", "num_threads", "proc_bind"
    )

    sections = []
    data: dict[str, Any] = {}
    for bench, threads, label, _params in cases:
        entry: dict[str, Any] = {}
        for bound, bind in bindings:
            matrix = by_combo[(bench, threads, bind)].runs_matrix(label)
            stats = [summarize(row) for row in matrix]
            entry[bound] = {
                "run_means": [s.mean for s in stats],
                "run_maxs": [s.maximum for s in stats],
                "run_mins": [s.minimum for s in stats],
                "pooled_max_over_min": float(matrix.max() / matrix.min()),
            }
        data[f"{bench}@{threads}"] = entry
        rows = []
        for bound in ("unpinned", "pinned"):
            e = entry[bound]
            rows.append(
                [
                    bound,
                    f"{to_us(float(np.mean(e['run_means']))):.1f}",
                    f"{to_us(float(np.min(e['run_mins']))):.1f}",
                    f"{to_us(float(np.max(e['run_maxs']))):.1f}",
                    f"{e['pooled_max_over_min']:.1f}x",
                ]
            )
        sections.append(
            (
                f"{bench}@{threads} threads ({label})",
                render_table(
                    ["binding", "mean us", "min us", "max us", "max/min"], rows
                ),
            )
        )
    return ExperimentArtifact(
        name="figure4",
        description="pinning removes most run-to-run variability",
        sections=tuple(sections),
        data=data,
    )


# ---------------------------------------------------------------------------
# Figure 5 — the effect of SMT (Dardel)
# ---------------------------------------------------------------------------

_FIGURE5_MODES = (("ST", "cores"), ("MT", "threads"))


def _figure5_blocks(outer_reps: int, num_times: int) -> tuple:
    """(panel, benchmark, threads, extra overrides) for the figure5 blocks."""
    constructs = tuple(c.value for c in SyncConstruct)
    return (
        ("schedbench@128", "schedbench", 128,
         {"schedule": "dynamic", "schedule_chunk": 1,
          "benchmark_params": {"outer_reps": outer_reps}}),
        ("syncbench@32", "syncbench", 32,
         {"benchmark_params": {"outer_reps": outer_reps,
                               "constructs": constructs}}),
        ("babelstream@128", "babelstream", 128,
         {"benchmark_params": {"num_times": num_times}}),
    )


def figure5_study(
    runs: int = 10,
    outer_reps: int = 100,
    num_times: int = 100,
    seed: int = 42,
) -> Study:
    """The figure5 sweep: three Dardel workloads x ST/MT placement."""
    blocks = _figure5_blocks(outer_reps, num_times)
    return (
        Study(
            ExperimentConfig(
                platform="dardel", proc_bind="close", runs=runs, seed=seed
            ),
            name="figure5",
            description="ST vs MT at equal thread counts on Dardel",
        )
        .cases(*(
            {"benchmark": bench, "num_threads": threads, **extra}
            for _block, bench, threads, extra in blocks
        ))
        .grid(places=[places for _mode, places in _FIGURE5_MODES])
    )


@experiment(
    "Figure 5: ST vs MT at equal thread counts on Dardel",
    study=figure5_study,
)
def figure5(
    runs: int = 10,
    outer_reps: int = 100,
    num_times: int = 100,
    seed: int = 42,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentArtifact:
    """Figure 5: ST vs MT at equal thread counts on Dardel."""
    modes = _FIGURE5_MODES
    constructs = tuple(c.value for c in SyncConstruct)
    blocks = _figure5_blocks(outer_reps, num_times)
    study = figure5_study(
        runs=runs, outer_reps=outer_reps, num_times=num_times, seed=seed
    )
    by_places = study.run(jobs=jobs, cache=cache, backend=backend).by("benchmark", "places")
    mode_places = dict(modes)
    by_spec = {
        (block, mode): by_places[(bench, mode_places[mode])]
        for block, bench, _threads, _extra in blocks
        for mode, _places in modes
    }

    sections = []
    data: dict[str, Any] = {}

    # schedbench at 128 threads: ST = 128 cores, MT = 64 cores x 2 siblings
    sched_entry = {}
    for mode, _places in modes:
        matrix = by_spec[("schedbench@128", mode)].runs_matrix("dynamic_1")
        stats = [summarize(row) for row in matrix]
        sched_entry[mode] = {
            "run_cv": [s.cv for s in stats],
            "run_norm_max": [s.norm_max for s in stats],
        }
    data["schedbench@128"] = sched_entry
    sections.append(
        (
            "schedbench@128: per-run CV",
            render_table(
                ["mode", "mean CV", "max norm-max"],
                [
                    [
                        mode,
                        f"{float(np.mean(e['run_cv'])):.4f}",
                        f"{float(np.max(e['run_norm_max'])):.3f}",
                    ]
                    for mode, e in sched_entry.items()
                ],
            ),
        )
    )

    # syncbench at 32 threads: CV per construct
    sync_entry: dict[str, Any] = {}
    for mode, _places in modes:
        result = by_spec[("syncbench@32", mode)]
        sync_entry[mode] = {
            c: [summarize(row).cv for row in result.runs_matrix(c)]
            for c in constructs
        }
    data["syncbench@32"] = sync_entry
    rows = []
    for c in constructs:
        rows.append(
            [
                c,
                f"{float(np.mean(sync_entry['ST'][c])):.4f}",
                f"{float(np.mean(sync_entry['MT'][c])):.4f}",
            ]
        )
    sections.append(
        (
            "syncbench@32: mean CV per construct",
            render_table(["construct", "ST CV", "MT CV"], rows),
        )
    )

    # babelstream at 128 threads
    stream_entry: dict[str, Any] = {}
    for mode, _places in modes:
        result = by_spec[("babelstream@128", mode)]
        stream_entry[mode] = {
            k.value: [summarize(row).norm_max for row in result.runs_matrix(k.value)]
            for k in StreamKernel
        }
    data["babelstream@128"] = stream_entry
    rows = [
        [
            k.value,
            f"{float(np.max(stream_entry['ST'][k.value])):.3f}",
            f"{float(np.max(stream_entry['MT'][k.value])):.3f}",
        ]
        for k in StreamKernel
    ]
    sections.append(
        (
            "babelstream@128: worst normalized max per kernel",
            render_table(["kernel", "ST", "MT"], rows),
        )
    )
    return ExperimentArtifact(
        name="figure5",
        description="MT destabilizes all three benchmarks vs ST",
        sections=tuple(sections),
        data=data,
    )


# ---------------------------------------------------------------------------
# Figures 6 and 7 — frequency variation on Vera
# ---------------------------------------------------------------------------

_VERA_NUMA_PLACEMENTS = (
    ("one-numa (cpus 0-15)", "{0:16}"),
    ("two-numa (cpus 0-7,16-23)", "{0:8},{16:8}"),
)


def _vera_numa_study(
    benchmark: str, params: dict, runs: int, seed: int
) -> Study:
    """The figure6/figure7 sweep: 16 Vera cores on 1 vs 2 NUMA domains."""
    return Study(
        ExperimentConfig(
            platform="vera",
            benchmark=benchmark,
            num_threads=16,
            proc_bind="close",
            schedule="dynamic" if benchmark == "schedbench" else "static",
            schedule_chunk=1 if benchmark == "schedbench" else None,
            runs=runs,
            seed=seed,
            benchmark_params=params,
            freq_logging=True,
            logger_cpu=31,  # a spare core on the second socket
        ),
        name=f"{benchmark}-numa",
        description="16 Vera cores on 1 vs 2 NUMA domains",
    ).grid(places=[places for _name, places in _VERA_NUMA_PLACEMENTS])


def _figure6_params(outer_reps: int) -> dict:
    return {"outer_reps": outer_reps}


def _figure7_params(outer_reps: int) -> dict:
    return {
        "outer_reps": outer_reps,
        "constructs": tuple(c.value for c in SyncConstruct),
    }


def figure6_study(
    runs: int = 10, outer_reps: int = 100, seed: int = 42
) -> Study:
    """The figure6 sweep: schedbench on 1 vs 2 Vera NUMA domains."""
    return _vera_numa_study(
        "schedbench", _figure6_params(outer_reps), runs, seed
    )


def figure7_study(
    runs: int = 10, outer_reps: int = 100, seed: int = 42
) -> Study:
    """The figure7 sweep: syncbench on 1 vs 2 Vera NUMA domains."""
    return _vera_numa_study(
        "syncbench", _figure7_params(outer_reps), runs, seed
    )


def _vera_numa_experiment(
    benchmark: str,
    label: str,
    params: dict,
    runs: int,
    seed: int,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    backend: ExecutionBackend | None = None,
) -> tuple[tuple[tuple[str, str], ...], dict[str, Any]]:
    placements = _VERA_NUMA_PLACEMENTS
    study = _vera_numa_study(benchmark, params, runs, seed)
    by_places = study.run(jobs=jobs, cache=cache, backend=backend).by("places")

    sections = []
    data: dict[str, Any] = {}
    for name, places in placements:
        result = by_places[places]
        matrix = result.runs_matrix(label)
        stats = [summarize(row) for row in matrix]
        logs = [rec.freq_log for rec in result.records if rec.freq_log is not None]
        dip_occupancy = float(
            np.mean([log.band_occupancy(2.6) for log in logs])
        )
        min_freq = min(log.min_freq_ghz() for log in logs)
        max_freq = max(log.max_freq_ghz() for log in logs)
        data[name] = {
            "run_means": [s.mean for s in stats],
            "run_norm_max": [s.norm_max for s in stats],
            "pooled_cv": summarize(matrix.ravel()).cv,
            "freq_min_ghz": min_freq,
            "freq_max_ghz": max_freq,
            "dip_occupancy": dip_occupancy,
        }
        body = "\n".join(
            [
                render_series(
                    "run means (us)",
                    list(range(1, len(stats) + 1)),
                    [to_us(s.mean) for s in stats],
                ),
                f"pooled CV {data[name]['pooled_cv']:.4f}; frequency span "
                f"{min_freq:.2f}-{max_freq:.2f} GHz; time below 2.6 GHz: "
                f"{dip_occupancy * 100:.2f}%",
            ]
        )
        sections.append((name, body))
    return tuple(sections), data


@experiment(
    "Figure 6: Vera schedbench on 1 vs 2 NUMA domains + freq traces",
    study=figure6_study,
)
def figure6(
    runs: int = 10,
    outer_reps: int = 100,
    seed: int = 42,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentArtifact:
    """Figure 6: schedbench on 16 Vera cores, 1 vs 2 NUMA domains."""
    sections, data = _vera_numa_experiment(
        "schedbench",
        "dynamic_1",
        _figure6_params(outer_reps),
        runs,
        seed,
        jobs=jobs,
        cache=cache,
        backend=backend,
    )
    return ExperimentArtifact(
        name="figure6",
        description="cross-NUMA teams see frequency dips and higher variability",
        sections=sections,
        data=data,
    )


@experiment(
    "Figure 7: Vera syncbench on 1 vs 2 NUMA domains + freq traces",
    study=figure7_study,
)
def figure7(
    runs: int = 10,
    outer_reps: int = 100,
    seed: int = 42,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentArtifact:
    """Figure 7: syncbench (reduction) on 16 Vera cores, 1 vs 2 NUMA.

    As in the real suite, the whole construct set runs in one invocation
    (so the run is long enough for frequency dips to land); the reduction
    micro-benchmark is the one reported.
    """
    sections, data = _vera_numa_experiment(
        "syncbench",
        SyncConstruct.REDUCTION.value,
        _figure7_params(outer_reps),
        runs,
        seed,
        jobs=jobs,
        cache=cache,
        backend=backend,
    )
    return ExperimentArtifact(
        name="figure7",
        description="same effect for the synchronization micro-benchmark",
        sections=sections,
        data=data,
    )




# ---------------------------------------------------------------------------
# Figure 8 — tasking variability (work-stealing runtime)
# ---------------------------------------------------------------------------

def figure8_study(
    runs: int = 10,
    outer_reps: int = 20,
    seed: int = 42,
    threads: Sequence[int] = (2, 8, 16, 30),
    grainsizes: Sequence[int] = (1, 8, 64),
    noise_profiles: Sequence[str] = ("default", "quiet"),
    total_iters: int = 512,
) -> Study:
    """The figure8 sweep: taskbench noise x threads x grainsize grid."""
    return (
        Study(
            ExperimentConfig(
                platform="vera",
                benchmark="taskbench",
                places="cores",
                proc_bind="close",
                runs=runs,
                seed=seed,
                benchmark_params={
                    "outer_reps": outer_reps,
                    "pattern": "taskloop",
                    "total_iters": total_iters,
                    "imbalance": 0.6,
                },
            ),
            name="figure8",
            description="taskbench work-stealing sweep on Vera",
        )
        .grid(
            noise=list(noise_profiles),
            num_threads=list(threads),
            grainsize=list(grainsizes),
        )
    )


@experiment(
    "Figure 8: taskbench work-stealing vs threads x grainsize x noise",
    study=figure8_study,
)
def figure8(
    runs: int = 10,
    outer_reps: int = 20,
    seed: int = 42,
    threads: Sequence[int] = (2, 8, 16, 30),
    grainsizes: Sequence[int] = (1, 8, 64),
    noise_profiles: Sequence[str] = ("default", "quiet"),
    total_iters: int = 512,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentArtifact:
    """Figure 8: tasking-runtime variability on Vera.

    Sweeps an imbalanced ``taskloop`` (linear work ramp, so LIFO owners
    finish their cheap early chunks and thieves must steal the expensive
    tail) across team size, grainsize and the OS-noise profile.  The
    artifact reports, per configuration, the construct time, its CV, and
    the scheduler internals no worksharing benchmark can expose: steals
    per repetition, the failed-steal rate of the random victim selection,
    and the idle fraction of the team.

    The noise ablation attributes variability: with noise quieted, what
    remains is purely the runtime's own stochastic scheduling (victim
    choices + contention jitter); the default profile adds the OS on top.
    """
    study = figure8_study(
        runs=runs,
        outer_reps=outer_reps,
        seed=seed,
        threads=threads,
        grainsizes=grainsizes,
        noise_profiles=noise_profiles,
        total_iters=total_iters,
    )
    by_combo = study.run(jobs=jobs, cache=cache, backend=backend).by(
        "noise", "num_threads", "grainsize"
    )

    data: dict[str, Any] = {}
    for (noise, n, g), result in by_combo.items():
        label = f"taskloop_g{g}"
        matrix = result.runs_matrix(label)
        steals = result.runs_matrix(f"{label}.steals")
        failed = result.runs_matrix(f"{label}.failed_steals")
        idle = result.runs_matrix(f"{label}.idle_frac")
        pooled = summarize(matrix.ravel())
        attempts = float(steals.sum() + failed.sum())
        data[f"{noise}/n{n}/g{g}"] = {
            "mean_us": to_us(pooled.mean),
            "cv": pooled.cv,
            "norm_max": pooled.norm_max,
            "mean_steals": float(steals.mean()),
            "failed_steal_rate": (
                float(failed.sum()) / attempts if attempts else 0.0
            ),
            "idle_frac": float(idle.mean()),
        }

    sections: list[tuple[str, str]] = []
    for noise in noise_profiles:

        def noise_cell(n: int, g: int) -> list[str]:
            entry = data[f"{noise}/n{n}/g{g}"]
            return [
                f"{entry['mean_us']:.1f}",
                f"{entry['cv']:.4f}",
                f"{entry['mean_steals']:.1f}",
            ]

        sections.append(
            (
                f"noise={noise}: taskloop time/CV/steals per rep",
                render_pivot(
                    "threads",
                    threads,
                    grainsizes,
                    ("us", "CV", "steals"),
                    noise_cell,
                    col_label=lambda g: f"g{g}",
                ),
            )
        )

    # one detailed scheduler panel: widest team, finest grain, default noise
    noise0, n0, g0 = noise_profiles[0], max(threads), min(grainsizes)
    label0 = f"taskloop_g{g0}"
    detail = by_combo[(noise0, n0, g0)]
    sections.append(
        (
            f"noise={noise0} n={n0} g={g0}: scheduler internals",
            render_tasking_summary(
                label0,
                detail.runs_matrix(f"{label0}.steals"),
                detail.runs_matrix(f"{label0}.failed_steals"),
                detail.runs_matrix(f"{label0}.idle_frac"),
            ),
        )
    )
    return ExperimentArtifact(
        name="figure8",
        description="work-stealing tasking: variability vs grainsize and noise",
        sections=tuple(sections),
        data=data,
    )


# ---------------------------------------------------------------------------
# Runtime comparison — vendor profiles x wait policies (beyond the paper)
# ---------------------------------------------------------------------------

def runtime_compare_study(
    runs: int = 10,
    outer_reps: int = 50,
    seed: int = 42,
    dardel_threads: Sequence[int] = (16, 64, 128),
    vera_threads: Sequence[int] = (8, 16, 30),
    runtimes: Sequence[str] = ("gnu", "llvm"),
    wait_policies: Sequence[str] = ("active", "passive"),
) -> Study:
    """The runtime_compare sweep: vendor x wait-policy x thread ladders."""
    sweeps = (("dardel", dardel_threads), ("vera", vera_threads))
    return (
        Study(
            ExperimentConfig(
                benchmark="syncbench",
                proc_bind="close",
                runs=runs,
                seed=seed,
                benchmark_params={
                    "outer_reps": outer_reps,
                    "constructs": (
                        SyncConstruct.BARRIER.value,
                        SyncConstruct.PARALLEL.value,
                    ),
                },
            ),
            name="runtime_compare",
            description="vendor x wait-policy x threads on both platforms",
        )
        .cases(*(
            {"platform": platform, "num_threads": threads}
            for platform, sweep in sweeps
            for threads in sweep
        ))
        .grid(runtime=list(runtimes), wait_policy=list(wait_policies))
        .derive(places=lambda cfg: _thread_places(cfg.platform, cfg.num_threads))
    )


@experiment("Runtime compare: vendor (gnu/llvm) x wait-policy x threads, "
            "both platforms", study=runtime_compare_study)
def runtime_compare(
    runs: int = 10,
    outer_reps: int = 50,
    seed: int = 42,
    dardel_threads: Sequence[int] = (16, 64, 128),
    vera_threads: Sequence[int] = (8, 16, 30),
    runtimes: Sequence[str] = ("gnu", "llvm"),
    wait_policies: Sequence[str] = ("active", "passive"),
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentArtifact:
    """Sweep runtime vendor x wait policy x threads on both platforms.

    Runs syncbench's BARRIER and PARALLEL micro-benchmarks — the two
    constructs whose costs are pure runtime policy — under every
    (vendor, wait-policy) combination.  The qualitative expectations
    (asserted by ``benchmarks/bench_runtime_compare.py``):

    * the vendors' barrier algorithms diverge with the team size: libomp's
      hyper barrier needs fewer serialized rounds than libgomp's
      centralized gather-release at >= 64 threads;
    * passive waiting pays the scheduler wakeup path on every fork and
      barrier release, so it is uniformly slower than active spinning for
      these fork/barrier-bound microbenchmarks;
    * the vendor's contention-jitter scale shows up as a CV difference,
      not just a mean shift.
    """
    sweeps = (("dardel", dardel_threads), ("vera", vera_threads))
    study = runtime_compare_study(
        runs=runs,
        outer_reps=outer_reps,
        seed=seed,
        dardel_threads=dardel_threads,
        vera_threads=vera_threads,
        runtimes=runtimes,
        wait_policies=wait_policies,
    )
    by_combo = study.run(jobs=jobs, cache=cache, backend=backend).by(
        "platform", "runtime", "wait_policy", "num_threads"
    )

    data: dict[str, Any] = {}
    for platform, sweep in sweeps:
        for rt in runtimes:
            for wp in wait_policies:
                for threads in sweep:
                    result = by_combo[(platform, rt, wp, threads)]
                    barrier = result.runs_matrix(
                        f"{SyncConstruct.BARRIER.value}.overhead"
                    )
                    par = result.runs_matrix(
                        f"{SyncConstruct.PARALLEL.value}.overhead"
                    )
                    pooled = summarize(barrier.ravel())
                    data[f"{platform}/{rt}/{wp}/n{threads}"] = {
                        "barrier_us": to_us(pooled.mean),
                        "barrier_cv": pooled.cv,
                        "barrier_norm_max": pooled.norm_max,
                        "parallel_us": to_us(float(par.mean())),
                    }

    sections: list[tuple[str, str]] = []
    for platform, sweep in sweeps:
        for wp in wait_policies:

            def vendor_cell(threads: int, rt: str) -> list[str]:
                entry = data[f"{platform}/{rt}/{wp}/n{threads}"]
                return [
                    f"{entry['barrier_us']:.2f}",
                    f"{entry['barrier_cv']:.4f}",
                    f"{entry['parallel_us']:.2f}",
                ]

            sections.append(
                (
                    f"{platform}, OMP_WAIT_POLICY={wp}",
                    render_pivot(
                        "threads",
                        sweep,
                        runtimes,
                        ("barrier us", "CV", "parallel us"),
                        vendor_cell,
                    ),
                )
            )

    # headline: the vendor gap at the widest team of each platform
    if len(runtimes) >= 2:
        rows = []
        wp0 = wait_policies[0]
        for platform, sweep in sweeps:
            n_max = max(sweep)
            base = data[f"{platform}/{runtimes[0]}/{wp0}/n{n_max}"]
            for rt in runtimes[1:]:
                other = data[f"{platform}/{rt}/{wp0}/n{n_max}"]
                rows.append(
                    [
                        f"{platform}@{n_max}",
                        f"{runtimes[0]}->{rt}",
                        f"{other['barrier_us'] / base['barrier_us']:.3f}",
                        f"{other['barrier_cv'] / base['barrier_cv']:.3f}",
                    ]
                )
        sections.append(
            (
                f"vendor gap at the widest team ({wp0} waiters)",
                render_table(
                    ["config", "vendors", "barrier time ratio", "CV ratio"], rows
                ),
            )
        )
    return ExperimentArtifact(
        name="runtime_compare",
        description="OpenMP implementation fingerprints: barrier algorithm "
                    "and wait policy drive cost and variability",
        sections=tuple(sections),
        data=data,
    )
