"""Experiment harness.

Turns configurations into results:

* :class:`~repro.harness.config.ExperimentConfig` — one benchmark launch
  configuration (platform, threads, binding, repetitions, seed);
* :class:`~repro.harness.runner.Runner` — executes N independent runs,
  optionally with the frequency logger on a spare core;
* :class:`~repro.harness.parallel.ParallelRunner` /
  :class:`~repro.harness.parallel.Sweep` — fan runs (of one or many
  configs) out over a pluggable execution backend, bit-identical to
  serial execution;
* :mod:`repro.harness.backend` — the execution backends (serial,
  process pool, one shard of a distributed partition);
* :mod:`repro.harness.shard` — shard manifests and the gather step that
  assembles a sharded run into one study result;
* :class:`~repro.harness.study.Study` /
  :class:`~repro.harness.study.StudyResult` — declarative sweep specs
  (grid/zip/cases axes, derived fields, filters) executed through one
  ``Sweep``, with tidy long-form records and CSV/JSON export;
* :class:`~repro.harness.cache.ResultCache` — on-disk result cache keyed
  by config + seed + code version;
* :mod:`repro.harness.results` — result containers with JSON round-trip;
* :mod:`repro.harness.freqlogger` — the simulated background frequency
  logger (a :mod:`repro.sim` process sampling the simulated sysfs);
* :mod:`repro.harness.report` — ASCII tables and series renderers;
* :mod:`repro.harness.experiments` — one driver per paper table/figure.
"""

from repro.harness.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ShardedBackend,
    make_backend,
    parse_shard,
    shard_index_of,
)
from repro.harness.cache import ResultCache, cache_key
from repro.harness.config import ExperimentConfig
from repro.harness.freqlogger import FrequencyLog, FrequencyLogger
from repro.harness.parallel import ParallelRunner, Sweep
from repro.harness.results import ExperimentResult, RunRecord
from repro.harness.runner import Runner
from repro.harness.shard import ReplayCache, ShardRunComplete, ShardSummary
from repro.harness.study import Study, StudyResult
from repro.harness import experiments
from repro.harness import report

__all__ = [
    "ExperimentConfig",
    "Runner",
    "ParallelRunner",
    "Sweep",
    "Study",
    "StudyResult",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ShardedBackend",
    "ShardRunComplete",
    "ShardSummary",
    "ReplayCache",
    "make_backend",
    "parse_shard",
    "shard_index_of",
    "ResultCache",
    "cache_key",
    "RunRecord",
    "ExperimentResult",
    "FrequencyLogger",
    "FrequencyLog",
    "experiments",
    "report",
]
