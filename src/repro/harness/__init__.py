"""Experiment harness.

Turns configurations into results:

* :class:`~repro.harness.config.ExperimentConfig` — one benchmark launch
  configuration (platform, threads, binding, repetitions, seed);
* :class:`~repro.harness.runner.Runner` — executes N independent runs,
  optionally with the frequency logger on a spare core;
* :mod:`repro.harness.results` — result containers with JSON round-trip;
* :mod:`repro.harness.freqlogger` — the simulated background frequency
  logger (a :mod:`repro.sim` process sampling the simulated sysfs);
* :mod:`repro.harness.report` — ASCII tables and series renderers;
* :mod:`repro.harness.experiments` — one driver per paper table/figure.
"""

from repro.harness.config import ExperimentConfig
from repro.harness.freqlogger import FrequencyLog, FrequencyLogger
from repro.harness.results import ExperimentResult, RunRecord
from repro.harness.runner import Runner
from repro.harness import experiments
from repro.harness import report

__all__ = [
    "ExperimentConfig",
    "Runner",
    "RunRecord",
    "ExperimentResult",
    "FrequencyLogger",
    "FrequencyLog",
    "experiments",
    "report",
]
