"""ASCII rendering helpers for tables and figure-like series.

The harness regenerates the paper's tables and figures as text: tables as
aligned columns, figure series as labelled rows of values (and a crude
unicode sparkline for trend reading in a terminal).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import HarnessError
from repro.units import to_us

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.shard import ShardSummary
    from repro.harness.study import StudyResult
    from repro.obs.metrics import MetricsRegistry

_SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Glyph used for a non-finite (NaN/inf) cell in a sparkline.
_SPARK_BLANK = "·"


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Align *rows* under *headers*."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a series (empty- and NaN-safe).

    Non-finite cells (NaN/inf) render as a blank glyph instead of
    poisoning the min/max scaling or crashing the integer cast.

    >>> sparkline([1, 2, 3])
    '▁▅█'
    >>> sparkline([1.0, float("nan"), 3.0])
    '▁·█'
    """
    v = np.asarray(list(values), dtype=np.float64)
    if v.size == 0:
        return ""
    finite = np.isfinite(v)
    if not finite.any():
        return _SPARK_BLANK * v.size
    lo, hi = float(v[finite].min()), float(v[finite].max())
    if hi == lo:
        return "".join(
            _SPARK_CHARS[0] if ok else _SPARK_BLANK for ok in finite
        )
    scaled = np.zeros(v.size)
    scaled[finite] = (v[finite] - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)
    idx = np.minimum(len(_SPARK_CHARS) - 1, scaled.round().astype(int))
    return "".join(
        _SPARK_CHARS[i] if ok else _SPARK_BLANK for i, ok in zip(idx, finite)
    )


def render_series(
    label: str, xs: Sequence[object], ys: Sequence[float], unit: str = ""
) -> str:
    """One figure series as a labelled row with a sparkline.

    Raises :class:`HarnessError` when ``xs`` and ``ys`` disagree in length
    (silently truncating to the shorter series would misattribute values
    to x positions).
    """
    if len(xs) != len(ys):
        raise HarnessError(
            f"series {label!r}: {len(xs)} x values but {len(ys)} y values"
        )
    pairs = "  ".join(f"{x}:{y:.4g}" for x, y in zip(xs, ys))
    suffix = f" [{unit}]" if unit else ""
    return f"{label:<28} {sparkline(ys)}  {pairs}{suffix}"


def render_norm_minmax_rows(
    label: str, norm: np.ndarray
) -> str:
    """Per-run normalized (min, max) rows — the Figure 3 payload."""
    lines = [f"{label}: normalized min/max per run"]
    for i, (lo, hi) in enumerate(np.asarray(norm), start=1):
        lines.append(f"  run {i:>2}: min {lo:.3f}  max {hi:.3f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Study-driven rendering
# ---------------------------------------------------------------------------
#
# These renderers take a StudyResult (or its derived groupings) plus an axis
# spec, so a section is described by *which axes go where* instead of a
# bespoke per-driver loop: render_pivot lays one axis along the rows and one
# along the columns, render_group_summaries tabulates pooled variability per
# axis value, and render_study_overview gives one pooled row per config.


def render_pivot(
    row_header: str,
    row_values: Sequence[Any],
    col_values: Sequence[Any],
    cell_columns: Sequence[str],
    cell: Callable[[Any, Any], Sequence[object]],
    col_label: Callable[[Any], str] = str,
    title: str | None = None,
) -> str:
    """Two-axis pivot table: rows x (columns x per-cell metrics).

    ``cell(row_value, col_value)`` returns one formatted value per entry of
    ``cell_columns``; headers become ``f"{col_label(col)} {metric}"``.
    """
    headers = [row_header] + [
        f"{col_label(col)} {metric}" for col in col_values for metric in cell_columns
    ]
    rows = []
    for row_value in row_values:
        row: list[object] = [row_value]
        for col_value in col_values:
            cells = list(cell(row_value, col_value))
            if len(cells) != len(cell_columns):
                raise HarnessError(
                    f"pivot cell ({row_value!r}, {col_value!r}) returned "
                    f"{len(cells)} values for {len(cell_columns)} columns"
                )
            row.extend(cells)
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_group_summaries(
    axis: str,
    groups: Mapping[Any, Any],
    title: str | None = None,
) -> str:
    """Pooled variability per axis value (a ``group_summaries()`` mapping).

    One row per value: sample size, mean/min/max in microseconds, CV and
    normalized min/max — the paper's variability metrics along one axis.
    """
    rows = [
        [
            value,
            s.n,
            f"{to_us(s.mean):.2f}",
            f"{to_us(s.minimum):.2f}",
            f"{to_us(s.maximum):.2f}",
            f"{s.cv:.4f}",
            f"{s.norm_min:.3f}",
            f"{s.norm_max:.3f}",
        ]
        for value, s in groups.items()
    ]
    return render_table(
        [axis, "n", "mean us", "min us", "max us", "CV", "norm min", "norm max"],
        rows,
        title=title,
    )


def render_study_overview(
    result: "StudyResult",
    label: str | Callable[..., str] | None = None,
    title: str | None = None,
) -> str:
    """One pooled row per config of a study: axis values + variability.

    ``label`` selects the measurement series exactly as in
    :meth:`~repro.harness.study.StudyResult.group_summaries`.
    """
    from repro.harness.study import config_value
    from repro.stats.descriptive import summarize

    axes = result.record_axes()
    rows = []
    for cfg, res in result:
        series = result._resolve_label(cfg, res, label)
        s = summarize(res.runs_matrix(series).ravel())
        rows.append(
            [
                *(config_value(cfg, name) for name in axes),
                series,
                s.n,
                f"{to_us(s.mean):.2f}",
                f"{s.cv:.4f}",
                f"{s.norm_min:.3f}",
                f"{s.norm_max:.3f}",
            ]
        )
    return render_table(
        [*axes, "label", "n", "mean us", "CV", "norm min", "norm max"],
        rows,
        title=title,
    )


# ---------------------------------------------------------------------------
# Tasking metrics
# ---------------------------------------------------------------------------

#: Suffixes under which the tasking scheduler's internals ride along with a
#: measurement's repetition times in a run record's series (see
#: :mod:`repro.bench.taskbench`).
TASKING_METRIC_SUFFIXES = (".steals", ".failed_steals", ".idle_frac")


def split_tasking_labels(labels: Sequence[str]) -> tuple[list[str], list[str]]:
    """Partition series labels into (time series, tasking-metric series).

    A label is a tasking *base* when all of its metric companions are
    present; the companions themselves land in the second list.

    >>> split_tasking_labels(["taskloop_g4", "taskloop_g4.steals",
    ...                       "taskloop_g4.failed_steals",
    ...                       "taskloop_g4.idle_frac", "reduction"])
    (['taskloop_g4', 'reduction'], ['taskloop_g4.steals', 'taskloop_g4.failed_steals', 'taskloop_g4.idle_frac'])
    """
    label_set = set(labels)
    bases = {
        label
        for label in labels
        if all(f"{label}{s}" in label_set for s in TASKING_METRIC_SUFFIXES)
    }
    metrics = {
        f"{base}{s}" for base in bases for s in TASKING_METRIC_SUFFIXES
    }
    return (
        [lb for lb in labels if lb not in metrics],
        [lb for lb in labels if lb in metrics],
    )


def render_tasking_summary(
    label: str,
    steals: np.ndarray,
    failed_steals: np.ndarray,
    idle_frac: np.ndarray,
) -> str:
    """Per-run work-stealing summary for one measurement.

    All three inputs are ``(n_runs, reps)`` matrices of the scheduler's
    per-repetition internals: successful steals, failed steal attempts,
    and the per-repetition idle fraction (share of thread-time spent
    looking for work).
    """
    steals = np.asarray(steals, dtype=np.float64)
    failed = np.asarray(failed_steals, dtype=np.float64)
    idle = np.asarray(idle_frac, dtype=np.float64)
    if not steals.shape == failed.shape == idle.shape or steals.ndim != 2:
        raise ValueError("tasking metric matrices must share a (runs, reps) shape")

    def fail_rate(s: np.ndarray, f: np.ndarray) -> float:
        attempts = float(s.sum() + f.sum())
        return float(f.sum()) / attempts if attempts else 0.0

    rows = []
    for i in range(steals.shape[0]):
        rows.append(
            [
                i + 1,
                f"{float(steals[i].mean()):.1f}",
                f"{float(failed[i].mean()):.1f}",
                f"{fail_rate(steals[i], failed[i]):.3f}",
                f"{float(idle[i].mean()):.3f}",
            ]
        )
    rows.append(
        [
            "all",
            f"{float(steals.mean()):.1f}",
            f"{float(failed.mean()):.1f}",
            f"{fail_rate(steals, failed):.3f}",
            f"{float(idle.mean()):.3f}",
        ]
    )
    return render_table(
        ["run", "steals/rep", "failed/rep", "fail rate", "idle frac"],
        rows,
        title=f"{label}: work-stealing scheduler metrics",
    )


# ---------------------------------------------------------------------------
# Distributed execution (shard / gather)
# ---------------------------------------------------------------------------


def render_shard_summary(summary: "ShardSummary") -> str:
    """One shard worker's closing report (``--shard i/N`` runs)."""
    lines = [
        f"shard {summary.label}: {summary.assigned} of "
        f"{summary.configs_total} config(s) assigned to this shard",
        f"  simulated: {summary.simulated}; served from cache: "
        f"{summary.cached}",
        f"  manifest:  {summary.manifest_path}",
        f"next: run the remaining shards against the same cache dir, then "
        f"`repro-omp gather` to assemble them",
    ]
    return "\n".join(lines)


def render_gather_summary(
    n_shards: int, n_entries: int, total_bytes: float, n_configs: int
) -> str:
    """The gather step's integrity summary (all digests verified)."""
    return (
        f"gather: {n_shards} shard manifest(s), {n_entries} cache "
        f"entry(ies) ({total_bytes:,.0f} bytes) verified by SHA-256; "
        f"assembled {n_configs} config(s)"
    )


# ---------------------------------------------------------------------------
# Harness telemetry
# ---------------------------------------------------------------------------


def _format_labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_telemetry(metrics: "MetricsRegistry") -> str:
    """The harness-telemetry section: one table per instrument kind.

    Renders a :class:`~repro.obs.metrics.MetricsRegistry` snapshot —
    counters, gauges, then histograms (count/mean/min/max) — with labels
    folded into the instrument name (``axis_wall_seconds{axis=runtime}``).
    An empty registry renders a single placeholder line.
    """
    data = metrics.to_dict()
    sections: list[str] = []
    scalar_rows = [
        [f"{e['name']}{_format_labels(e['labels'])}", kind, f"{e['value']:g}"]
        for kind, entries in (("counter", data["counters"]),
                              ("gauge", data["gauges"]))
        for e in entries
    ]
    if scalar_rows:
        sections.append(
            render_table(["metric", "kind", "value"], scalar_rows,
                         title="harness telemetry")
        )
    hist_rows = []
    for e in data["histograms"]:
        if not e["count"]:
            continue
        mean = e["total"] / e["count"]
        hist_rows.append(
            [
                f"{e['name']}{_format_labels(e['labels'])}",
                e["count"],
                f"{mean:.4g}",
                f"{e['min']:.4g}",
                f"{e['max']:.4g}",
            ]
        )
    if hist_rows:
        title = None if sections else "harness telemetry"
        sections.append(
            render_table(["histogram", "count", "mean", "min", "max"],
                         hist_rows, title=title)
        )
    if not sections:
        return "harness telemetry: (no metrics recorded)"
    return "\n\n".join(sections)
