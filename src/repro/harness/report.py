"""ASCII rendering helpers for tables and figure-like series.

The harness regenerates the paper's tables and figures as text: tables as
aligned columns, figure series as labelled rows of values (and a crude
unicode sparkline for trend reading in a terminal).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Align *rows* under *headers*."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a series (empty-safe).

    >>> sparkline([1, 2, 3])
    '▁▅█'
    """
    v = np.asarray(list(values), dtype=np.float64)
    if v.size == 0:
        return ""
    lo, hi = float(v.min()), float(v.max())
    if hi == lo:
        return _SPARK_CHARS[0] * v.size
    idx = np.minimum(
        (len(_SPARK_CHARS) - 1),
        ((v - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).round().astype(int),
    )
    return "".join(_SPARK_CHARS[i] for i in idx)


def render_series(
    label: str, xs: Sequence[object], ys: Sequence[float], unit: str = ""
) -> str:
    """One figure series as a labelled row with a sparkline."""
    pairs = "  ".join(f"{x}:{y:.4g}" for x, y in zip(xs, ys))
    suffix = f" [{unit}]" if unit else ""
    return f"{label:<28} {sparkline(ys)}  {pairs}{suffix}"


def render_norm_minmax_rows(
    label: str, norm: np.ndarray
) -> str:
    """Per-run normalized (min, max) rows — the Figure 3 payload."""
    lines = [f"{label}: normalized min/max per run"]
    for i, (lo, hi) in enumerate(np.asarray(norm), start=1):
        lines.append(f"  run {i:>2}: min {lo:.3f}  max {hi:.3f}")
    return "\n".join(lines)
