"""ASCII rendering helpers for tables and figure-like series.

The harness regenerates the paper's tables and figures as text: tables as
aligned columns, figure series as labelled rows of values (and a crude
unicode sparkline for trend reading in a terminal).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Align *rows* under *headers*."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a series (empty-safe).

    >>> sparkline([1, 2, 3])
    '▁▅█'
    """
    v = np.asarray(list(values), dtype=np.float64)
    if v.size == 0:
        return ""
    lo, hi = float(v.min()), float(v.max())
    if hi == lo:
        return _SPARK_CHARS[0] * v.size
    idx = np.minimum(
        (len(_SPARK_CHARS) - 1),
        ((v - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).round().astype(int),
    )
    return "".join(_SPARK_CHARS[i] for i in idx)


def render_series(
    label: str, xs: Sequence[object], ys: Sequence[float], unit: str = ""
) -> str:
    """One figure series as a labelled row with a sparkline."""
    pairs = "  ".join(f"{x}:{y:.4g}" for x, y in zip(xs, ys))
    suffix = f" [{unit}]" if unit else ""
    return f"{label:<28} {sparkline(ys)}  {pairs}{suffix}"


def render_norm_minmax_rows(
    label: str, norm: np.ndarray
) -> str:
    """Per-run normalized (min, max) rows — the Figure 3 payload."""
    lines = [f"{label}: normalized min/max per run"]
    for i, (lo, hi) in enumerate(np.asarray(norm), start=1):
        lines.append(f"  run {i:>2}: min {lo:.3f}  max {hi:.3f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Tasking metrics
# ---------------------------------------------------------------------------

#: Suffixes under which the tasking scheduler's internals ride along with a
#: measurement's repetition times in a run record's series (see
#: :mod:`repro.bench.taskbench`).
TASKING_METRIC_SUFFIXES = (".steals", ".failed_steals", ".idle_frac")


def split_tasking_labels(labels: Sequence[str]) -> tuple[list[str], list[str]]:
    """Partition series labels into (time series, tasking-metric series).

    A label is a tasking *base* when all of its metric companions are
    present; the companions themselves land in the second list.

    >>> split_tasking_labels(["taskloop_g4", "taskloop_g4.steals",
    ...                       "taskloop_g4.failed_steals",
    ...                       "taskloop_g4.idle_frac", "reduction"])
    (['taskloop_g4', 'reduction'], ['taskloop_g4.steals', 'taskloop_g4.failed_steals', 'taskloop_g4.idle_frac'])
    """
    label_set = set(labels)
    bases = {
        label
        for label in labels
        if all(f"{label}{s}" in label_set for s in TASKING_METRIC_SUFFIXES)
    }
    metrics = {
        f"{base}{s}" for base in bases for s in TASKING_METRIC_SUFFIXES
    }
    return (
        [lb for lb in labels if lb not in metrics],
        [lb for lb in labels if lb in metrics],
    )


def render_tasking_summary(
    label: str,
    steals: np.ndarray,
    failed_steals: np.ndarray,
    idle_frac: np.ndarray,
) -> str:
    """Per-run work-stealing summary for one measurement.

    All three inputs are ``(n_runs, reps)`` matrices of the scheduler's
    per-repetition internals: successful steals, failed steal attempts,
    and the per-repetition idle fraction (share of thread-time spent
    looking for work).
    """
    steals = np.asarray(steals, dtype=np.float64)
    failed = np.asarray(failed_steals, dtype=np.float64)
    idle = np.asarray(idle_frac, dtype=np.float64)
    if not steals.shape == failed.shape == idle.shape or steals.ndim != 2:
        raise ValueError("tasking metric matrices must share a (runs, reps) shape")

    def fail_rate(s: np.ndarray, f: np.ndarray) -> float:
        attempts = float(s.sum() + f.sum())
        return float(f.sum()) / attempts if attempts else 0.0

    rows = []
    for i in range(steals.shape[0]):
        rows.append(
            [
                i + 1,
                f"{float(steals[i].mean()):.1f}",
                f"{float(failed[i].mean()):.1f}",
                f"{fail_rate(steals[i], failed[i]):.3f}",
                f"{float(idle[i].mean()):.3f}",
            ]
        )
    rows.append(
        [
            "all",
            f"{float(steals.mean()):.1f}",
            f"{float(failed.mean()):.1f}",
            f"{fail_rate(steals, failed):.3f}",
            f"{float(idle.mean()):.3f}",
        ]
    )
    return render_table(
        ["run", "steals/rep", "failed/rep", "fail rate", "idle frac"],
        rows,
        title=f"{label}: work-stealing scheduler metrics",
    )
