"""Result containers with JSON round-trip."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import HarnessError
from repro.harness.config import ExperimentConfig
from repro.harness.freqlogger import FrequencyLog
from repro.stats.descriptive import summarize
from repro.stats.variability import VariabilityReport


@dataclass(frozen=True)
class RunRecord:
    """One benchmark invocation's measurements.

    ``series`` maps a measurement label (construct name, schedule label,
    stream kernel) to the repetition-time array of this run.
    """

    run_index: int
    series: Mapping[str, np.ndarray] = field(default_factory=dict)
    freq_log: FrequencyLog | None = None
    #: Execution provenance stamped by the harness (``"main"`` for in-process
    #: serial execution, ``"pid<N>"`` for pool workers, ``None`` before the
    #: harness stamps it).  Excluded from equality and from :meth:`to_dict`:
    #: *which* worker simulated a run is telemetry, not part of the result —
    #: cache entries and golden artifacts stay byte-identical across jobs=N.
    worker_id: str | None = field(default=None, compare=False)
    #: Wall-clock seconds the simulation of this run took (telemetry only;
    #: same exclusions as ``worker_id``).
    wall_seconds: float | None = field(default=None, compare=False)

    def labels(self) -> tuple[str, ...]:
        return tuple(self.series.keys())


@dataclass(frozen=True)
class ExperimentResult:
    """All runs of one configuration."""

    config: ExperimentConfig
    records: tuple[RunRecord, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise HarnessError("experiment produced no runs")

    @property
    def n_runs(self) -> int:
        return len(self.records)

    def labels(self) -> tuple[str, ...]:
        """The measurement labels shared by every run.

        All runs of one configuration execute the same benchmark payload, so
        a record carrying a different label set indicates the runs were
        mixed up (e.g. results merged across configs) — raise rather than
        silently trusting ``records[0]``.
        """
        expected = self.records[0].labels()
        for rec in self.records[1:]:
            if rec.labels() != expected:
                raise HarnessError(
                    f"run {rec.run_index} carries series {sorted(rec.labels())} "
                    f"but run {self.records[0].run_index} carries "
                    f"{sorted(expected)}; records belong to different payloads"
                )
        return expected

    def runs_matrix(self, label: str) -> np.ndarray:
        """(n_runs, reps) matrix of repetition times for one measurement."""
        rows = []
        for rec in self.records:
            if label not in rec.series:
                raise HarnessError(
                    f"run {rec.run_index} lacks series {label!r}; "
                    f"has {sorted(rec.series)}"
                )
            rows.append(np.asarray(rec.series[label], dtype=np.float64))
        lengths = {r.size for r in rows}
        if len(lengths) != 1:
            raise HarnessError(f"ragged repetition counts for {label!r}: {lengths}")
        return np.vstack(rows)

    def report(self, label: str) -> VariabilityReport:
        return VariabilityReport.from_runs(
            f"{self.config.display_label} [{label}]", self.runs_matrix(label)
        )

    def reports(self) -> dict[str, VariabilityReport]:
        return {label: self.report(label) for label in self.labels()}

    def to_records(self) -> list[dict]:
        """Tidy per-run summary rows: one per measurement label x run.

        Each row carries the ``label``, the ``run`` index, and the summary
        statistics of that run's repetition times.  The Study layer
        (:meth:`repro.harness.study.StudyResult.to_records`) prefixes these
        rows with the sweep's axis columns to form the long-form export.
        """
        records: list[dict] = []
        for label in self.labels():
            for rec in self.records:
                s = summarize(np.asarray(rec.series[label], dtype=np.float64))
                records.append(
                    {
                        "label": label,
                        "run": rec.run_index,
                        "n": s.n,
                        "mean": s.mean,
                        "sd": s.sd,
                        "min": s.minimum,
                        "p25": s.p25,
                        "median": s.median,
                        "p75": s.p75,
                        "max": s.maximum,
                        "cv": s.cv,
                        "norm_min": s.norm_min,
                        "norm_max": s.norm_max,
                    }
                )
        return records

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        records = []
        for rec in self.records:
            entry: dict = {
                "run_index": rec.run_index,
                "series": {k: np.asarray(v).tolist() for k, v in rec.series.items()},
            }
            if rec.freq_log is not None:
                entry["freq_log"] = {
                    "logger_cpu": rec.freq_log.logger_cpu,
                    "interval": rec.freq_log.interval,
                    "times": rec.freq_log.times.tolist(),
                    "freqs_khz": rec.freq_log.freqs_khz.tolist(),
                }
            records.append(entry)
        return {"config": self.config.to_dict(), "records": records}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentResult":
        """Rebuild from a :meth:`to_dict` payload.

        Only ``config`` and ``records`` are read; unknown top-level keys
        are ignored so enriched payloads — e.g. the ``cache_meta``
        provenance block :meth:`repro.harness.cache.ResultCache.put`
        embeds — round-trip through here without affecting the result.
        """
        config = ExperimentConfig.from_dict(data["config"])
        records = []
        for entry in data["records"]:
            freq_log = None
            if entry.get("freq_log") is not None:
                fl = entry["freq_log"]
                freq_log = FrequencyLog(
                    logger_cpu=fl["logger_cpu"],
                    interval=fl["interval"],
                    times=np.asarray(fl["times"]),
                    freqs_khz=np.asarray(fl["freqs_khz"], dtype=np.int64),
                )
            records.append(
                RunRecord(
                    run_index=entry["run_index"],
                    series={
                        k: np.asarray(v) for k, v in entry["series"].items()
                    },
                    freq_log=freq_log,
                )
            )
        return cls(config=config, records=tuple(records))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        return cls.from_dict(json.loads(Path(path).read_text()))
