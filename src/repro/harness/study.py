"""Declarative parameter-sweep studies.

The paper's evaluation — and every scenario beyond it — is a family of
parameter sweeps: benchmark x platform x threads x pinning x noise x
vendor.  :class:`Study` turns such a sweep into a value: axes declared
with :meth:`~Study.grid` / :meth:`~Study.zip` / :meth:`~Study.cases`
compose into an explicit configuration list, derived fields
(:meth:`~Study.derive`) and filters (:meth:`~Study.where`) refine it, and
:meth:`~Study.run` executes everything through one shared
:class:`~repro.harness.parallel.Sweep` (process-pool fan-out + on-disk
cache), exactly like the hand-rolled experiment drivers used to.

::

    study = (
        Study(ExperimentConfig(benchmark="syncbench", runs=5))
        .grid(num_threads=[4, 8, 16], runtime=["gnu", "llvm"])
        .where(lambda cfg: cfg.num_threads <= 30 or cfg.platform == "dardel")
    )
    res = study.run(jobs=0, cache=ResultCache("/tmp/repro-cache"))
    res.group_summaries("num_threads")         # pooled stats per axis value
    res.to_csv("sweep.csv")                    # tidy long-form export

Axis keys name either an :class:`ExperimentConfig` field
(``num_threads``, ``runtime``, ...) or — for any other key — an entry of
``benchmark_params`` (``grainsize``, ``outer_reps``, ...), so benchmark
knobs sweep exactly like launch knobs.  A ``benchmark_params`` point value
merges into (rather than replaces) the parameters accumulated so far.

Execution returns a :class:`StudyResult`: the per-config
:class:`~repro.harness.results.ExperimentResult` objects (positionally
and via axis-value lookup), plus *tidy* long-form records — one row per
config x run x measurement label, carrying the axis values and the
summary statistics of that run's repetition times — exportable to CSV or
JSON for external analysis.

Studies are immutable: every composition method returns a new
:class:`Study`, so a base sweep can be shared and specialized freely.
"""

from __future__ import annotations

import csv
import io
import itertools
import json
from dataclasses import dataclass, fields as _dataclass_fields
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import HarnessError
from repro.harness.backend import ExecutionBackend
from repro.harness.cache import ResultCache, cache_key
from repro.harness.config import ExperimentConfig
from repro.harness.parallel import Sweep
from repro.harness.results import ExperimentResult
from repro.obs.metrics import MetricsRegistry
from repro.stats.descriptive import SummaryStats, summarize

__all__ = ["Study", "StudyResult", "coerce_token", "config_value", "load_records"]

#: Field names of :class:`ExperimentConfig`; any other axis key addresses
#: ``benchmark_params``.
_CONFIG_FIELDS = frozenset(f.name for f in _dataclass_fields(ExperimentConfig))

#: Identity columns always present in tidy records (before swept axes).
_IDENTITY_AXES = ("platform", "benchmark", "num_threads")

#: Statistics carried by one tidy record, in column order.
_STAT_COLUMNS = (
    "n", "mean", "sd", "min", "p25", "median", "p75", "max",
    "cv", "norm_min", "norm_max",
)


def config_value(config: ExperimentConfig, name: str) -> Any:
    """The value of axis *name* on *config*.

    Resolves config fields first, then ``benchmark_params`` entries;
    raises :class:`HarnessError` for a name the config does not carry.
    """
    if name in _CONFIG_FIELDS:
        return getattr(config, name)
    try:
        return config.benchmark_params[name]
    except KeyError:
        raise HarnessError(
            f"config {config.display_label!r} has no axis {name!r} "
            f"(not a config field nor a benchmark parameter)"
        ) from None


def _check_axis_values(name: str, values: Any) -> tuple:
    if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
        raise HarnessError(
            f"axis {name!r} needs a sequence of values, got {values!r} "
            f"(wrap a single value in a list)"
        )
    values = tuple(values)
    if not values:
        raise HarnessError(f"axis {name!r} has no values")
    return values


@dataclass(frozen=True)
class _Axis:
    """One declared sweep dimension: an ordered tuple of override points."""

    kind: str  # "grid" | "zip" | "cases"
    names: tuple[str, ...]
    points: tuple[Mapping[str, Any], ...]


class Study:
    """A declarative sweep specification over :class:`ExperimentConfig`.

    Parameters
    ----------
    base:
        The configuration every point starts from (defaults to
        ``ExperimentConfig()``).
    name / description:
        Used by reports and exports.
    """

    def __init__(
        self,
        base: ExperimentConfig | None = None,
        *,
        name: str = "study",
        description: str = "",
    ):
        self.base = base if base is not None else ExperimentConfig()
        self.name = name
        self.description = description
        self._axes: tuple[_Axis, ...] = ()
        self._derived: tuple[tuple[str, Callable[[ExperimentConfig], Any]], ...] = ()
        self._predicates: tuple[Callable[[ExperimentConfig], bool], ...] = ()

    # -- composition (every method returns a new Study) ----------------------

    def _clone(self, **updates) -> "Study":
        out = Study(self.base, name=self.name, description=self.description)
        out._axes = updates.get("axes", self._axes)
        out._derived = updates.get("derived", self._derived)
        out._predicates = updates.get("predicates", self._predicates)
        return out

    def grid(self, **axes: Sequence[Any]) -> "Study":
        """Cross product over the given value lists (first key outermost).

        Each call adds one axis; axes from successive calls multiply.  A
        key repeated in a later axis overrides the earlier value.
        """
        if not axes:
            raise HarnessError("grid() needs at least one KEY=[values] axis")
        values = [_check_axis_values(k, v) for k, v in axes.items()]
        names = tuple(axes)
        points = tuple(
            dict(zip(names, combo)) for combo in itertools.product(*values)
        )
        axis = _Axis(kind="grid", names=names, points=points)
        return self._clone(axes=self._axes + (axis,))

    def zip(self, **axes: Sequence[Any]) -> "Study":
        """Tie equal-length value lists together (one point per position)."""
        if not axes:
            raise HarnessError("zip() needs at least one KEY=[values] axis")
        values = [_check_axis_values(k, v) for k, v in axes.items()]
        lengths = {len(v) for v in values}
        if len(lengths) != 1:
            raise HarnessError(
                f"zip() axes must share a length, got "
                f"{ {k: len(v) for k, v in zip(axes, values)} }"
            )
        names = tuple(axes)
        points = tuple(dict(zip(names, combo)) for combo in zip(*values))
        axis = _Axis(kind="zip", names=names, points=points)
        return self._clone(axes=self._axes + (axis,))

    def cases(self, *points: Mapping[str, Any]) -> "Study":
        """Explicit override points (for irregular axes a product can't
        express, e.g. per-platform thread sweeps)."""
        if not points:
            raise HarnessError("cases() needs at least one point")
        frozen: list[dict[str, Any]] = []
        names: list[str] = []
        for point in points:
            if not isinstance(point, Mapping):
                raise HarnessError(f"cases() points must be mappings, got {point!r}")
            frozen.append(dict(point))
            for key in point:
                if key not in names:
                    names.append(key)
        axis = _Axis(kind="cases", names=tuple(names), points=tuple(frozen))
        return self._clone(axes=self._axes + (axis,))

    def derive(self, **fns: Callable[[ExperimentConfig], Any]) -> "Study":
        """Compute fields from each expanded config (e.g. placement from
        platform + thread count).  Applied in declaration order, after all
        axes; each function sees the previous derivations applied."""
        for key, fn in fns.items():
            if not callable(fn):
                raise HarnessError(f"derive({key}=...) needs a callable, got {fn!r}")
        return self._clone(derived=self._derived + tuple(fns.items()))

    def where(self, pred: Callable[[ExperimentConfig], bool]) -> "Study":
        """Keep only configs for which *pred* is true (applied after
        :meth:`derive`)."""
        if not callable(pred):
            raise HarnessError(f"where() needs a callable, got {pred!r}")
        return self._clone(predicates=self._predicates + (pred,))

    # -- expansion ------------------------------------------------------------

    def axis_names(self) -> tuple[str, ...]:
        """Swept axis keys, in declaration order (first appearance wins)."""
        names: list[str] = []
        for axis in self._axes:
            for name in axis.names:
                if name not in names:
                    names.append(name)
        return tuple(names)

    def _apply_point(self, key: str, value: Any, fields: dict, params: dict) -> None:
        if key == "benchmark_params":
            if not isinstance(value, Mapping):
                raise HarnessError(
                    f"benchmark_params point value must be a mapping, got {value!r}"
                )
            params.update(value)
        elif key in _CONFIG_FIELDS:
            fields[key] = value
        else:
            params[key] = value

    def configs(self) -> tuple[ExperimentConfig, ...]:
        """The expanded configuration list, in axis declaration order."""
        built: list[ExperimentConfig] = []
        for combo in itertools.product(*(axis.points for axis in self._axes)):
            fields: dict[str, Any] = {}
            params: dict[str, Any] = dict(self.base.benchmark_params)
            for point in combo:
                for key, value in point.items():
                    self._apply_point(key, value, fields, params)
            cfg = self.base.with_overrides(benchmark_params=params, **fields)
            for key, fn in self._derived:
                value = fn(cfg)
                if key in _CONFIG_FIELDS:
                    cfg = cfg.with_overrides(**{key: value})
                else:
                    cfg = cfg.with_overrides(
                        benchmark_params={**cfg.benchmark_params, key: value}
                    )
            if all(pred(cfg) for pred in self._predicates):
                built.append(cfg)
        return tuple(built)

    def __len__(self) -> int:
        return len(self.configs())

    def preview(self, cache: ResultCache | None = None) -> list[dict[str, Any]]:
        """Expanded configs with cache keys and warm/cold status — the
        ``sweep --dry-run`` / ``POST /jobs?dry_run=1`` payload.

        One row per selected config: ``index``, ``label``, the full
        ``config`` dict, its ``cache_key`` and whether *cache* already
        holds an entry for it.  Probes the cache directory directly (no
        :meth:`ResultCache.get`), so previewing never perturbs the
        hit/miss counters and never simulates.
        """
        rows: list[dict[str, Any]] = []
        for index, cfg in enumerate(self.configs()):
            key = cache_key(cfg)
            cached = (
                cache is not None
                and (cache.cache_dir / f"{key}.json").exists()
            )
            rows.append({
                "index": index,
                "label": cfg.display_label,
                "config": cfg.to_dict(),
                "cache_key": key,
                "cached": bool(cached),
            })
        return rows

    # -- execution ------------------------------------------------------------

    def run(
        self,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        metrics: MetricsRegistry | None = None,
        backend: "ExecutionBackend | None" = None,
        fused: str = "off",
    ) -> "StudyResult":
        """Execute every selected config through one shared
        :class:`~repro.harness.parallel.Sweep`; bit-identical for any
        ``jobs`` (or *backend*, or *fused* mode) and replayable from
        *cache*.

        *backend* selects the execution mechanism explicitly (see
        :mod:`repro.harness.backend`); without one, *jobs* picks serial
        or process-pool execution and *fused* (``"auto"``/``"on"``/
        ``"off"``) routes eligible configs through the fused rep-axis
        engine (:mod:`repro.sim.fused`).  A sharded backend executes only
        this worker's shard and raises
        :class:`~repro.harness.shard.ShardRunComplete` after writing its
        manifest — assemble the shards with :meth:`gather`.

        With *metrics*, the sweep's harness telemetry is recorded (see
        :class:`~repro.harness.parallel.Sweep`) and additionally broken
        down per swept axis: every config's wall time is observed into an
        ``axis_wall_seconds{axis=..., value=...}`` histogram per axis it
        belongs to, so slow axis values stand out in the telemetry report.
        """
        configs = self.configs()
        if not configs:
            raise HarnessError(
                f"study {self.name!r} selects no configurations "
                f"(empty axes or an unsatisfiable where() filter)"
            )
        sweep = Sweep(
            jobs=jobs, cache=cache, metrics=metrics, backend=backend, fused=fused
        )
        results = sweep.run(configs)
        if metrics is not None:
            for name in self.axis_names():
                for cfg, wall in zip(configs, sweep.last_config_walls):
                    metrics.histogram(
                        "axis_wall_seconds",
                        axis=name,
                        value=config_value(cfg, name),
                    ).observe(wall)
        return StudyResult(study=self, configs=configs, results=tuple(results))

    def gather(
        self,
        cache: ResultCache,
        expected_shards: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> "StudyResult":
        """Assemble a sharded run of this study from *cache*.

        Validates the shard manifests (complete partition, consistent
        shard count, per-entry SHA-256 integrity), then replays every
        config's cached entry — never simulating — into a
        :class:`StudyResult` byte-identical to ``run(jobs=1, cache=...)``
        on one host.  See :func:`repro.harness.shard.gather_study`.
        """
        from repro.harness.shard import gather_study

        return gather_study(
            self, cache, expected_shards=expected_shards, metrics=metrics
        )


class StudyResult:
    """All results of one executed :class:`Study`.

    Holds the per-config :class:`ExperimentResult` objects (aligned with
    ``configs``) and derives tidy long-form records from them on demand.
    """

    def __init__(
        self,
        study: Study,
        configs: Sequence[ExperimentConfig],
        results: Sequence[ExperimentResult],
    ):
        if len(configs) != len(results):
            raise HarnessError(
                f"{len(configs)} configs but {len(results)} results"
            )
        self.study = study
        self.configs = tuple(configs)
        self.results = tuple(results)

    @property
    def axes(self) -> tuple[str, ...]:
        return self.study.axis_names()

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[tuple[ExperimentConfig, ExperimentResult]]:
        return iter(zip(self.configs, self.results))

    def __getitem__(self, index: int) -> ExperimentResult:
        return self.results[index]

    # -- lookup ---------------------------------------------------------------

    def by(self, *names: str) -> dict[Any, ExperimentResult]:
        """Results keyed by axis value(s): one name keys by the bare value,
        several by the value tuple.  Raises if keys collide (the named axes
        do not identify configs uniquely)."""
        if not names:
            raise HarnessError("by() needs at least one axis name")
        out: dict[Any, ExperimentResult] = {}
        for cfg, result in self:
            values = tuple(config_value(cfg, n) for n in names)
            key = values[0] if len(names) == 1 else values
            if key in out:
                raise HarnessError(
                    f"axes {names} do not identify configs uniquely "
                    f"(duplicate key {key!r})"
                )
            out[key] = result
        return out

    def get(self, **axis_values: Any) -> ExperimentResult:
        """The unique result whose config matches every given axis value."""
        matches = [
            result
            for cfg, result in self
            if all(config_value(cfg, k) == v for k, v in axis_values.items())
        ]
        if len(matches) != 1:
            raise HarnessError(
                f"{axis_values} matches {len(matches)} configs, need exactly 1"
            )
        return matches[0]

    def values(self, name: str) -> tuple[Any, ...]:
        """Distinct values of axis *name*, in first-appearance order."""
        seen: list[Any] = []
        for cfg in self.configs:
            value = config_value(cfg, name)
            if value not in seen:
                seen.append(value)
        return tuple(seen)

    # -- tidy records ----------------------------------------------------------

    def record_axes(self) -> tuple[str, ...]:
        """Identity columns of the tidy records: platform/benchmark/threads
        plus every swept axis (ordered, deduplicated)."""
        names = list(_IDENTITY_AXES)
        for name in self.axes:
            if name not in names:
                names.append(name)
        return tuple(names)

    def to_records(self, axes: Sequence[str] | None = None) -> list[dict[str, Any]]:
        """Tidy long-form rows: one per config x run x measurement label.

        Each row carries the axis columns, the measurement ``label``, the
        ``run`` index, and the summary statistics of that run's repetition
        times (via :func:`repro.stats.descriptive.summarize`).
        """
        axis_names = tuple(axes) if axes is not None else self.record_axes()
        records: list[dict[str, Any]] = []
        for cfg, result in self:
            identity = {name: config_value(cfg, name) for name in axis_names}
            for row in result.to_records():
                records.append({**identity, **row})
        return records

    def _resolve_label(
        self, cfg: ExperimentConfig, result: ExperimentResult,
        label: str | Callable[[ExperimentConfig], str] | None,
    ) -> str:
        if label is None:
            return result.labels()[0]
        if callable(label):
            return label(cfg)
        return label

    def group_summaries(
        self,
        axis: str,
        label: str | Callable[[ExperimentConfig], str] | None = None,
    ) -> dict[Any, SummaryStats]:
        """Pooled variability statistics per value of *axis*.

        Pools every repetition time of every run of every config sharing
        the axis value and summarizes the pool (mean/sd/CV/normalized
        min-max — the paper's variability metrics).  ``label`` picks the
        measurement series: a fixed label, a per-config callable, or
        ``None`` for each result's first series.
        """
        pools: dict[Any, list[np.ndarray]] = {}
        for cfg, result in self:
            value = config_value(cfg, axis)
            series = self._resolve_label(cfg, result, label)
            pools.setdefault(value, []).append(result.runs_matrix(series).ravel())
        return {
            value: summarize(np.concatenate(chunks))
            for value, chunks in pools.items()
        }

    # -- export ----------------------------------------------------------------

    def to_json_text(self) -> str:
        """The JSON export as a string — exactly the bytes :meth:`to_json`
        writes, so the job service can serve records byte-identical to a
        CLI ``--out`` file."""
        payload = {
            "study": self.study.name,
            "description": self.study.description,
            "axes": list(self.record_axes()),
            "records": self.to_records(),
        }
        return json.dumps(payload, indent=2) + "\n"

    def to_csv_text(self) -> str:
        """The CSV export as a string (same bytes as :meth:`to_csv`)."""
        records = self.to_records()
        columns = [*self.record_axes(), "label", "run", *_STAT_COLUMNS]
        buffer = io.StringIO(newline="")
        writer = csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        writer.writerows(records)
        return buffer.getvalue()

    def to_json(self, path: str | Path) -> int:
        """Write the tidy records (plus study metadata) as JSON; returns
        the number of records written."""
        text = self.to_json_text()
        Path(path).write_text(text)
        return len(self.to_records())

    def to_csv(self, path: str | Path) -> int:
        """Write the tidy records as CSV (header = axis + stat columns);
        returns the number of records written."""
        records = self.to_records()
        with open(path, "w", newline="") as fh:
            fh.write(self.to_csv_text())
        return len(records)


def coerce_token(raw: str) -> Any:
    """Coerce a string token to int/float/bool/None where it parses.

    The one coercion rule shared by the CLI (``--param`` / ``--grid`` /
    ``--zip`` values) and the CSV reader, so a value written through one
    round-trips identically through the other: numbers first, then
    ``true``/``false``/``none`` (case-insensitive), else the string.
    """
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    lowered = raw.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered == "none":
        return None
    return raw


def _coerce_csv_cell(raw: str) -> Any:
    """Undo CSV stringification (``""`` is how ``None`` writes out)."""
    if raw == "":
        return None
    return coerce_token(raw)


def load_records(path: str | Path) -> list[dict[str, Any]]:
    """Read back a :meth:`StudyResult.to_csv` / :meth:`~StudyResult.to_json`
    export as the list of tidy records."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        payload = json.loads(path.read_text())
        return list(payload["records"])
    with open(path, newline="") as fh:
        return [
            {key: _coerce_csv_cell(value) for key, value in row.items()}
            for row in csv.DictReader(fh)
        ]
