"""The concurrency governor: worker threads and per-client rate limits.

Two resources need governing in the job service.  *Execution slots*: all
jobs multiplex over one shared persistent
:class:`~repro.harness.backend.ProcessPoolBackend` — jobs must not each
spawn their own pool, so the degree of job-level concurrency is set by
how many :class:`Governor` worker threads drain the queue, while the
process-level parallelism inside each job is the shared pool's size.
*Request admission*: each client gets a :class:`TokenBucket`; submissions
beyond its rate are rejected with 429 rather than queued, keeping one
chatty client from starving the rest.

Clock discipline (DET005): nothing in the service derives identity from
time.  The single place a clock is read is :func:`monotonic_clock` —
monotonic, never wall time — and it feeds only rate limiting here and
the telemetry helpers in the server.  Buckets take the clock as an
injectable parameter so tests drive them deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["Governor", "TokenBucket", "monotonic_clock"]


def monotonic_clock() -> float:
    """The service's only clock: monotonic seconds, for rate limiting
    and telemetry durations — never for identity (DET005)."""
    return time.monotonic()


class TokenBucket:
    """Classic token bucket: ``capacity`` burst, ``refill_per_sec`` rate.

    Thread-safe; the clock is injected so tests can advance time by
    hand instead of sleeping.
    """

    def __init__(
        self,
        capacity: float,
        refill_per_sec: float,
        clock: Callable[[], float] = monotonic_clock,
    ) -> None:
        if capacity <= 0 or refill_per_sec < 0:
            raise ValueError(
                f"token bucket needs capacity > 0 and refill >= 0, got "
                f"capacity={capacity!r} refill_per_sec={refill_per_sec!r}"
            )
        self.capacity = float(capacity)
        self.refill_per_sec = float(refill_per_sec)
        self._clock = clock
        self._tokens = float(capacity)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; never blocks."""
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._last)
            self._last = now
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_sec
            )
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


class Governor:
    """Runs jobs from a queue on a fixed pool of worker threads and
    admits client requests through per-client token buckets.

    The *runner* callable executes one job id to completion (the
    service's job loop); worker count bounds how many jobs progress
    concurrently, independent of how many processes each job's backend
    uses.
    """

    def __init__(
        self,
        queue,
        runner: Callable[[str], None],
        *,
        workers: int = 2,
        rate_capacity: float = 10.0,
        rate_refill_per_sec: float = 2.0,
        clock: Callable[[], float] = monotonic_clock,
    ) -> None:
        if workers < 1:
            raise ValueError(f"governor needs at least one worker, got {workers}")
        self.queue = queue
        self.workers = workers
        self._runner = runner
        self._rate_capacity = rate_capacity
        self._rate_refill = rate_refill_per_sec
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        self._threads: list[threading.Thread] = []

    # -- execution slots ---------------------------------------------------

    def start(self) -> None:
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._work, name=f"job-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _work(self) -> None:
        while True:
            job_id = self.queue.get()
            if job_id is None:
                return
            self._runner(job_id)

    def stop(self) -> None:
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads.clear()

    # -- admission ---------------------------------------------------------

    def admit(self, client: str) -> bool:
        """One submission token for *client*; False means rate-limited."""
        with self._buckets_lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(
                    self._rate_capacity, self._rate_refill, clock=self._clock
                )
                self._buckets[client] = bucket
        return bucket.try_acquire()
