"""Job lifecycle: identity, persistence and the dedup-aware queue.

A :class:`Job` is one submitted spec moving through the lifecycle
``queued -> running -> done | failed | cancelled``.  Its identity is
deterministic: ``j<seq>-<fingerprint12>``, where ``seq`` is the
submission ordinal and the fingerprint hashes the job's sorted cache
keys (:func:`repro.serve.jobspec.spec_fingerprint`).  Resubmitting the
same work yields the same fingerprint — which is exactly how the service
spots duplicates — while the ordinal keeps every submission addressable.
Nothing here reads a clock or entropy source (DET005): ordering comes
from submission sequence, identity from content.

Dedup works through the ``dedup_of`` link: when a spec's fingerprint
matches a job that is still queued or running, the new job is recorded
as a *follower* of that primary.  :class:`JobQueue` refuses to hand a
follower to a worker until its primary is terminal, so the primary
executes (and populates the result cache) exactly once; the follower
then replays entirely from cache — shared execution, zero duplicate
stores.

:class:`JobStore` persists each job as ``jobs/<job_id>.json`` under the
service state directory using the same atomic write-then-rename pattern
as the result cache and shard manifests, so a restarted service recovers
its job history (in-flight jobs are marked failed on recovery — the
processes backing them are gone).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ServiceError
from repro.harness.shard import _atomic_write_json

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobQueue",
    "JobStore",
    "job_id_for",
]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Legal lifecycle edges; anything else is a caller bug or a bad request.
_TRANSITIONS = {
    "queued": {"running", "cancelled", "failed"},
    "running": {"done", "failed", "cancelled"},
}


def job_id_for(seq: int, fingerprint: str) -> str:
    """Deterministic job id: submission ordinal + content fingerprint.

    The ordinal makes every submission addressable even when deduped;
    the fingerprint prefix makes duplicates recognizable at a glance
    (two ids sharing a suffix describe the same work).
    """
    return f"j{seq:04d}-{fingerprint[:12]}"


@dataclass
class Job:
    """One submitted job: spec, identity, lifecycle state and progress.

    The event list and its condition variable are in-memory only — SSE
    subscribers replay ``events`` from an offset and block on ``cond``
    for more.  Everything else round-trips through ``to_dict`` /
    ``from_dict`` for persistence.
    """

    job_id: str
    seq: int
    spec: dict
    fingerprint: str
    state: str = "queued"
    client: str = ""
    dedup_of: str | None = None
    error: str | None = None
    total: int = 0
    simulated: int = 0
    cached: int = 0
    events: list[dict] = field(default_factory=list, repr=False, compare=False)
    cond: threading.Condition = field(
        default_factory=threading.Condition, repr=False, compare=False
    )
    cancel_requested: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    # -- lifecycle ---------------------------------------------------------

    def transition(self, new_state: str) -> None:
        """Move to *new_state*, enforcing the lifecycle graph."""
        if new_state not in JOB_STATES:
            raise ServiceError(f"unknown job state {new_state!r}")
        if new_state not in _TRANSITIONS.get(self.state, frozenset()):
            raise ServiceError(
                f"job {self.job_id}: illegal transition "
                f"{self.state!r} -> {new_state!r}"
            )
        self.state = new_state

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # -- events (SSE feed) -------------------------------------------------

    def add_event(self, kind: str, **data: Any) -> dict:
        """Append an event and wake SSE subscribers.

        Events carry a per-job monotone ``seq`` so subscribers can
        verify ordering and resume from an offset.
        """
        with self.cond:
            event = {"seq": len(self.events), "event": kind, **data}
            self.events.append(event)
            self.cond.notify_all()
        return event

    def events_from(self, start: int = 0) -> Iterator[dict]:
        """Yield events from offset *start*, blocking for new ones until
        a terminal event has been delivered."""
        index = start
        while True:
            with self.cond:
                while index >= len(self.events):
                    if self.terminal:
                        return
                    self.cond.wait(timeout=1.0)
                batch = self.events[index:]
                index = len(self.events)
            for event in batch:
                yield event
                if event["event"] in TERMINAL_STATES:
                    return

    # -- serialization -----------------------------------------------------

    def snapshot(self) -> dict:
        """The public JSON shape served by ``GET /jobs/{id}``."""
        percent = (
            round(100.0 * (self.simulated + self.cached) / self.total, 2)
            if self.total
            else 0.0
        )
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "state": self.state,
            "fingerprint": self.fingerprint,
            "dedup_of": self.dedup_of,
            "client": self.client,
            "error": self.error,
            "progress": {
                "total": self.total,
                "simulated": self.simulated,
                "cached": self.cached,
                "percent": percent,
            },
            "spec": self.spec,
        }

    def to_dict(self) -> dict:
        """Persistent form (no events/locks — those are process-local)."""
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "spec": self.spec,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "client": self.client,
            "dedup_of": self.dedup_of,
            "error": self.error,
            "total": self.total,
            "simulated": self.simulated,
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(
            job_id=data["job_id"],
            seq=data["seq"],
            spec=data["spec"],
            fingerprint=data["fingerprint"],
            state=data.get("state", "queued"),
            client=data.get("client", ""),
            dedup_of=data.get("dedup_of"),
            error=data.get("error"),
            total=data.get("total", 0),
            simulated=data.get("simulated", 0),
            cached=data.get("cached", 0),
        )


class JobStore:
    """Atomic on-disk persistence of job state under ``<dir>/jobs/``.

    Uses the repo-wide write-then-rename pattern so a crash mid-save
    never leaves a torn job file.  ``load_all`` recovers prior jobs on
    startup; jobs that were queued or running when the previous process
    died are marked failed (their executions did not survive).
    """

    def __init__(self, state_dir: Path) -> None:
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.records_dir = self.state_dir / "records"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.records_dir.mkdir(parents=True, exist_ok=True)

    def save(self, job: Job) -> None:
        _atomic_write_json(self.jobs_dir / f"{job.job_id}.json", job.to_dict())

    def load_all(self) -> dict[str, Job]:
        """Recover persisted jobs, failing any that were in flight."""
        jobs: dict[str, Job] = {}
        for path in sorted(self.jobs_dir.glob("j*.json")):
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                job = Job.from_dict(data)
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise ServiceError(f"corrupt job file {path}: {exc}") from exc
            if not job.terminal:
                job.state = "failed"
                job.error = "service restarted while the job was in flight"
                self.save(job)
            jobs[job.job_id] = job
        return jobs

    def next_seq(self, jobs: dict[str, Job]) -> int:
        """The next submission ordinal after everything recovered."""
        return max((job.seq for job in jobs.values()), default=0) + 1

    def records_path(self, job_id: str, fmt: str) -> Path:
        """Where a finished job's rendered records live."""
        return self.records_dir / f"{job_id}.records.{fmt}"


class JobQueue:
    """FIFO of pending job ids that respects dedup ordering.

    A follower (``dedup_of`` set) is not eligible until its primary is
    terminal — that is the whole dedup mechanism: by the time the
    follower runs, every config it needs is warm in the shared cache.
    Workers block in :meth:`get`; :meth:`wake` re-checks eligibility
    after a primary finishes.
    """

    def __init__(self, jobs: dict[str, Job]) -> None:
        self._jobs = jobs
        self._pending: list[str] = []
        self._cond = threading.Condition()
        self._closed = False

    def put(self, job_id: str) -> None:
        with self._cond:
            if self._closed:
                raise ServiceError("job queue is closed")
            self._pending.append(job_id)
            self._cond.notify_all()

    def _pop_eligible(self) -> str | None:
        for i, job_id in enumerate(self._pending):
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                # cancelled while queued; drop it
                del self._pending[i]
                return self._pop_eligible()
            primary = self._jobs.get(job.dedup_of) if job.dedup_of else None
            if primary is None or primary.terminal:
                del self._pending[i]
                return job_id
        return None

    def get(self, timeout: float | None = None) -> str | None:
        """Next eligible job id; ``None`` once closed (or on timeout)."""
        with self._cond:
            while True:
                job_id = self._pop_eligible()
                if job_id is not None:
                    return job_id
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def remove(self, job_id: str) -> bool:
        """Drop a still-queued job (cancellation); False if not queued."""
        with self._cond:
            if job_id in self._pending:
                self._pending.remove(job_id)
                return True
            return False

    def wake(self) -> None:
        """Re-evaluate eligibility (a primary just went terminal)."""
        with self._cond:
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._pending)
