"""The JSON job-spec schema: the Study surface as a wire format.

A job spec is a plain JSON object describing either a declarative sweep
(the full :class:`~repro.harness.study.Study` surface: base config,
``grid`` / ``zip`` / ``cases`` axes, ``derive`` / ``where`` clauses,
``reps``, backend and shard selection) or a registered experiment by
name.  :func:`validate_spec` checks it strictly — every error names the
offending field — and :func:`spec_to_study` builds the exact Study the
CLI's ``repro-omp sweep`` flags would build, so a job submitted over
HTTP produces records byte-identical to the same sweep run locally.

Sweep specs::

    {
      "kind": "sweep",
      "base": {"platform": "vera", "benchmark": "syncbench", "runs": 2},
      "axes": [
        {"kind": "grid", "axes": {"num_threads": [4, 8]}},
        {"kind": "zip", "axes": {"schedule": ["static", "dynamic"],
                                  "runtime": ["gnu", "llvm"]}},
        {"kind": "cases", "points": [{"noise": "quiet"}]}
      ],
      "derive": {"places": "'threads' if num_threads > 128 else 'cores'"},
      "where": ["num_threads <= 30 or platform == 'dardel'"],
      "reps": 3
    }

Experiment specs::

    {"kind": "experiment", "experiment": "table2", "runs": 2, "reps": 5}

``derive`` / ``where`` clauses are *expressions over config fields*, not
Python callables: they are parsed against a strict AST whitelist (names,
constants, arithmetic, comparisons, boolean logic, conditional
expressions — no calls, no attributes, no subscripts), so a spec can
carry logic without the service evaluating arbitrary code.  Names
resolve like axis keys: config fields first, then ``benchmark_params``.

:func:`spec_from_study` inverts the mapping.  Studies built from plain
axes serialize declaratively; studies carrying Python ``derive`` /
``where`` callables (e.g. the registered experiments' placement lambdas)
cannot ship a lambda in JSON, so they *fold*: the expanded config list
itself becomes one ``cases`` axis of full config dicts over an empty
base.  Folding widens the axis-name set (every config field becomes an
axis), so the tidy-record columns differ — but the expanded config list
is byte-identical, which is the invariant the schema guarantees (and
``tests/test_serve.py`` locks for every registered experiment).

Everything here is a pure function of the spec's content — fingerprints
hash sorted cache keys, never clocks or pids (DET005).
"""

from __future__ import annotations

import ast
import hashlib
import itertools
import json
from dataclasses import fields as _dataclass_fields
from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError, HarnessError, JobSpecError
from repro.harness.backend import FUSED_MODES, available_backends, parse_shard
from repro.harness.cache import cache_key
from repro.harness.config import ExperimentConfig
from repro.harness.study import Study

__all__ = [
    "compile_clause",
    "reps_key",
    "spec_fingerprint",
    "spec_from_study",
    "spec_to_study",
    "validate_spec",
]

#: Legal ExperimentConfig field names for ``base`` and folded points.
_CONFIG_FIELDS = tuple(f.name for f in _dataclass_fields(ExperimentConfig))

_AXIS_KINDS = ("grid", "zip", "cases")

_SWEEP_KEYS = frozenset({
    "kind", "base", "axes", "derive", "where", "reps",
    "name", "description", "backend", "shard", "fused",
})
_EXPERIMENT_KEYS = frozenset({
    "kind", "experiment", "runs", "reps", "seed", "backend", "shard", "fused",
})


def reps_key(benchmark: str) -> str:
    """The repetition knob of *benchmark* (``reps`` maps onto it)."""
    return "num_times" if benchmark == "babelstream" else "outer_reps"


def reps_derive(reps: int) -> Callable[[ExperimentConfig], dict]:
    """The per-config ``reps`` derivation shared by the sweep CLI and the
    job service: the knob's name follows each config's benchmark (which
    may be a swept axis), and an explicit axis/param value wins."""

    def derive_params(cfg: ExperimentConfig) -> dict:
        return {reps_key(cfg.benchmark): reps, **cfg.benchmark_params}

    return derive_params


# ---------------------------------------------------------------------------
# Safe derive/where expressions
# ---------------------------------------------------------------------------

#: AST nodes a derive/where clause may contain.  Deliberately closed:
#: no Call, no Attribute, no Subscript, no comprehensions — a clause is
#: data-flow over config fields, not a program.
_ALLOWED_NODES = (
    ast.Expression,
    ast.BoolOp, ast.And, ast.Or,
    ast.UnaryOp, ast.Not, ast.USub, ast.UAdd,
    ast.BinOp, ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
    ast.Mod, ast.Pow,
    ast.Compare, ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.In, ast.NotIn, ast.Is, ast.IsNot,
    ast.IfExp,
    ast.Constant,
    ast.Name, ast.Load,
    ast.Tuple, ast.List,
)


def compile_clause(text: str, field: str) -> Callable[[ExperimentConfig], Any]:
    """Compile a derive/where expression into ``fn(config) -> value``.

    *field* names the spec location for error messages (e.g.
    ``derive.places``).  Raises :class:`JobSpecError` for syntax errors
    and for any construct outside the whitelist.
    """
    if not isinstance(text, str) or not text.strip():
        raise JobSpecError(
            f"job spec field {field!r}: expected a non-empty expression "
            f"string, got {text!r}"
        )
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError as exc:
        raise JobSpecError(
            f"job spec field {field!r}: invalid expression {text!r} ({exc.msg})"
        ) from None
    names: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise JobSpecError(
                f"job spec field {field!r}: expression {text!r} uses "
                f"{type(node).__name__}, which is outside the clause "
                f"whitelist (names, constants, arithmetic, comparisons, "
                f"boolean logic, conditionals)"
            )
        if isinstance(node, ast.Name):
            if node.id not in names:
                names.append(node.id)
    code = compile(tree, filename=f"<{field}>", mode="eval")

    def evaluate(cfg: ExperimentConfig) -> Any:
        from repro.harness.study import config_value

        try:
            scope = {name: config_value(cfg, name) for name in names}
        except HarnessError as exc:
            raise JobSpecError(f"job spec field {field!r}: {exc}") from None
        return eval(code, {"__builtins__": {}}, scope)  # noqa: S307 - whitelisted AST

    evaluate.clause = text  # type: ignore[attr-defined]
    return evaluate


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def _require_mapping(value: Any, field: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise JobSpecError(
            f"job spec field {field!r}: expected an object, got "
            f"{type(value).__name__}"
        )
    return value


def _require_int(value: Any, field: str, minimum: int = 1) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise JobSpecError(
            f"job spec field {field!r}: expected an integer >= {minimum}, "
            f"got {value!r}"
        )
    return value


def _validate_base(base: Any) -> dict:
    base = _require_mapping(base, "base")
    for key in base:
        if key not in _CONFIG_FIELDS:
            raise JobSpecError(
                f"job spec field 'base.{key}': unknown config field "
                f"(choose from {', '.join(_CONFIG_FIELDS)})"
            )
    if "benchmark_params" in base:
        _require_mapping(base["benchmark_params"], "base.benchmark_params")
    return {k: base[k] for k in base}


def _validate_axis(entry: Any, index: int) -> dict:
    field = f"axes[{index}]"
    entry = _require_mapping(entry, field)
    kind = entry.get("kind")
    if kind not in _AXIS_KINDS:
        raise JobSpecError(
            f"job spec field '{field}.kind': expected one of "
            f"{_AXIS_KINDS}, got {kind!r}"
        )
    if kind in ("grid", "zip"):
        extra = set(entry) - {"kind", "axes"}
        if extra:
            raise JobSpecError(
                f"job spec field '{field}.{sorted(extra)[0]}': unknown key "
                f"for a {kind} axis (expected 'kind' and 'axes')"
            )
        axes = _require_mapping(entry.get("axes"), f"{field}.axes")
        if not axes:
            raise JobSpecError(
                f"job spec field '{field}.axes': a {kind} axis needs at "
                f"least one KEY: [values] entry"
            )
        clean: dict[str, list] = {}
        lengths = set()
        for key, values in axes.items():
            vfield = f"{field}.axes.{key}"
            if not isinstance(values, list) or not values:
                raise JobSpecError(
                    f"job spec field '{vfield}': expected a non-empty "
                    f"list of values, got {values!r}"
                )
            clean[str(key)] = list(values)
            lengths.add(len(values))
        if kind == "zip" and len(lengths) != 1:
            raise JobSpecError(
                f"job spec field '{field}.axes': zip axes must share a "
                f"length, got { {k: len(v) for k, v in clean.items()} }"
            )
        return {"kind": kind, "axes": clean}
    # cases
    extra = set(entry) - {"kind", "points"}
    if extra:
        raise JobSpecError(
            f"job spec field '{field}.{sorted(extra)[0]}': unknown key "
            f"for a cases axis (expected 'kind' and 'points')"
        )
    points = entry.get("points")
    if not isinstance(points, list) or not points:
        raise JobSpecError(
            f"job spec field '{field}.points': expected a non-empty list "
            f"of override objects, got {points!r}"
        )
    for j, point in enumerate(points):
        _require_mapping(point, f"{field}.points[{j}]")
    return {"kind": "cases", "points": [dict(p) for p in points]}


def validate_spec(spec: Any) -> dict:
    """Validate and normalize a job spec; raises :class:`JobSpecError`
    naming the offending field.

    Returns a normalized copy: defaults filled in (``kind``, ``base``,
    ``axes``, ``name``, ``description``), axis entries cleaned, clause
    expressions compile-checked.  The normalized dict is pure data —
    callers re-derive callables via :func:`spec_to_study`.
    """
    spec = _require_mapping(spec, "<root>")
    kind = spec.get("kind", "sweep")
    if kind not in ("sweep", "experiment"):
        raise JobSpecError(
            f"job spec field 'kind': expected 'sweep' or 'experiment', "
            f"got {kind!r}"
        )

    legal = _SWEEP_KEYS if kind == "sweep" else _EXPERIMENT_KEYS
    for key in spec:
        if key not in legal:
            raise JobSpecError(
                f"job spec field {key!r}: unknown key for a {kind} spec "
                f"(choose from {', '.join(sorted(legal))})"
            )

    out: dict[str, Any] = {"kind": kind}
    if spec.get("backend") is not None:
        backend = spec["backend"]
        if backend not in available_backends():
            raise JobSpecError(
                f"job spec field 'backend': expected one of "
                f"{available_backends()}, got {backend!r}"
            )
        out["backend"] = backend
    if spec.get("shard") is not None:
        shard = spec["shard"]
        try:
            parse_shard(str(shard))
        except ConfigurationError as exc:
            raise JobSpecError(f"job spec field 'shard': {exc}") from None
        out["shard"] = str(shard)
    if spec.get("fused") is not None:
        fused = spec["fused"]
        if fused not in FUSED_MODES:
            raise JobSpecError(
                f"job spec field 'fused': expected one of {FUSED_MODES}, "
                f"got {fused!r}"
            )
        out["fused"] = fused
    if spec.get("reps") is not None:
        out["reps"] = _require_int(spec["reps"], "reps")

    if kind == "experiment":
        from repro.harness.experiments import EXPERIMENTS

        name = spec.get("experiment")
        if name not in EXPERIMENTS:
            raise JobSpecError(
                f"job spec field 'experiment': unknown experiment "
                f"{name!r} (choose from {', '.join(sorted(EXPERIMENTS))})"
            )
        if EXPERIMENTS[name].study_builder is None:
            raise JobSpecError(
                f"job spec field 'experiment': {name!r} does not declare "
                f"a study builder and cannot run as a service job"
            )
        out["experiment"] = name
        if spec.get("runs") is not None:
            out["runs"] = _require_int(spec["runs"], "runs")
        if spec.get("seed") is not None:
            out["seed"] = _require_int(spec["seed"], "seed", minimum=0)
        return out

    out["base"] = _validate_base(spec.get("base", {}))
    axes_raw = spec.get("axes", [])
    if not isinstance(axes_raw, list):
        raise JobSpecError(
            f"job spec field 'axes': expected a list of axis objects, "
            f"got {type(axes_raw).__name__}"
        )
    out["axes"] = [_validate_axis(entry, i) for i, entry in enumerate(axes_raw)]

    if spec.get("derive") is not None:
        derive = _require_mapping(spec["derive"], "derive")
        for key, text in derive.items():
            compile_clause(text, f"derive.{key}")
        out["derive"] = {str(k): v for k, v in derive.items()}
    if spec.get("where") is not None:
        where = spec["where"]
        if not isinstance(where, list):
            raise JobSpecError(
                f"job spec field 'where': expected a list of expression "
                f"strings, got {type(where).__name__}"
            )
        for j, text in enumerate(where):
            compile_clause(text, f"where[{j}]")
        out["where"] = list(where)

    out["name"] = str(spec.get("name", "sweep"))
    out["description"] = str(spec.get("description", "declarative CLI sweep"))

    # an unexpandable spec should fail at submit time, not inside a worker
    try:
        study = spec_to_study(out)
        if not study.configs():
            raise JobSpecError(
                "job spec field 'where': the filters select no "
                "configurations"
            )
    except (ConfigurationError, HarnessError) as exc:
        raise JobSpecError(f"job spec: {exc}") from None
    return out


# ---------------------------------------------------------------------------
# Spec <-> Study
# ---------------------------------------------------------------------------

def spec_to_study(spec: Mapping[str, Any]) -> Study:
    """Build the :class:`Study` a validated *spec* describes.

    The construction mirrors the sweep CLI exactly — same base-config
    handling, same axis application order, same per-config ``reps``
    derivation — so identical parameters produce identical configs (and
    identical cache keys) whether they arrive as flags or as JSON.
    """
    if spec.get("kind") == "experiment":
        from repro.harness.experiments import EXPERIMENTS

        knobs: dict[str, Any] = {}
        if spec.get("runs") is not None:
            knobs["runs"] = spec["runs"]
        if spec.get("seed") is not None:
            knobs["seed"] = spec["seed"]
        if spec.get("reps") is not None:
            # one number maps onto whichever repetition knobs the builder
            # has, exactly like the CLI's --reps
            knobs["outer_reps"] = spec["reps"]
            knobs["num_times"] = spec["reps"]
        return EXPERIMENTS[spec["experiment"]].build_study(**knobs)

    base_fields = dict(spec.get("base", {}))
    try:
        base = ExperimentConfig(**base_fields)
    except (ConfigurationError, TypeError) as exc:
        raise JobSpecError(f"job spec field 'base': {exc}") from None
    study = Study(
        base,
        name=str(spec.get("name", "sweep")),
        description=str(spec.get("description", "declarative CLI sweep")),
    )
    for entry in spec.get("axes", []):
        if entry["kind"] == "grid":
            study = study.grid(**entry["axes"])
        elif entry["kind"] == "zip":
            study = study.zip(**entry["axes"])
        else:
            study = study.cases(*entry["points"])
    for key, text in (spec.get("derive") or {}).items():
        study = study.derive(**{key: compile_clause(text, f"derive.{key}")})
    for j, text in enumerate(spec.get("where") or []):
        study = study.where(compile_clause(text, f"where[{j}]"))
    if spec.get("reps") is not None:
        study = study.derive(benchmark_params=reps_derive(spec["reps"]))
    return study


def _axis_to_entry(axis) -> dict:
    """Serialize one internal ``_Axis``; grid/zip reconstruct their value
    lists, anything unreconstructable falls back to explicit points."""
    points = [dict(p) for p in axis.points]
    if axis.kind in ("grid", "zip"):
        values: dict[str, list] = {}
        for name in axis.names:
            seen: list = []
            for point in points:
                if name not in point:
                    break
                value = point[name]
                if axis.kind == "zip" or value not in seen:
                    seen.append(value)
            else:
                values[name] = seen
                continue
            break
        if len(values) == len(axis.names):
            candidate = {"kind": axis.kind, "axes": values}
            if axis.kind == "grid":
                rebuilt = [
                    dict(zip(axis.names, combo))
                    for combo in itertools.product(
                        *(values[n] for n in axis.names)
                    )
                ]
            else:
                rebuilt = [
                    dict(zip(axis.names, combo))
                    for combo in zip(*(values[n] for n in axis.names))
                ]
            if rebuilt == points:
                return candidate
    return {"kind": "cases", "points": points}


def spec_from_study(study: Study, *, fold: bool | None = None) -> dict:
    """Serialize *study* to a job spec whose expansion is byte-identical.

    Plain-axis studies serialize declaratively.  Studies carrying Python
    ``derive`` / ``where`` callables cannot ship them as JSON, so they
    fold: the expanded config list becomes one ``cases`` axis of full
    config dicts over an empty base (same configs, wider axis-name set —
    see the module docstring).  *fold* forces either behavior.
    """
    has_callables = bool(study._derived or study._predicates)
    if fold is None:
        fold = has_callables
    if has_callables and not fold:
        raise JobSpecError(
            f"study {study.name!r} carries Python derive/where callables; "
            f"serialize it folded (fold=True) or express the clauses as "
            f"spec expressions"
        )
    if fold:
        return {
            "kind": "sweep",
            "base": {},
            "axes": [{
                "kind": "cases",
                "points": [cfg.to_dict() for cfg in study.configs()],
            }],
            "name": study.name,
            "description": study.description,
        }
    return {
        "kind": "sweep",
        "base": study.base.to_dict(),
        "axes": [_axis_to_entry(axis) for axis in study._axes],
        "name": study.name,
        "description": study.description,
    }


def spec_fingerprint(study: Study) -> str:
    """Content fingerprint of a job: the SHA-256 over the sorted cache
    keys of the study's expanded configs.

    Two specs that expand to the same work share a fingerprint — the
    dedup key for in-flight sharing.  A pure function of config content
    (the cache keys are themselves SHA-256 over canonical config JSON):
    no clock, pid, hostname or entropy may enter here (DET005).
    """
    keys = sorted(cache_key(cfg) for cfg in study.configs())
    blob = json.dumps(keys, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
