"""Simulation-as-a-service: an async job API over Study/Sweep.

The :mod:`repro.serve` package turns the declarative Study API into a
long-running HTTP service (``repro-omp serve``): clients submit JSON job
specs, the service expands them into config lists, multiplexes execution
over one shared :class:`~repro.harness.backend.ProcessPoolBackend`, and
streams progress over Server-Sent Events.  Everything is stdlib-only
(``http.server``), and every identity the service mints — job ids, spec
fingerprints, dedup keys — is a pure function of the submitted content,
never of wall clocks, pids or entropy (enforced statically by the DET005
lint rule).

Layers
------
:mod:`repro.serve.jobspec`
    The JSON job-spec schema: strict validation (errors name the
    offending field), ``spec_to_study`` / ``study_to_spec`` round-trips
    of the full Study surface, and a safe expression evaluator for
    string-form ``derive`` / ``where`` clauses.
:mod:`repro.serve.jobs`
    ``Job`` / ``JobStore`` / ``JobQueue``: deterministic job ids,
    atomic-write persistence, the queued → running → done/failed/
    cancelled lifecycle, and in-flight dedup keyed by the jobs' cache-key
    fingerprints.
:mod:`repro.serve.governor`
    The concurrency governor: one shared persistent pool backend for all
    jobs plus a token-bucket per-client rate limit.
:mod:`repro.serve.server`
    ``JobService`` (the engine: worker threads, progress events, records
    rendering) and the ``ThreadingHTTPServer`` front end.
:mod:`repro.serve.client`
    A small ``urllib``-based client used by ``repro-omp
    submit/status/fetch`` and the CI smoke job.

See docs/service.md for the endpoint catalog, lifecycle and dedup /
rate-limit semantics.
"""

from repro.serve.jobspec import (
    spec_from_study,
    spec_to_study,
    validate_spec,
)
from repro.serve.jobs import Job, JobQueue, JobStore
from repro.serve.governor import Governor, TokenBucket
from repro.serve.server import JobService, create_http_server

__all__ = [
    "Governor",
    "Job",
    "JobQueue",
    "JobService",
    "JobStore",
    "TokenBucket",
    "create_http_server",
    "spec_from_study",
    "spec_to_study",
    "validate_spec",
]
