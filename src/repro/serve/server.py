"""The job service engine and its stdlib HTTP front end.

:class:`JobService` ties the pieces together: it validates and expands
submitted specs (:mod:`repro.serve.jobspec`), assigns deterministic
ids and dedup links (:mod:`repro.serve.jobs`), and executes jobs on
:class:`~repro.serve.governor.Governor` worker threads — every job's
configs flowing through ONE shared result cache and ONE shared
execution backend, so concurrent jobs share warm results and never
spawn competing process pools.  Per-job harness telemetry is collected
in a private :class:`~repro.obs.metrics.MetricsRegistry` and merged
into the service-wide registry under a lock when the job finishes
(the registry itself is not thread-safe).

The HTTP layer is a plain ``http.server.ThreadingHTTPServer``:

========  =========================  =====================================
method    path                       meaning
========  =========================  =====================================
POST      ``/jobs``                  submit a spec (``?dry_run=1`` to
                                     preview the expansion without work)
GET       ``/jobs``                  all jobs, submission order
GET       ``/jobs/{id}``             one job snapshot
GET       ``/jobs/{id}/records``     tidy records (``?format=json|csv``)
GET       ``/jobs/{id}/events``      SSE progress stream
POST      ``/jobs/{id}/cancel``      cancel queued or running work
GET       ``/healthz``               liveness + worker/queue counts
GET       ``/metrics``               service + harness telemetry
========  =========================  =====================================

Records served for a job are byte-identical to what ``repro-omp sweep
--out`` writes for the same parameters: both sides render through
:meth:`StudyResult.to_json_text` / :meth:`~StudyResult.to_csv_text`
over the same expanded configs (the CI ``serve-smoke`` job ``cmp``-s
the two files).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import JobSpecError, ReproError, ServiceError
from repro.harness.backend import (
    FusedBackend,
    ProcessPoolBackend,
    SerialBackend,
    ShardedBackend,
    parse_shard,
    resolve_jobs,
)
from repro.harness.cache import ResultCache, cache_key
from repro.harness.parallel import Sweep
from repro.harness.shard import ShardRunComplete
from repro.harness.study import StudyResult
from repro.obs.metrics import MetricsRegistry
from repro.serve.governor import Governor, monotonic_clock
from repro.serve.jobs import Job, JobQueue, JobStore, job_id_for
from repro.serve.jobspec import spec_fingerprint, spec_to_study, validate_spec

__all__ = ["JobService", "create_http_server"]


class JobService:
    """The engine behind the HTTP API (usable directly in-process).

    Parameters
    ----------
    state_dir:
        Root of all service state: ``jobs/`` (persisted job files),
        ``records/`` (rendered results), ``cache/`` (the shared result
        cache, unless *cache_dir* points elsewhere).
    workers:
        Governor worker threads — how many jobs progress concurrently.
    jobs:
        Process parallelism of the shared backend.  ``1`` (default)
        executes in-process; more builds one persistent
        :class:`ProcessPoolBackend` that every job multiplexes over.
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        workers: int = 2,
        jobs: int | None = 1,
        cache_dir: str | Path | None = None,
        rate_capacity: float = 20.0,
        rate_refill_per_sec: float = 5.0,
        clock=monotonic_clock,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.store = JobStore(self.state_dir)
        self.cache = ResultCache(
            Path(cache_dir) if cache_dir is not None else self.state_dir / "cache"
        )
        self.jobs: dict[str, Job] = self.store.load_all()
        self._seq = self.store.next_seq(self.jobs)
        self._lock = threading.RLock()
        self.workers = workers
        self.pool_jobs = resolve_jobs(jobs)
        self.backend = (
            SerialBackend()
            if self.pool_jobs == 1
            else ProcessPoolBackend(self.pool_jobs, persistent=True)
        )
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self.queue = JobQueue(self.jobs)
        self.governor = Governor(
            self.queue,
            self._run_job,
            workers=workers,
            rate_capacity=rate_capacity,
            rate_refill_per_sec=rate_refill_per_sec,
            clock=clock,
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.governor.start()

    def stop(self) -> None:
        self.governor.stop()
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    # -- submission --------------------------------------------------------

    def admit(self, client: str) -> bool:
        """Rate-limit gate for one client request (HTTP 429 when False)."""
        return self.governor.admit(client)

    def submit(
        self, spec: Any, *, client: str = "", dry_run: bool = False
    ) -> dict:
        """Validate *spec* and enqueue it (or just preview it).

        Dry runs return the expanded config list with cache keys and
        warm/cold status — exactly ``repro-omp sweep --dry-run`` — and
        create no job.  Real submissions dedup against in-flight work:
        a spec whose fingerprint matches a queued/running job becomes a
        follower that executes only after the primary, entirely from
        the then-warm shared cache.
        """
        normalized = validate_spec(spec)
        study = spec_to_study(normalized)
        if dry_run:
            return {
                "dry_run": True,
                "name": study.name,
                "description": study.description,
                "total": len(study.configs()),
                "configs": study.preview(self.cache),
            }
        fingerprint = spec_fingerprint(study)
        with self._lock:
            dedup_of = None
            for existing in self.jobs.values():
                if existing.fingerprint == fingerprint and not existing.terminal:
                    dedup_of = existing.job_id
                    break
            seq = self._seq
            self._seq += 1
            job = Job(
                job_id=job_id_for(seq, fingerprint),
                seq=seq,
                spec=normalized,
                fingerprint=fingerprint,
                client=client,
                dedup_of=dedup_of,
                total=len(study.configs()),
            )
            self.jobs[job.job_id] = job
        self.store.save(job)
        job.add_event(
            "queued",
            job_id=job.job_id,
            total=job.total,
            dedup_of=job.dedup_of,
        )
        self.queue.put(job.job_id)
        with self._metrics_lock:
            self.metrics.counter("service_jobs_submitted").inc()
            if dedup_of is not None:
                self.metrics.counter("service_jobs_deduped").inc()
        return job.snapshot()

    # -- queries -----------------------------------------------------------

    def get_job(self, job_id: str) -> Job:
        with self._lock:
            job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def list_jobs(self) -> list[dict]:
        with self._lock:
            jobs = sorted(self.jobs.values(), key=lambda j: j.seq)
        return [job.snapshot() for job in jobs]

    def records_text(self, job_id: str, fmt: str = "json") -> str:
        """A finished job's rendered records (raises until it is done)."""
        if fmt not in ("json", "csv"):
            raise ServiceError(f"unknown records format {fmt!r} (json or csv)")
        job = self.get_job(job_id)
        path = self.store.records_path(job_id, fmt)
        if job.state != "done" or not path.exists():
            raise ServiceError(
                f"job {job_id} has no records (state: {job.state})"
            )
        # bytes, not read_text: universal-newline decoding would fold the
        # CSV's \r\n terminators and break byte-identity with the CLI export
        return path.read_bytes().decode("utf-8")

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued or running job; terminal jobs cannot be."""
        job = self.get_job(job_id)
        with self._lock:
            if job.terminal:
                raise ServiceError(
                    f"job {job_id} is already {job.state} and cannot be "
                    f"cancelled"
                )
            if job.state == "queued" and self.queue.remove(job_id):
                job.transition("cancelled")
                self.store.save(job)
                job.add_event("cancelled", job_id=job_id)
                self.queue.wake()
                return job.snapshot()
        # running (or being picked up): ask the runner to stop between
        # configs
        job.cancel_requested.set()
        return job.snapshot()

    def service_metrics(self) -> dict:
        with self._lock:
            by_state: dict[str, int] = {}
            for job in self.jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
        with self._metrics_lock:
            telemetry = self.metrics.to_dict()
        return {
            "jobs_by_state": by_state,
            "queue_depth": len(self.queue),
            "workers": self.workers,
            "pool_jobs": self.pool_jobs,
            "cache": self.cache.stats(),
            "telemetry": telemetry,
        }

    # -- execution ---------------------------------------------------------

    def _job_backend(self, spec: dict):
        """The backend one job runs on.  'serial' opts out of the pool;
        a 'fused' mode routes the job through an in-process
        :class:`FusedBackend` (byte-identical, batched rep axis);
        everything else multiplexes over the shared backend; a shard
        wraps it (sharding partitions by cache key, so the wrapper is
        stateless)."""
        fused = spec.get("fused", "off") or "off"
        if spec.get("backend") == "serial":
            inner = SerialBackend()
        elif fused != "off":
            inner = FusedBackend(fused)
        else:
            inner = self.backend
        if spec.get("shard"):
            index, count = parse_shard(spec["shard"])
            return ShardedBackend(index, count, inner)
        return inner

    def _telemetry_snapshot(self, metrics: MetricsRegistry) -> dict:
        return {
            name: metrics.counter(name).value
            for name in ("cache_hits", "cache_misses", "cache_stores")
        }

    def _run_job(self, job_id: str) -> None:
        """Execute one job to a terminal state (runs on a governor
        worker thread)."""
        job = self.get_job(job_id)
        if job.terminal:
            return
        if job.cancel_requested.is_set():
            job.transition("cancelled")
            self.store.save(job)
            job.add_event("cancelled", job_id=job_id)
            self.queue.wake()
            return
        job.transition("running")
        self.store.save(job)
        job.add_event("running", job_id=job_id, total=job.total)
        job_metrics = MetricsRegistry()
        try:
            self._execute(job, job_metrics)
        except ShardRunComplete as complete:
            summary = complete.summary
            job.simulated = summary.simulated
            job.cached = summary.cached
            job.transition("done")
            self.store.save(job)
            job.add_event(
                "done",
                job_id=job_id,
                shard={
                    "shard": summary.label,
                    "configs_total": summary.configs_total,
                    "assigned": summary.assigned,
                    "simulated": summary.simulated,
                    "cached": summary.cached,
                    "manifest": str(summary.manifest_path),
                },
                records=False,
            )
        except ReproError as exc:
            self._fail(job, str(exc))
        except Exception as exc:  # noqa: BLE001 - job must reach a terminal state
            self._fail(job, f"{type(exc).__name__}: {exc}")
        finally:
            with self._metrics_lock:
                self.metrics.merge(job_metrics)
            self.queue.wake()

    def _fail(self, job: Job, message: str) -> None:
        job.error = message
        job.transition("failed")
        self.store.save(job)
        job.add_event("failed", job_id=job.job_id, error=message)

    def _execute(self, job: Job, job_metrics: MetricsRegistry) -> None:
        study = spec_to_study(job.spec)
        backend = self._job_backend(job.spec)
        if backend.is_sharded:
            # whole-batch: membership is decided inside the sweep, and
            # completion surfaces as ShardRunComplete (caught above)
            study.run(cache=self.cache, metrics=job_metrics, backend=backend)
            raise ServiceError(
                f"sharded job {job.job_id} finished without a shard summary"
            )
        configs = study.configs()
        sweep = Sweep(cache=self.cache, metrics=job_metrics, backend=backend)
        results = []
        for index, cfg in enumerate(configs):
            if job.cancel_requested.is_set():
                job.transition("cancelled")
                self.store.save(job)
                job.add_event(
                    "cancelled", job_id=job.job_id, done=index, total=job.total
                )
                return
            warm = (self.cache.cache_dir / f"{cache_key(cfg)}.json").exists()
            results.append(sweep.run([cfg])[0])
            if warm:
                job.cached += 1
            else:
                job.simulated += 1
            done = index + 1
            job.add_event(
                "progress",
                job_id=job.job_id,
                done=done,
                total=job.total,
                simulated=job.simulated,
                cached=job.cached,
                percent=round(100.0 * done / job.total, 2) if job.total else 100.0,
                telemetry=self._telemetry_snapshot(job_metrics),
            )
        result = StudyResult(study=study, configs=configs, results=tuple(results))
        # write_bytes: text mode would rewrite the CSV's \r\n terminators
        # on some platforms, breaking byte-identity with the CLI export
        self.store.records_path(job.job_id, "json").write_bytes(
            result.to_json_text().encode("utf-8")
        )
        self.store.records_path(job.job_id, "csv").write_bytes(
            result.to_csv_text().encode("utf-8")
        )
        self.store.save(job)
        job.transition("done")
        self.store.save(job)
        job.add_event(
            "done",
            job_id=job.job_id,
            total=job.total,
            simulated=job.simulated,
            cached=job.cached,
            records=True,
        )


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto a :class:`JobService` (set per server)."""

    service: JobService  # injected by create_http_server
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # no stderr chatter (and no wall-clock log prefixes)

    # -- helpers -----------------------------------------------------------

    def _client(self) -> str:
        return self.headers.get("X-Client-Id") or self.client_address[0]

    def _send_json(self, status: int, payload: Any) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, exc: Exception) -> None:
        if isinstance(exc, JobSpecError):
            status = 400
        elif isinstance(exc, ServiceError):
            status = 404 if "unknown job" in str(exc) else 409
        else:
            status = 500
        self._send_json(status, {"error": str(exc)})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise JobSpecError("job spec: request body is empty")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobSpecError(f"job spec: request body is not JSON ({exc})")

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send_json(
                    200,
                    {
                        "ok": True,
                        "jobs": len(self.service.jobs),
                        "queue_depth": len(self.service.queue),
                        "workers": self.service.workers,
                    },
                )
            elif parts == ["metrics"]:
                self._send_json(200, self.service.service_metrics())
            elif parts == ["jobs"]:
                self._send_json(200, {"jobs": self.service.list_jobs()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, self.service.get_job(parts[1]).snapshot())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "records":
                fmt = parse_qs(url.query).get("format", ["json"])[0]
                text = self.service.records_text(parts[1], fmt)
                content_type = (
                    "application/json" if fmt == "json" else "text/csv"
                )
                self._send_text(200, text, content_type)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                self._stream_events(parts[1])
            else:
                self._send_json(404, {"error": f"no route for {url.path}"})
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - map to an HTTP error
            self._error(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                client = self._client()
                if not self.service.admit(client):
                    self._send_json(
                        429, {"error": f"rate limit exceeded for {client!r}"}
                    )
                    return
                dry = parse_qs(url.query).get("dry_run", ["0"])[0]
                dry_run = dry not in ("0", "", "false")
                spec = self._read_body()
                payload = self.service.submit(
                    spec, client=client, dry_run=dry_run
                )
                self._send_json(200 if dry_run else 201, payload)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._send_json(200, self.service.cancel(parts[1]))
            else:
                self._send_json(404, {"error": f"no route for {url.path}"})
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - map to an HTTP error
            self._error(exc)

    # -- SSE ---------------------------------------------------------------

    def _stream_events(self, job_id: str) -> None:
        job = self.service.get_job(job_id)  # 404s before headers go out
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for event in job.events_from(0):
                payload = json.dumps(event, sort_keys=True)
                frame = f"event: {event['event']}\ndata: {payload}\n\n"
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return
        self.close_connection = True


def create_http_server(
    service: JobService, host: str = "127.0.0.1", port: int = 8765
) -> ThreadingHTTPServer:
    """Bind the HTTP front end (``port=0`` picks a free port — tests).

    The caller owns the loop: ``server.serve_forever()`` (typically on a
    thread) and ``server.shutdown()`` + ``service.stop()`` to wind down.
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)
