"""A small stdlib client for the job service.

Backs the ``repro-omp submit / status / fetch`` subcommands and the CI
``serve-smoke`` job: plain ``urllib.request`` against the endpoints in
:mod:`repro.serve.server`, including a line-level parser for the SSE
progress stream.  Deadlines use the service's
:func:`~repro.serve.governor.monotonic_clock` — never wall time.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Iterator

from repro.errors import ServiceError
from repro.serve.governor import monotonic_clock

__all__ = ["ServiceClient", "parse_sse"]


def parse_sse(lines: Iterator[bytes]) -> Iterator[dict]:
    """Parse an SSE byte stream into event dicts.

    Yields ``{"event": name, "data": <parsed JSON>}`` per frame;
    tolerates comment lines and ignores fields other than ``event`` /
    ``data`` (the server only emits those).
    """
    event: str | None = None
    data: list[str] = []
    for raw in lines:
        line = raw.decode("utf-8").rstrip("\r\n")
        if not line:
            if data:
                yield {
                    "event": event or "message",
                    "data": json.loads("\n".join(data)),
                }
            event, data = None, []
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        value = value.removeprefix(" ")
        if field == "event":
            event = value
        elif field == "data":
            data.append(value)


class ServiceClient:
    """Talk to a running job service at *base_url*.

    ``client_id`` is sent as ``X-Client-Id`` so the service's per-client
    rate limiting keys on a stable name rather than the socket address.
    """

    def __init__(
        self,
        base_url: str,
        *,
        client_id: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Any | None = None
    ) -> urllib.request.Request:
        headers = {"Accept": "application/json"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        return urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )

    def _json(self, method: str, path: str, body: Any | None = None) -> Any:
        request = self._request(method, path, body)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServiceError(
                f"{method} {path} failed ({exc.code}): {detail}"
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach job service at {self.base_url}: {exc.reason}"
            ) from None

    # -- API ---------------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> dict:
        return self._json("GET", "/metrics")

    def submit(self, spec: dict, *, dry_run: bool = False) -> dict:
        path = "/jobs?dry_run=1" if dry_run else "/jobs"
        return self._json("POST", path, body=spec)

    def jobs(self) -> list[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def records(self, job_id: str, fmt: str = "json") -> str:
        request = self._request("GET", f"/jobs/{job_id}/records?format={fmt}")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            raise ServiceError(
                f"records for {job_id} unavailable ({exc.code}): {detail}"
            ) from None

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's SSE events until its terminal event."""
        request = self._request("GET", f"/jobs/{job_id}/events")
        response = urllib.request.urlopen(request, timeout=self.timeout)
        try:
            yield from parse_sse(iter(response.readline, b""))
        finally:
            response.close()

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll_seconds: float = 0.2) -> dict:
        """Poll until the job is terminal; returns the final snapshot."""
        import time

        deadline = monotonic_clock() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                return snapshot
            if monotonic_clock() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {snapshot['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_seconds)
