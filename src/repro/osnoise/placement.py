"""Placement of un-pinned noise events onto logical CPUs.

The Linux scheduler wakes kernel threads on an idle CPU when one exists;
only on a saturated machine do they preempt application threads.  This is
the mechanism behind two of the paper's findings:

* sparing 2 CPUs (30/32 on Vera, 254/256 on Dardel) gives the OS somewhere
  to run, dramatically reducing variability at high thread counts, and
* the ST configuration leaves each core's second hardware thread idle,
  absorbing noise near the benchmark without preempting it.

:class:`IdleFirstPlacement` implements exactly that preference order:
fully-idle cores first, then idle SMT siblings of busy cores, then (machine
saturated) a uniformly random busy CPU — a preemption.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import NoiseModelError
from repro.osnoise.source import NoiseEvent, placed
from repro.topology.hwthread import Machine


class PlacementPolicy:
    """Assigns a CPU to every event whose source had no inherent affinity."""

    def place(
        self,
        events: Sequence[NoiseEvent],
        machine: Machine,
        busy_cpus: Sequence[int],
        rng: np.random.Generator,
    ) -> list[NoiseEvent]:
        raise NotImplementedError


class IdleFirstPlacement(PlacementPolicy):
    """Idle cores → idle siblings → random busy CPU (preemption)."""

    def place(self, events, machine, busy_cpus, rng):
        busy = {int(c) for c in busy_cpus}
        # iterate the sorted view, not the set: set order is
        # insertion-dependent, and DET002 keeps loops order-stable even
        # where (as here) only an error message could observe the order
        for cpu in sorted(busy):
            if cpu >= machine.n_cpus:
                raise NoiseModelError(f"busy cpu {cpu} not on {machine.name}")
        busy_cores = {machine.hwthread(c).core_id for c in sorted(busy)}

        idle_free_cores = [
            c for c in range(machine.n_cpus)
            if c not in busy and machine.hwthread(c).core_id not in busy_cores
        ]
        idle_siblings = [
            c for c in range(machine.n_cpus)
            if c not in busy and machine.hwthread(c).core_id in busy_cores
        ]

        # the preference pool is invariant over one placement pass (the
        # idle sets depend only on busy_cpus), so all events draw from the
        # same pool and the per-event draws batch into one pre-drawn array.
        # A batched ``choice(pool, size=n)`` consumes the generator's
        # stream exactly like n scalar ``choice(pool)`` calls, so event
        # CPU assignments are bit-identical to the historical loop (this
        # is locked by a regression test in tests/test_rng.py).
        if idle_free_cores:
            pool = idle_free_cores
        elif idle_siblings:
            pool = idle_siblings
        else:
            pool = np.arange(machine.n_cpus)

        n_unassigned = sum(1 for ev in events if ev.cpu is None)
        drawn = rng.choice(pool, size=n_unassigned) if n_unassigned else ()
        cpus = iter(drawn)
        return [
            ev if ev.cpu is not None else placed(ev, int(next(cpus)))
            for ev in events
        ]


class PinnedPlacement(PlacementPolicy):
    """Degenerate policy placing every unassigned event on a fixed CPU set.

    Useful for ablations ("what if all daemons ran on CPU 0?") and tests.
    """

    def __init__(self, cpus: Sequence[int]):
        if not len(cpus):
            raise NoiseModelError("PinnedPlacement needs at least one cpu")
        self.cpus = tuple(int(c) for c in cpus)

    def place(self, events, machine, busy_cpus, rng):
        for cpu in self.cpus:
            if cpu >= machine.n_cpus:
                raise NoiseModelError(f"cpu {cpu} not on {machine.name}")
        choices = np.asarray(self.cpus)
        n_unassigned = sum(1 for ev in events if ev.cpu is None)
        drawn = rng.choice(choices, size=n_unassigned) if n_unassigned else ()
        cpus = iter(drawn)
        return [
            ev if ev.cpu is not None else placed(ev, int(next(cpus)))
            for ev in events
        ]
