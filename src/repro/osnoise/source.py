"""Noise event sources.

A *source* samples the (start, duration) marks of one class of OS activity
over a time window.  Two families cover everything the reproduction needs:

* :class:`TimerTickSource` — deterministic-period per-CPU scheduler ticks.
  Linux runs the tick only on non-idle CPUs (``NO_HZ_IDLE``), so ticks are
  intrinsically placed on the busy CPUs themselves.
* :class:`PoissonSource` — memoryless arrivals with log-normal service
  times; parameterized into daemons, IRQs and rare long events by the
  profiles module.  IRQ-like sources can carry a fixed CPU affinity
  (matching ``/proc/irq/*/smp_affinity``); the rest are placed by policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import NoiseModelError


@dataclass(frozen=True, slots=True)
class NoiseEvent:
    """One OS activity stealing CPU: ``[start, start+duration)``.

    ``cpu`` is ``None`` until a placement policy assigns it; sources with
    inherent affinity (ticks, IRQs) set it at sampling time.
    """

    start: float
    duration: float
    kind: str
    cpu: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise NoiseModelError(f"negative event duration {self.duration}")


def placed(event: NoiseEvent, cpu: int) -> NoiseEvent:
    """A copy of *event* assigned to *cpu*."""
    return NoiseEvent(event.start, event.duration, event.kind, cpu)


class NoiseSource:
    """Base class; subclasses implement :meth:`sample`."""

    kind: str = "noise"

    def sample(
        self,
        t_start: float,
        t_end: float,
        busy_cpus: Sequence[int],
        rng: np.random.Generator,
    ) -> list[NoiseEvent]:
        """All events of this source in ``[t_start, t_end)``."""
        raise NotImplementedError

    def sample_arrays(
        self,
        t_start: float,
        t_end: float,
        busy_cpus: Sequence[int],
        rng: np.random.Generator,
    ) -> Optional[tuple[np.ndarray, np.ndarray, np.ndarray, str]]:
        """Vectorized fast path: ``(starts, durations, cpus, kind)``.

        Sources whose events have an inherent CPU (ticks, IRQs) implement
        this to avoid per-event Python objects — a full-scale run realizes
        ~10^6 ticks.  Sources that need a placement policy return ``None``
        and fall back to :meth:`sample`.

        Must consume the *same* random draws as :meth:`sample` so both
        paths realize identical noise for a given generator state.
        """
        return None


@dataclass(frozen=True)
class TimerTickSource(NoiseSource):
    """Periodic scheduler tick on every busy CPU.

    Parameters
    ----------
    hz:
        Tick frequency (Linux ``CONFIG_HZ``, typically 100/250/1000).
    duration_mean / duration_jitter:
        Tick handler cost; actual cost is uniform in
        ``[mean - jitter, mean + jitter]``.
    """

    hz: float = 250.0
    duration_mean: float = 2.0e-6
    duration_jitter: float = 1.0e-6
    kind: str = "tick"

    def __post_init__(self) -> None:
        if self.hz <= 0:
            raise NoiseModelError(f"tick frequency must be positive, got {self.hz}")
        if self.duration_mean <= 0 or self.duration_jitter < 0:
            raise NoiseModelError("bad tick duration parameters")
        if self.duration_jitter > self.duration_mean:
            raise NoiseModelError("tick jitter exceeds mean (negative durations)")

    def _sample_impl(
        self, t_start, t_end, busy_cpus, rng
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if t_end < t_start:
            raise NoiseModelError("window end before start")
        period = 1.0 / self.hz
        starts_parts: list[np.ndarray] = []
        dur_parts: list[np.ndarray] = []
        cpu_parts: list[np.ndarray] = []
        for cpu in busy_cpus:
            # per-cpu phase offset: ticks are not synchronized across cpus
            phase = rng.random() * period
            first = t_start + phase
            n = int(max(0.0, np.floor((t_end - first) / period)) + 1) if first < t_end else 0
            if n <= 0:
                continue
            starts = first + period * np.arange(n)
            durations = rng.uniform(
                self.duration_mean - self.duration_jitter,
                self.duration_mean + self.duration_jitter,
                size=n,
            )
            starts_parts.append(starts)
            dur_parts.append(durations)
            cpu_parts.append(np.full(n, int(cpu), dtype=np.int64))
        if not starts_parts:
            empty = np.empty(0)
            return empty, empty.copy(), np.empty(0, dtype=np.int64)
        return (
            np.concatenate(starts_parts),
            np.concatenate(dur_parts),
            np.concatenate(cpu_parts),
        )

    def sample(self, t_start, t_end, busy_cpus, rng):
        starts, durations, cpus = self._sample_impl(t_start, t_end, busy_cpus, rng)
        return [
            NoiseEvent(float(s), float(d), self.kind, cpu=int(c))
            for s, d, c in zip(starts, durations, cpus)
        ]

    def sample_arrays(self, t_start, t_end, busy_cpus, rng):
        starts, durations, cpus = self._sample_impl(t_start, t_end, busy_cpus, rng)
        return starts, durations, cpus, self.kind


@dataclass(frozen=True)
class PoissonSource(NoiseSource):
    """Poisson arrivals with log-normal durations.

    Parameters
    ----------
    rate:
        Node-wide arrival rate (events/second).
    duration_median / duration_sigma:
        Log-normal service-time parameters.
    duration_cap:
        Hard upper bound on a single event (keeps tails physical).
    affinity:
        Optional fixed CPU set; when given, each event is assigned
        uniformly within it at sampling time (IRQ-style).
    """

    rate: float = 1.0
    duration_median: float = 200e-6
    duration_sigma: float = 1.0
    duration_cap: float = 0.05
    affinity: Optional[tuple[int, ...]] = None
    kind: str = "daemon"

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise NoiseModelError(f"negative rate {self.rate}")
        if self.duration_median <= 0 or self.duration_sigma < 0:
            raise NoiseModelError("bad duration parameters")
        if self.duration_cap <= 0:
            raise NoiseModelError("duration cap must be positive")
        if self.affinity is not None and len(self.affinity) == 0:
            raise NoiseModelError("empty affinity set")

    def _sample_impl(
        self, t_start, t_end, rng
    ) -> tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        if t_end < t_start:
            raise NoiseModelError("window end before start")
        horizon = t_end - t_start
        empty = np.empty(0)
        if self.rate == 0 or horizon == 0:
            return empty, empty.copy(), None
        n = int(rng.poisson(self.rate * horizon))
        if n == 0:
            return empty, empty.copy(), None
        starts = np.sort(t_start + rng.random(n) * horizon)
        durations = np.minimum(
            rng.lognormal(np.log(self.duration_median), self.duration_sigma, size=n),
            self.duration_cap,
        )
        cpus: Optional[np.ndarray] = None
        if self.affinity is not None:
            cpus = rng.choice(np.asarray(self.affinity, dtype=np.int64), size=n)
        return starts, durations, cpus

    def sample(self, t_start, t_end, busy_cpus, rng):
        starts, durations, cpus = self._sample_impl(t_start, t_end, rng)
        if cpus is None:
            return [
                NoiseEvent(float(s), float(d), self.kind, cpu=None)
                for s, d in zip(starts, durations)
            ]
        return [
            NoiseEvent(float(s), float(d), self.kind, cpu=int(c))
            for s, d, c in zip(starts, durations, cpus)
        ]

    def sample_arrays(self, t_start, t_end, busy_cpus, rng):
        if self.affinity is None:
            return None  # needs the placement policy
        starts, durations, cpus = self._sample_impl(t_start, t_end, rng)
        if cpus is None:
            cpus = np.empty(0, dtype=np.int64)
        return starts, durations, cpus, self.kind
