"""Operating-system noise substrate.

Models the extra-application activities the paper identifies as variability
sources: periodic timer ticks, kernel daemons (kworkers, housekeeping),
device interrupts, and rare long-running system events.  Each source
produces a marked point process of :class:`~repro.osnoise.source.NoiseEvent`
objects; a :class:`~repro.osnoise.placement.PlacementPolicy` decides which
logical CPU absorbs each event (idle CPUs first — this is the mechanism by
which the paper's "spare 2 cores" strategy and the ST configuration reduce
variability), and :class:`~repro.osnoise.model.NoiseModel` turns everything
into per-CPU preemption interval sets used by the execution model.
"""

from repro.osnoise.source import (
    NoiseEvent,
    NoiseSource,
    PoissonSource,
    TimerTickSource,
    placed,
)
from repro.osnoise.placement import IdleFirstPlacement, PinnedPlacement, PlacementPolicy
from repro.osnoise.model import NoiseModel, NoiseRealization, PlacedEvent
from repro.osnoise.profiles import (
    NoiseProfile,
    dardel_noise,
    noisy_profile,
    quiet_profile,
    vera_noise,
)

__all__ = [
    "NoiseEvent",
    "NoiseSource",
    "PoissonSource",
    "TimerTickSource",
    "placed",
    "PlacementPolicy",
    "IdleFirstPlacement",
    "PinnedPlacement",
    "NoiseModel",
    "NoiseRealization",
    "PlacedEvent",
    "NoiseProfile",
    "dardel_noise",
    "vera_noise",
    "quiet_profile",
    "noisy_profile",
]
