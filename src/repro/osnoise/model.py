"""Noise realization: from event processes to per-CPU preemption sets.

:class:`NoiseModel` samples every source of a profile over a run window,
places unassigned events, and compiles the result into a
:class:`NoiseRealization` that the execution model queries:

* :meth:`NoiseRealization.stolen_on` — intervals during which a CPU is
  executing OS work instead of the application thread pinned there
  (a thread makes **no** progress inside these intervals), and
* :meth:`NoiseRealization.sibling_pressure_on` — intervals during which the
  *SMT sibling* of a CPU is executing OS work; the thread keeps running but
  retires instructions more slowly (see the SMT penalty in the region
  executor).

Performance note: a full-scale schedbench run on the Dardel model realizes
on the order of a million timer ticks, so the realization keeps events in
flat NumPy arrays (start, duration, cpu, kind-code) and materializes
per-CPU :class:`~repro.sim.intervals.IntervalSet` objects lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import NoiseModelError
from repro.obs.tracer import CPU_TRACK_BASE, Tracer
from repro.osnoise.placement import IdleFirstPlacement, PlacementPolicy
from repro.osnoise.source import NoiseEvent, NoiseSource
from repro.sim.intervals import IntervalBatch, IntervalSet
from repro.topology.hwthread import Machine


def stolen_batch_fused(
    realizations: Sequence["NoiseRealization"], cpus: Sequence[int]
) -> IntervalBatch:
    """Rep-axis plane of stolen-time sets, ``(run, cpu)`` rows run-major.

    Vectorized formulation of per-row :meth:`NoiseRealization.stolen_on`
    queries for the fused engine; each row *is* the scalar set (the batch
    only pads them into one plane), so :meth:`IntervalBatch.overlap_fused`
    answers are bit-identical to the scalar reference.
    """
    return IntervalBatch(r.stolen_on(c) for r in realizations for c in cpus)


def sibling_batch_fused(
    realizations: Sequence["NoiseRealization"], cpus: Sequence[int]
) -> IntervalBatch:
    """Rep-axis plane of SMT sibling-pressure sets (see :func:`stolen_batch_fused`)."""
    return IntervalBatch(
        r.sibling_pressure_on(c) for r in realizations for c in cpus
    )


@dataclass(frozen=True, slots=True)
class PlacedEvent:
    """A noise event with its final CPU assignment."""

    start: float
    duration: float
    kind: str
    cpu: int


class NoiseRealization:
    """All noise of one run window, indexed for fast per-CPU queries."""

    def __init__(self, machine: Machine, events: Sequence[PlacedEvent] | None = None,
                 *, arrays: tuple[np.ndarray, np.ndarray, np.ndarray, list[str]] | None = None):
        """Construct from a list of :class:`PlacedEvent` (tests, small runs)
        or from flat arrays ``(starts, durations, cpus, kinds)`` (fast path).
        """
        self.machine = machine
        if arrays is not None:
            starts, durations, cpus, kinds = arrays
            self._starts = np.asarray(starts, dtype=np.float64)
            self._durations = np.asarray(durations, dtype=np.float64)
            self._cpus = np.asarray(cpus, dtype=np.int64)
            self._kinds = list(kinds)
        else:
            events = list(events or ())
            self._starts = np.asarray([e.start for e in events], dtype=np.float64)
            self._durations = np.asarray([e.duration for e in events], dtype=np.float64)
            self._cpus = np.asarray([e.cpu for e in events], dtype=np.int64)
            self._kinds = [e.kind for e in events]
        if not (
            self._starts.shape == self._durations.shape == self._cpus.shape
            and len(self._kinds) == self._starts.size
        ):
            raise NoiseModelError("inconsistent noise arrays")
        if self._cpus.size and (
            self._cpus.min() < 0 or self._cpus.max() >= machine.n_cpus
        ):
            bad = self._cpus[(self._cpus < 0) | (self._cpus >= machine.n_cpus)][0]
            raise NoiseModelError(f"event on unknown cpu {int(bad)}")
        self._stolen: dict[int, IntervalSet] = {}
        self._sibling: dict[int, IntervalSet] = {}
        # pre-sort by cpu for O(log n) per-cpu slicing
        order = np.argsort(self._cpus, kind="stable")
        self._sorted_starts = self._starts[order]
        self._sorted_durations = self._durations[order]
        self._sorted_cpus = self._cpus[order]

    # -- event access (lazy object materialization) ---------------------------

    @property
    def events(self) -> tuple[PlacedEvent, ...]:
        return tuple(
            PlacedEvent(float(s), float(d), k, int(c))
            for s, d, k, c in zip(self._starts, self._durations, self._kinds, self._cpus)
        )

    @property
    def n_events(self) -> int:
        return int(self._starts.size)

    def events_on(self, cpu: int) -> tuple[PlacedEvent, ...]:
        return tuple(e for e in self.events if e.cpu == cpu)

    def count_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for k in self._kinds:
            out[k] = out.get(k, 0) + 1
        return out

    # -- interval queries ---------------------------------------------------------

    def _slice_cpu(self, cpu: int) -> tuple[np.ndarray, np.ndarray]:
        lo = int(np.searchsorted(self._sorted_cpus, cpu, side="left"))
        hi = int(np.searchsorted(self._sorted_cpus, cpu, side="right"))
        return self._sorted_starts[lo:hi], self._sorted_durations[lo:hi]

    def stolen_on(self, cpu: int) -> IntervalSet:
        """Intervals during which *cpu* runs OS work (thread fully stalled)."""
        cached = self._stolen.get(cpu)
        if cached is None:
            starts, durations = self._slice_cpu(cpu)
            cached = IntervalSet.from_events(starts, durations)
            self._stolen[cpu] = cached
        return cached

    def sibling_pressure_on(self, cpu: int) -> IntervalSet:
        """Intervals during which any SMT sibling of *cpu* runs OS work."""
        cached = self._sibling.get(cpu)
        if cached is None:
            result = IntervalSet.empty()
            for s in self.machine.siblings_of(cpu):
                result = result.union(self.stolen_on(s))
            cached = result
            self._sibling[cpu] = cached
        return cached

    def total_stolen(self, cpu: int, t_start: float, t_end: float) -> float:
        """Seconds of *cpu* time stolen inside ``[t_start, t_end)``."""
        return self.stolen_on(cpu).overlap(t_start, t_end)

    # -- observability ---------------------------------------------------------

    def trace_onto(
        self,
        tracer: Tracer,
        cpus: Sequence[int],
        t_start: float,
        t_end: float,
    ) -> int:
        """Emit this realization's preemptions as spans on per-CPU tracks.

        Every noise event on one of *cpus* overlapping ``[t_start, t_end)``
        becomes a span named by its kind on track
        ``CPU_TRACK_BASE + cpu``, clipped to the window.  A cold
        annotation helper (one call per traced run, after the benchmark
        finished), guarded on entry; returns the number of spans emitted.
        """
        if not tracer.enabled:
            return 0
        emitted = 0
        for cpu in sorted(set(int(c) for c in cpus)):
            tid = CPU_TRACK_BASE + cpu
            tracer.thread_name(tid, f"cpu {cpu} os-noise")
            mask = (
                (self._cpus == cpu)
                & (self._starts < t_end)
                & (self._starts + self._durations > t_start)
            )
            for j in np.nonzero(mask)[0].tolist():
                s = max(t_start, float(self._starts[j]))
                e = min(t_end, float(self._starts[j] + self._durations[j]))
                tracer.span(tid, self._kinds[j], s, e, cat="osnoise")
                emitted += 1
        return emitted

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NoiseRealization):
            return NotImplemented
        return (
            np.array_equal(self._starts, other._starts)
            and np.array_equal(self._durations, other._durations)
            and np.array_equal(self._cpus, other._cpus)
            and self._kinds == other._kinds
        )


class NoiseModel:
    """Samples a set of sources into a :class:`NoiseRealization`."""

    def __init__(
        self,
        machine: Machine,
        sources: Sequence[NoiseSource],
        placement: PlacementPolicy | None = None,
    ):
        self.machine = machine
        self.sources = tuple(sources)
        self.placement = placement if placement is not None else IdleFirstPlacement()

    def realize(
        self,
        t_start: float,
        t_end: float,
        busy_cpus: Sequence[int],
        rng: np.random.Generator,
    ) -> NoiseRealization:
        """Sample all sources over ``[t_start, t_end)`` and place events.

        *busy_cpus* is the set of CPUs hosting application threads — it
        drives both tick generation (ticks fire on busy CPUs) and the
        idle-first placement of daemons.
        """
        if t_end < t_start:
            raise NoiseModelError("window end before start")
        starts_parts: list[np.ndarray] = []
        dur_parts: list[np.ndarray] = []
        cpu_parts: list[np.ndarray] = []
        kinds: list[str] = []
        unplaced: list[NoiseEvent] = []
        def _append_events(evs) -> None:
            """Flush a block of assigned events as flat arrays (one append
            per block instead of one single-element array per event)."""
            starts_parts.append(np.asarray([e.start for e in evs]))
            dur_parts.append(np.asarray([e.duration for e in evs]))
            cpu_parts.append(np.asarray([e.cpu for e in evs]))
            kinds.extend(e.kind for e in evs)

        for source in self.sources:
            sampled = source.sample_arrays(t_start, t_end, busy_cpus, rng)
            if sampled is not None:
                s, d, c, kind = sampled
                starts_parts.append(s)
                dur_parts.append(d)
                cpu_parts.append(c)
                kinds.extend([kind] * s.size)
                continue
            assigned = []
            for ev in source.sample(t_start, t_end, busy_cpus, rng):
                if ev.cpu is not None:
                    assigned.append(ev)
                else:
                    unplaced.append(ev)
            if assigned:
                _append_events(assigned)

        if unplaced:
            placed_events = self.placement.place(unplaced, self.machine, busy_cpus, rng)
            for ev in placed_events:
                if ev.cpu is None:
                    raise NoiseModelError(
                        f"placement left event {ev.kind!r} at t={ev.start} unassigned"
                    )
            _append_events(placed_events)

        if starts_parts:
            starts = np.concatenate(starts_parts)
            durations = np.concatenate(dur_parts)
            cpus = np.concatenate(cpu_parts).astype(np.int64)
        else:
            starts = np.empty(0)
            durations = np.empty(0)
            cpus = np.empty(0, dtype=np.int64)
        return NoiseRealization(
            self.machine, arrays=(starts, durations, cpus, kinds)
        )
