"""Per-platform noise profiles.

The magnitudes below are calibrated against published OS-noise
measurements (Morari et al., De Oliveira et al. — see the paper's related
work) and against the variability the paper reports:

* ticks: 250 Hz, a few microseconds each — the dominant *fine-grained*
  noise on busy CPUs;
* daemons: a few node-wide wakeups per second, hundreds of microseconds —
  harmless while spare CPUs exist, disastrous for synchronization
  benchmarks once the node is saturated;
* IRQs: frequent but cheap, affine to CPU 0 (plus its SMT sibling on
  Dardel) as on typical cluster nodes;
* rare events: ~1 per minute, tens of milliseconds — the long tail that
  produces isolated outlier repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.osnoise.source import NoiseSource, PoissonSource, TimerTickSource
from repro.units import ms, us


@dataclass(frozen=True)
class NoiseProfile:
    """A named bundle of noise sources."""

    name: str
    sources: tuple[NoiseSource, ...] = field(default=())

    def scaled(self, factor: float) -> "NoiseProfile":
        """A copy with every Poisson rate multiplied by *factor*.

        Tick sources are left untouched (their rate is a kernel compile-time
        constant, not load-dependent).  Used by ablation benchmarks.
        """
        scaled_sources: list[NoiseSource] = []
        for s in self.sources:
            if isinstance(s, PoissonSource):
                scaled_sources.append(
                    PoissonSource(
                        rate=s.rate * factor,
                        duration_median=s.duration_median,
                        duration_sigma=s.duration_sigma,
                        duration_cap=s.duration_cap,
                        affinity=s.affinity,
                        kind=s.kind,
                    )
                )
            else:
                scaled_sources.append(s)
        return NoiseProfile(f"{self.name}-x{factor:g}", tuple(scaled_sources))

    def without(self, kind: str) -> "NoiseProfile":
        """A copy with every source of the given kind removed (ablations)."""
        return NoiseProfile(
            f"{self.name}-no-{kind}",
            tuple(s for s in self.sources if s.kind != kind),
        )


def dardel_noise() -> NoiseProfile:
    """Noise profile of the Dardel Cray EX node (SUSE, kernel 5.3)."""
    return NoiseProfile(
        "dardel",
        (
            TimerTickSource(hz=250.0, duration_mean=us(1.8), duration_jitter=us(0.9)),
            PoissonSource(
                rate=2.0,
                duration_median=us(150),
                duration_sigma=1.0,
                duration_cap=ms(8),
                kind="daemon",
            ),
            PoissonSource(
                rate=40.0,
                duration_median=us(6),
                duration_sigma=0.5,
                duration_cap=us(80),
                affinity=(0, 128),  # irq affinity: cpu0 and its SMT sibling
                kind="irq",
            ),
            PoissonSource(
                rate=0.02,
                duration_median=ms(10),
                duration_sigma=0.5,
                duration_cap=ms(30),
                kind="rare",
            ),
        ),
    )


def vera_noise() -> NoiseProfile:
    """Noise profile of the Vera node (Rocky Linux 8, kernel 4.18)."""
    return NoiseProfile(
        "vera",
        (
            TimerTickSource(hz=250.0, duration_mean=us(2.2), duration_jitter=us(1.1)),
            PoissonSource(
                rate=2.5,
                duration_median=us(200),
                duration_sigma=1.0,
                duration_cap=ms(8),
                kind="daemon",
            ),
            PoissonSource(
                rate=30.0,
                duration_median=us(8),
                duration_sigma=0.5,
                duration_cap=us(100),
                affinity=(0,),
                kind="irq",
            ),
            PoissonSource(
                rate=0.02,
                duration_median=ms(8),
                duration_sigma=0.5,
                duration_cap=ms(25),
                kind="rare",
            ),
        ),
    )


def quiet_profile() -> NoiseProfile:
    """No noise at all — used by unit tests and calibration runs."""
    return NoiseProfile("quiet", ())


def noisy_profile() -> NoiseProfile:
    """A deliberately loud profile for stress tests and ablations."""
    return dardel_noise().scaled(10.0)
