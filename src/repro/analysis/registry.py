"""Rule model and registry.

A rule is a small class: identity (``id``/``title``), documentation
(``rationale``/``fix_hint`` — rendered by ``repro-omp lint --list-rules``
and the docs), a package scope, the AST node types it wants to see, and a
``visit`` hook.  Rules register themselves via the :func:`register_rule`
decorator at import time; the runner imports the rule modules and asks
the registry for instances, so adding a rule is one class in one module
with no dispatch edits anywhere else.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.context import FileContext
    from repro.analysis.visitor import WalkState

#: Reporter callback handed to ``Rule.visit``: ``report(node, message,
#: fix_hint=...)``.  Bound by the analyzer to (rule, file, findings list).
Reporter = Callable[..., None]


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`visit`
    (called for every node whose type is in ``node_types``) and/or
    :meth:`end_file` (called once per file, for whole-file checks).
    """

    #: Stable identifier, e.g. ``"DET001"``.
    id: str = ""
    #: One-line summary shown in ``--list-rules``.
    title: str = ""
    #: Why the rule exists (the invariant it protects).
    rationale: str = ""
    #: Default remediation advice attached to findings.
    fix_hint: str = ""
    #: Sub-packages of ``repro`` the rule applies to; ``None`` = all files.
    packages: tuple[str, ...] | None = None
    #: AST node types dispatched to :meth:`visit`.
    node_types: tuple[type, ...] = ()

    def applies(self, ctx: "FileContext") -> bool:
        """Whether this rule runs on *ctx* at all (package scoping)."""
        if self.packages is None:
            return True
        return ctx.in_package(*self.packages)

    def begin_file(self, ctx: "FileContext") -> None:
        """Reset any per-file state (called before the walk)."""

    def visit(
        self, node: ast.AST, ctx: "FileContext", state: "WalkState",
        report: Reporter,
    ) -> None:
        """Inspect one node; call ``report`` for each violation."""

    def end_file(
        self, ctx: "FileContext", state: "WalkState", report: Reporter
    ) -> None:
        """Whole-file checks (called after the walk)."""


#: id -> rule instance, populated by :func:`register_rule`.
RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its ``id``."""
    if not cls.id:
        raise AnalysisError(f"rule class {cls.__name__} has no id")
    if cls.id in RULES:
        raise AnalysisError(f"rule {cls.id!r} registered twice")
    RULES[cls.id] = cls()
    return cls


def available_rules() -> tuple[str, ...]:
    _load_builtin_rules()
    return tuple(sorted(RULES))


def get_rules(ids: Iterable[str] | None = None) -> tuple[Rule, ...]:
    """Rule instances for *ids* (default: every registered rule).

    Unknown ids raise :class:`~repro.errors.AnalysisError` naming the
    valid choices.
    """
    _load_builtin_rules()
    if ids is None:
        return tuple(RULES[k] for k in sorted(RULES))
    rules = []
    for rule_id in ids:
        if rule_id not in RULES:
            raise AnalysisError(
                f"unknown rule {rule_id!r}; choose from {available_rules()}"
            )
        rules.append(RULES[rule_id])
    return tuple(rules)


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (idempotent: registration happens
    at first import)."""
    from repro.analysis import (  # noqa: F401
        rules_api,
        rules_det,
        rules_obs,
        rules_perf,
    )
