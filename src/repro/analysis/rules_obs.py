"""Observability contract rule: OBS001 (guarded trace emission).

PR 7's zero-overhead tracing contract (docs/observability.md) hinges on
every hot-path trace emission being skipped with one boolean test when
tracing is off.  An unguarded ``tracer.span(...)`` still no-ops through
:class:`~repro.obs.tracer.NullTracer`, but it pays the call, the argument
tuple, and any ``args={...}`` dict allocation *per event* — exactly the
churn the engine overhaul removed, re-introduced invisibly.  OBS001 keeps
the guard mandatory wherever simulated-time tracing happens.
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext
from repro.analysis.registry import Reporter, Rule, register_rule
from repro.analysis.visitor import WalkState

#: Packages that emit simulated-time trace events (the instrumented
#: simulation/model/benchmark layers).  The obs package itself and the
#: harness are exempt: a SpanTracer is by definition enabled, and harness
#: code runs once per run, not per event.
TRACE_PACKAGES = ("sim", "omp", "sched", "osnoise", "bench")

#: Tracer methods whose call sites must sit behind the enabled flag.
EMIT_METHODS = frozenset({
    "span", "instant", "counter", "thread_name", "begin_run", "begin_process",
})


def _is_tracerish(expr: ast.AST) -> bool:
    """Whether *expr* looks like a tracer receiver (``tracer``,
    ``self.tracer``, ``ctx.tracer``, ...)."""
    if isinstance(expr, ast.Name):
        return "tracer" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "tracer" in expr.attr.lower()
    return False


def _mentions_enabled(test: ast.AST) -> bool:
    """Whether a condition consults the tracing-enabled flag: any
    ``<x>.enabled`` attribute, or a local named like the hoisted
    ``tracing = tracer.enabled`` bool."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
        if isinstance(sub, ast.Name) and (
            "tracing" in sub.id.lower() or "enabled" in sub.id.lower()
        ):
            return True
    return False


def _has_guard_return(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether *fn* opens with the dedicated-helper guard style::

        def trace_xxx(tracer, ...):
            if not tracer.enabled:
                return ...
    """
    body = fn.body
    i = 0
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        i = 1  # skip the docstring
    if i >= len(body):
        return False
    first = body[i]
    return (
        isinstance(first, ast.If)
        and _mentions_enabled(first.test)
        and any(isinstance(stmt, ast.Return) for stmt in first.body)
    )


@register_rule
class GuardedTraceEmission(Rule):
    """OBS001: hot-path trace emission must be guarded by the enabled flag."""

    id = "OBS001"
    title = "trace emission must be guarded by the tracer's enabled flag"
    rationale = (
        "The null-tracer path must cost one boolean test per episode, not "
        "one method call (plus an args-dict allocation) per event.  An "
        "unguarded tracer.span/instant/counter call site pays that cost "
        "O(events) times per run with tracing off — the exact overhead "
        "docs/observability.md promises is absent, and the engine "
        "throughput the bench trajectory tracks would silently regress."
    )
    fix_hint = (
        "wrap the emission in `if tracing:` (hoist `tracing = "
        "tracer.enabled` once per episode), test `if <x>.tracer.enabled:` "
        "directly, or make the enclosing helper guard-return on entry "
        "(`if not tracer.enabled: return`)"
    )
    packages = TRACE_PACKAGES
    node_types = (ast.Call,)

    def visit(
        self, node: ast.Call, ctx: FileContext, state: WalkState,
        report: Reporter,
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in EMIT_METHODS:
            return
        if not _is_tracerish(func.value):
            return
        for parent in state.parents:
            if isinstance(parent, ast.If) and _mentions_enabled(parent.test):
                return
        fn = state.enclosing_function()
        if fn is not None and _has_guard_return(fn):
            return
        report(
            node,
            f"tracer emission {func.attr!r} is not guarded by the "
            f"tracing-enabled flag",
        )
