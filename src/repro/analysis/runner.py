"""Lint runner: file discovery, execution, baseline filtering, output.

:func:`lint_paths` is the one entry point the CLI, CI and the self-lint
test all use; :func:`lint_source` exists so tests can feed fixture
snippets through the exact production pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.context import FileContext, normalize_path
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, get_rules
from repro.analysis.visitor import Analyzer
from repro.errors import AnalysisError

JSON_SCHEMA_VERSION = 1

#: Directory names never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """All ``.py`` files under *paths*, sorted for deterministic output."""
    files: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if not p.exists():
            raise AnalysisError(f"lint path does not exist: {p}")
        if p.is_file():
            if p.suffix == ".py":
                files.add(p)
            continue
        for candidate in p.rglob("*.py"):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                files.add(candidate)
    return sorted(files)


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run.

    ``findings`` are the live (non-suppressed) violations; ``suppressed``
    pairs each baselined finding with the entry that excused it;
    ``stale_entries`` are baseline entries that matched nothing.
    """

    findings: tuple[Finding, ...]
    suppressed: tuple[tuple[Finding, BaselineEntry], ...] = ()
    stale_entries: tuple[BaselineEntry, ...] = ()
    files_checked: int = 0
    rule_ids: tuple[str, ...] = ()
    errors: tuple[Finding, ...] = field(default=(), compare=False)

    @property
    def ok(self) -> bool:
        """Whether the run should exit 0 (no live error-severity findings)."""
        return not any(f.severity is Severity.ERROR for f in self.findings)


def lint_source(
    source: str,
    path: str | Path = "<string>",
    rule_ids: list[str] | None = None,
    module_parts: tuple[str, ...] | None = None,
) -> list[Finding]:
    """Lint one source string (the fixture-test entry point).

    ``module_parts`` positions the snippet inside the package tree for
    package-scoped rules, e.g. ``("repro", "sim", "fake")``.
    """
    ctx = FileContext(source, path, module_parts=module_parts)
    return Analyzer(get_rules(rule_ids)).run(ctx)


def _lint_file(path: Path, rules: tuple[Rule, ...]) -> list[Finding]:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    try:
        ctx = FileContext(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE001",
                path=normalize_path(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                fix_hint="fix the syntax error; unparseable files are unchecked",
            )
        ]
    return Analyzer(rules).run(ctx)


def lint_paths(
    paths: list[str | Path],
    rule_ids: list[str] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Lint every Python file under *paths* and fold in the baseline."""
    rules = get_rules(rule_ids)
    files = iter_python_files(paths)
    live: list[Finding] = []
    suppressed: list[tuple[Finding, BaselineEntry]] = []
    for path in files:
        for finding in _lint_file(path, rules):
            entry = baseline.match(finding) if baseline is not None else None
            if entry is not None:
                suppressed.append((finding, entry))
            else:
                live.append(finding)
    return LintReport(
        findings=tuple(live),
        suppressed=tuple(suppressed),
        stale_entries=tuple(baseline.stale_entries()) if baseline else (),
        files_checked=len(files),
        rule_ids=tuple(rule.id for rule in rules),
    )


# -- output formats ---------------------------------------------------------


def format_text(report: LintReport) -> str:
    """Human-readable report (the default CLI output)."""
    parts: list[str] = []
    for finding in report.findings:
        parts.append(finding.render())
    if report.stale_entries:
        parts.append("stale baseline entries (fixed? remove them):")
        for entry in report.stale_entries:
            parts.append(f"    {entry.rule} {entry.path}: {entry.snippet!r}")
    summary = (
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} baselined, "
        f"{len(report.stale_entries)} stale baseline entr"
        f"{'y' if len(report.stale_entries) == 1 else 'ies'} "
        f"in {report.files_checked} file(s)"
    )
    parts.append(summary)
    return "\n".join(parts)


def format_json(report: LintReport) -> str:
    """Machine-readable report (consumed by the CI lint job)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "ok": report.ok,
        "files_checked": report.files_checked,
        "rules": list(report.rule_ids),
        "findings": [f.to_dict() for f in report.findings],
        "suppressed": [
            {**f.to_dict(), "reason": e.reason}
            for f, e in report.suppressed
        ],
        "stale_baseline": [e.to_dict() for e in report.stale_entries],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
