"""API-surface rules: API001 (experiment drivers must be registered).

The CLI, the bench harness and CI discover experiments exclusively
through the registry (``repro.harness.experiments.EXPERIMENTS``); a
driver that is written but not decorated simply does not exist to any
user-facing surface.
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext
from repro.analysis.registry import Reporter, Rule, register_rule
from repro.analysis.visitor import WalkState


def _returns_artifact(node: ast.FunctionDef) -> bool:
    ann = node.returns
    if ann is None:
        return False
    name = ann.attr if isinstance(ann, ast.Attribute) else (
        ann.id if isinstance(ann, ast.Name) else (
            ann.value if isinstance(ann, ast.Constant) else ""
        )
    )
    return name == "ExperimentArtifact"


def _has_experiment_decorator(node: ast.FunctionDef, ctx: FileContext) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = ctx.resolve(target)
        if dotted is not None and dotted.rsplit(".", 1)[-1] == "experiment":
            return True
        if isinstance(target, ast.Name) and target.id == "experiment":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "experiment":
            return True
    return False


@register_rule
class DriverRegistration(Rule):
    """API001: every public experiment driver must register itself."""

    id = "API001"
    title = "experiment drivers must register via @experiment"
    rationale = (
        "repro-omp list/experiment, the bench harness and the CI smokes "
        "all walk the experiment registry; a public driver function that "
        "is not decorated with @experiment is unreachable from every one "
        "of those surfaces — it will silently rot."
    )
    fix_hint = (
        "decorate the driver with @experiment(\"<description>\") (or "
        "prefix its name with _ if it is a helper, not a driver)"
    )
    packages = ("harness",)
    node_types = (ast.FunctionDef,)

    def visit(
        self, node: ast.FunctionDef, ctx: FileContext, state: WalkState,
        report: Reporter,
    ) -> None:
        if state.enclosing_function() is not None or state.enclosing_class():
            return  # only module-level functions can be drivers
        if node.name.startswith("_"):
            return
        if not _returns_artifact(node):
            return
        if _has_experiment_decorator(node, ctx):
            return
        report(
            node,
            f"public driver {node.name!r} returns ExperimentArtifact but "
            f"is not registered via @experiment — the CLI, bench harness "
            f"and CI cannot reach it",
        )
