"""Determinism rules: DET001 (ambient nondeterminism), DET002 (set-order
iteration), DET003 (cache-key purity), DET004 (shard/manifest identity
purity), DET005 (job-service identity purity).

These are the static mirrors of the determinism contracts the repo
enforces dynamically: byte-locked goldens, serial == jobs=N == cached
replay, and the RNG draw-order contract of docs/performance.md.  The
point of checking them at analysis time is that a violation is caught
when it is written, not after it has silently corrupted a sweep.
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext
from repro.analysis.registry import Reporter, Rule, register_rule
from repro.analysis.visitor import WalkState

#: Sub-packages whose code runs inside a simulation (and therefore must
#: be a pure function of the master seed).
SIMULATION_PACKAGES = ("sim", "omp", "sched", "osnoise", "mem")


# ---------------------------------------------------------------------------
# DET001 — ambient nondeterminism
# ---------------------------------------------------------------------------

#: Exact dotted names whose *call* injects process-ambient state.
_BANNED_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.monotonic": "wall-clock time",
    "time.monotonic_ns": "wall-clock time",
    "time.perf_counter": "wall-clock time",
    "time.perf_counter_ns": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived identifier",
    "uuid.uuid4": "OS entropy",
}

#: numpy.random module-level functions that draw from (or reseed) the
#: hidden global RandomState instead of a named stream.
_NUMPY_GLOBAL_STATE = {
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "lognormal", "exponential", "poisson", "bytes",
}

#: Dotted-module prefixes that are nondeterministic wholesale.
_BANNED_PREFIXES = {
    "random": "the process-seeded stdlib RNG",
    "secrets": "OS entropy",
}


@register_rule
class AmbientNondeterminism(Rule):
    """DET001: simulation code must not read ambient process state."""

    id = "DET001"
    title = "no ambient nondeterminism in simulation code"
    rationale = (
        "Every simulated quantity must be a pure function of the master "
        "seed: stdlib random, the numpy global RandomState, un-seeded "
        "default_rng(), wall-clock reads, OS entropy and id()-derived "
        "values all vary per process, so any of them breaks the "
        "serial == jobs=N == cached-replay contract silently."
    )
    fix_hint = (
        "draw from a named RngFactory stream (repro.rng) and read time "
        "from the simulation Clock"
    )
    packages = SIMULATION_PACKAGES
    node_types = (ast.Call,)

    def visit(
        self, node: ast.Call, ctx: FileContext, state: WalkState,
        report: Reporter,
    ) -> None:
        # builtin id(): the result is a memory address — keying or
        # ordering anything by it varies per process
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and "id" not in ctx.imports
        ):
            report(
                node,
                "id() yields a per-process memory address; data keyed or "
                "ordered by it cannot replay identically",
                fix_hint="key by a stable field (name, index, seq) instead",
            )
            return
        dotted = ctx.resolve(node.func)
        if dotted is None:
            return
        head = dotted.split(".", 1)[0]
        if head in _BANNED_PREFIXES and (dotted == head or "." in dotted):
            report(
                node,
                f"{dotted}() draws from {_BANNED_PREFIXES[head]}; results "
                f"differ across processes and replays",
            )
            return
        if dotted in _BANNED_CALLS:
            report(
                node,
                f"{dotted}() reads {_BANNED_CALLS[dotted]}, which is not a "
                f"function of the master seed",
            )
            return
        if dotted == "numpy.random.default_rng" and not node.args and not node.keywords:
            report(
                node,
                "numpy.random.default_rng() without a seed draws fresh OS "
                "entropy per call",
                fix_hint="derive the seed from a named RngFactory stream path",
            )
            return
        if (
            dotted.startswith("numpy.random.")
            and dotted.rsplit(".", 1)[-1] in _NUMPY_GLOBAL_STATE
        ):
            report(
                node,
                f"{dotted}() uses numpy's hidden global RandomState; draws "
                f"interleave unpredictably across call sites",
            )


# ---------------------------------------------------------------------------
# DET002 — iteration over sets
# ---------------------------------------------------------------------------

def _is_set_expr(expr: ast.AST, ctx: FileContext, assigns: dict[str, bool]) -> bool:
    """Whether *expr* statically evaluates to a set/frozenset."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("set", "frozenset") and expr.func.id not in ctx.imports:
            return True
    if isinstance(expr, ast.Name):
        return assigns.get(expr.id, False)
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra (a | b, a - b, ...) stays a set if either side is one
        return _is_set_expr(expr.left, ctx, assigns) or _is_set_expr(
            expr.right, ctx, assigns
        )
    return False


def _set_assignments(scope: ast.AST, ctx: FileContext) -> dict[str, bool]:
    """Names assigned a set-valued expression anywhere in *scope*.

    A name is marked set-valued only if *every* simple assignment to it
    is set-valued (a name reassigned to a list is not flagged).
    """
    assigns: dict[str, bool] = {}
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                is_set = _is_set_expr(node.value, ctx, assigns)
                if target.id in assigns:
                    assigns[target.id] = assigns[target.id] and is_set
                else:
                    assigns[target.id] = is_set
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                assigns[node.target.id] = _is_set_expr(node.value, ctx, assigns)
    return assigns


@register_rule
class SetIterationOrder(Rule):
    """DET002: no iteration over sets in simulation code."""

    id = "DET002"
    title = "no iteration over set/frozenset in simulation code"
    rationale = (
        "Set iteration order depends on insertion history and, for str "
        "keys, on per-process hash randomization (PYTHONHASHSEED).  A "
        "loop that draws from an RNG, schedules events or feeds a cache "
        "key in set order therefore produces a different realization in "
        "every process — the exact replay instability the named-stream "
        "design exists to prevent."
    )
    fix_hint = "iterate sorted(the_set) or keep the collection a tuple/list"
    packages = SIMULATION_PACKAGES
    node_types = (
        ast.For, ast.AsyncFor, ast.ListComp, ast.SetComp, ast.DictComp,
        ast.GeneratorExp,
    )

    def begin_file(self, ctx: FileContext) -> None:
        self._assign_cache: dict[int, dict[str, bool]] = {}

    def _assigns_for(self, ctx: FileContext, state: WalkState) -> dict[str, bool]:
        scope = state.enclosing_function() or ctx.tree
        key = id(scope)  # cache per scope object for this file walk
        if key not in self._assign_cache:
            module_assigns = self._assign_cache.setdefault(
                id(ctx.tree), _set_assignments(ctx.tree, ctx)
            )
            if scope is ctx.tree:
                return module_assigns
            local = _set_assignments(scope, ctx)
            # locals shadow module-level names
            self._assign_cache[key] = {**module_assigns, **local}
        return self._assign_cache[key]

    def visit(
        self, node: ast.AST, ctx: FileContext, state: WalkState,
        report: Reporter,
    ) -> None:
        iters = (
            [node.iter]
            if isinstance(node, (ast.For, ast.AsyncFor))
            else [gen.iter for gen in node.generators]
        )
        assigns = None
        for it in iters:
            if assigns is None:
                assigns = self._assigns_for(ctx, state)
            if _is_set_expr(it, ctx, assigns):
                report(
                    it,
                    "iteration over a set/frozenset is replay-unstable "
                    "(hash-randomized order)",
                )


# ---------------------------------------------------------------------------
# DET003 — cache-key purity
# ---------------------------------------------------------------------------

#: Field annotations that JSON-encode canonically (the cache key is a
#: SHA-256 over the canonical JSON of to_dict()).
_JSON_STABLE_ATOMS = {"str", "int", "float", "bool", "None"}

#: Converter callables that take responsibility for producing a
#: JSON-stable value (``_jsonify`` is the harness's own normalizer).
_SANCTIONED_CONVERTERS = {
    "_jsonify", "str", "int", "float", "bool", "list", "dict", "sorted",
}

#: Method names on a value that produce JSON-stable output.
_SANCTIONED_METHODS = {"to_dict", "tolist", "isoformat", "value"}


def _annotation_is_stable(annotation: ast.AST) -> bool:
    text = ast.unparse(annotation).replace(" ", "")
    for part in text.split("|"):
        if part.startswith("Optional[") and part.endswith("]"):
            part = part[len("Optional["):-1]
        if part not in _JSON_STABLE_ATOMS:
            return False
    return True


def _is_dataclass_decorated(node: ast.ClassDef) -> tuple[bool, bool]:
    """(is_dataclass, is_frozen) from the decorator list."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "dataclass":
            frozen = isinstance(deco, ast.Call) and any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in deco.keywords
            )
            return True, frozen
    return False, False


def _self_attr(expr: ast.AST) -> str | None:
    """``self.X`` -> ``"X"``, else None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _value_is_sanctioned(expr: ast.AST) -> bool:
    """Whether a to_dict entry that is not a bare field is acceptable.

    Calls through a sanctioned converter or a ``.to_dict()``-style method
    take responsibility for their own JSON stability; constants are
    trivially stable.
    """
    if isinstance(expr, ast.Constant):
        return True
    if isinstance(expr, ast.Name):
        # a local assembled inside to_dict(); its inputs are checked where
        # they are read (the self.X reference scan below still sees them)
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _SANCTIONED_CONVERTERS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SANCTIONED_METHODS:
            return True
    # attribute of an attribute (self.x.value for enums) — the .value
    # access pattern is stable only through the method/converter forms
    return False


@register_rule
class CacheKeyPurity(Rule):
    """DET003: every field flowing into a cache-key ``to_dict`` must be
    JSON-stable."""

    id = "DET003"
    title = "cache-key to_dict() fields must be JSON-stable"
    rationale = (
        "The result cache keys entries by the SHA-256 of the canonical "
        "JSON of ExperimentConfig.to_dict().  A field whose type does "
        "not encode canonically (objects, callables, raw mappings) "
        "either crashes at runtime (the PR 3 strict encoder) or — worse "
        "— a field omitted from to_dict() changes results WITHOUT "
        "changing the key, silently replaying stale cache entries."
    )
    fix_hint = (
        "keep config fields to str/int/float/bool/None (or wrap them in "
        "_jsonify) and mirror every dataclass field in to_dict()"
    )
    packages = ("harness",)
    node_types = (ast.ClassDef,)

    def visit(
        self, node: ast.ClassDef, ctx: FileContext, state: WalkState,
        report: Reporter,
    ) -> None:
        is_dc, frozen = _is_dataclass_decorated(node)
        if not (is_dc and frozen):
            return
        to_dict = next(
            (
                item for item in node.body
                if isinstance(item, ast.FunctionDef) and item.name == "to_dict"
            ),
            None,
        )
        if to_dict is None:
            return
        returned = next(
            (
                stmt.value for stmt in ast.walk(to_dict)
                if isinstance(stmt, ast.Return)
                and isinstance(stmt.value, ast.Dict)
            ),
            None,
        )
        if returned is None:
            return

        annotations = {
            item.target.id: item.annotation
            for item in node.body
            if isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and not ast.unparse(item.annotation).startswith("ClassVar")
        }

        # 1) every bare `self.X` entry must have a JSON-stable annotation
        for value in returned.values:
            field_name = _self_attr(value)
            if field_name is not None:
                annotation = annotations.get(field_name)
                if annotation is not None and not _annotation_is_stable(annotation):
                    report(
                        value,
                        f"field path {field_name!r} "
                        f"(annotated {ast.unparse(annotation)!r}) feeds the "
                        f"cache key but is not a JSON-stable literal type",
                    )
            elif not _value_is_sanctioned(value):
                report(
                    value,
                    f"opaque expression {ast.unparse(value)!r} feeds the "
                    f"cache key; its JSON encoding is not statically stable",
                    fix_hint=(
                        "route the value through _jsonify() or a "
                        "to_dict()/tolist() conversion"
                    ),
                )

        # 2) every dataclass field must flow into to_dict somewhere —
        #    a field that does not cannot invalidate the cache key
        referenced = {
            attr for n in ast.walk(to_dict)
            if (attr := _self_attr(n)) is not None
        }
        for field_name in annotations:
            if field_name not in referenced:
                report(
                    to_dict,
                    f"field path {field_name!r} never flows into to_dict(): "
                    f"changing it would NOT invalidate cached results",
                )


# ---------------------------------------------------------------------------
# DET004 — shard/manifest identity purity
# ---------------------------------------------------------------------------

#: Calls that inject per-process / per-host / per-moment state.  Any of
#: these inside shard-assignment or manifest code would let two workers
#: of the same partition compute different splits or identities.
_IDENTITY_BANNED_CALLS = {
    **_BANNED_CALLS,
    "os.getpid": "the process id",
    "os.getppid": "the parent process id",
    "socket.gethostname": "the host name",
    "platform.node": "the host name",
}

#: Scope-name fragments that mark distributed-identity code.  Matching is
#: case-insensitive over the enclosing class/function names, so
#: ``ShardedBackend.execute``, ``Sweep._run_shard`` and
#: ``write_shard_manifest`` are all in scope.
_IDENTITY_SCOPE_FRAGMENTS = ("shard", "manifest")


@register_rule
class ShardIdentityPurity(Rule):
    """DET004: shard assignment and manifest identity must be pure."""

    id = "DET004"
    title = "no wall-clock/pid/host state in shard or manifest code"
    rationale = (
        "A sharded sweep only partitions correctly because every worker "
        "computes the identical assignment from the configs' content "
        "hashes alone, and gather only verifies because manifest entry "
        "identities are pure functions of config + entry bytes.  A "
        "wall-clock read, process id, host name or entropy draw inside "
        "that code makes workers disagree — configs silently skipped or "
        "simulated twice, manifests that never match."
    )
    fix_hint = (
        "derive shard membership and manifest identity from cache keys / "
        "file digests only; keep timing in the metrics registry and pid "
        "suffixes in helpers outside shard/manifest scopes (e.g. "
        "_atomic_write_json)"
    )
    packages = ("harness",)
    node_types = (ast.Call,)

    def visit(
        self, node: ast.Call, ctx: FileContext, state: WalkState,
        report: Reporter,
    ) -> None:
        scopes = [name.lower() for name in state.scope_stack]
        if not any(
            fragment in scope
            for scope in scopes
            for fragment in _IDENTITY_SCOPE_FRAGMENTS
        ):
            return
        dotted = ctx.resolve(node.func)
        if dotted is None:
            return
        head = dotted.split(".", 1)[0]
        if head in _BANNED_PREFIXES:
            report(
                node,
                f"{dotted}() draws from {_BANNED_PREFIXES[head]} inside "
                f"shard/manifest code; workers would compute different "
                f"partitions or identities",
            )
            return
        if dotted in _IDENTITY_BANNED_CALLS:
            report(
                node,
                f"{dotted}() reads {_IDENTITY_BANNED_CALLS[dotted]} inside "
                f"shard/manifest code; shard assignment and manifest "
                f"identity must be pure functions of config content",
            )


# ---------------------------------------------------------------------------
# DET005 — job-service identity purity
# ---------------------------------------------------------------------------

#: Wall-clock reads: banned everywhere in the service package.  The
#: monotonic family is listed separately because it has a sanctioned
#: home (clock/telemetry helpers); wall time has none.
_WALL_CLOCK_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
}

#: Monotonic clock reads: legitimate for rate limiting and telemetry
#: durations, so they are allowed — but only inside scopes that are
#: explicitly named as clock carriers.
_MONOTONIC_CALLS = (
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
)

#: Entropy draws: banned everywhere in the service package.
_SERVICE_ENTROPY_CALLS = {
    "os.urandom": "OS entropy",
    "uuid.uuid1": "a host/time-derived identifier",
    "uuid.uuid4": "OS entropy",
}

#: Scope-name fragments under which a monotonic read is sanctioned.
#: ``monotonic_clock`` (the service's one clock) and telemetry helpers
#: match; nothing minting identity ever should.
_CLOCK_SCOPE_FRAGMENTS = ("clock", "telemetry")

#: Scope-name fragments that mark identity-minting service code (job
#: ids, spec fingerprints, dedup keys).  Inside these, even the
#: monotonic exemption is off: identity is content, full stop.
_SERVICE_IDENTITY_FRAGMENTS = ("job_id", "fingerprint", "spec_hash", "dedup")


@register_rule
class ServiceIdentityPurity(Rule):
    """DET005: job-service identities must be pure functions of content."""

    id = "DET005"
    title = "no ambient wall-clock or entropy in job-service code"
    rationale = (
        "The job service promises deterministic identities: the same "
        "submitted spec always yields the same fingerprint, dedup key "
        "and (per submission ordinal) job id, which is what makes "
        "duplicate detection and crash-recovery replay sound.  A "
        "wall-clock read, uuid4() or entropy draw anywhere near id or "
        "fingerprint construction silently breaks dedup — two identical "
        "submissions stop matching — so clocks live only in explicitly "
        "named clock/telemetry helpers, and identity scopes allow none "
        "at all."
    )
    fix_hint = (
        "derive job ids and fingerprints from spec content (cache keys, "
        "submission ordinals); read time only through monotonic_clock() "
        "or a *telemetry* helper, never wall time"
    )
    packages = ("serve",)
    node_types = (ast.Call,)

    def visit(
        self, node: ast.Call, ctx: FileContext, state: WalkState,
        report: Reporter,
    ) -> None:
        dotted = ctx.resolve(node.func)
        if dotted is None:
            return
        scopes = [name.lower() for name in state.scope_stack]
        head = dotted.split(".", 1)[0]
        if head in _BANNED_PREFIXES:
            report(
                node,
                f"{dotted}() draws from {_BANNED_PREFIXES[head]} in "
                f"job-service code; service identities must be pure "
                f"functions of the submitted content",
            )
            return
        if dotted in _SERVICE_ENTROPY_CALLS:
            report(
                node,
                f"{dotted}() reads {_SERVICE_ENTROPY_CALLS[dotted]} in "
                f"job-service code; identical specs would stop deduping",
            )
            return
        if dotted in _WALL_CLOCK_CALLS:
            report(
                node,
                f"{dotted}() reads wall-clock time in job-service code; "
                f"durations come from monotonic_clock(), identities from "
                f"content only",
            )
            return
        if dotted in _MONOTONIC_CALLS:
            in_identity = any(
                fragment in scope
                for scope in scopes
                for fragment in _SERVICE_IDENTITY_FRAGMENTS
            )
            in_clock = any(
                fragment in scope
                for scope in scopes
                for fragment in _CLOCK_SCOPE_FRAGMENTS
            )
            if in_identity or not in_clock:
                report(
                    node,
                    f"{dotted}() outside a clock/telemetry helper; the "
                    f"service reads time only through monotonic_clock() "
                    f"(and never while minting job ids or fingerprints)",
                )
