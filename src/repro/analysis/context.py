"""Per-file analysis context: source, AST, imports, package scoping.

Rules never touch the filesystem or re-parse anything themselves — a
:class:`FileContext` is built once per file and handed to every rule.  It
carries the parsed tree, an import table for resolving dotted call names
(``np.random.default_rng`` -> ``numpy.random.default_rng``) and the
file's position inside the ``repro`` package so rules can scope
themselves to the subsystems they guard (``sim``, ``omp.tasking``, ...).
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePosixPath


def normalize_path(path: str | Path) -> str:
    """Stable display/baseline form of *path*.

    Posix separators; if the path contains a ``src/repro`` or ``tests``
    component, it is trimmed to start there, so the same file hashes to
    the same baseline identity whether the linter was invoked as
    ``lint src``, ``lint src/repro/sim`` or with an absolute path.
    Otherwise the path is made relative to the current directory when
    possible and returned as-is when not.
    """
    p = Path(path)
    parts = p.parts
    for anchor in (("src", "repro"), ("tests",)):
        for i in range(len(parts) - len(anchor) + 1):
            if parts[i:i + len(anchor)] == anchor:
                return str(PurePosixPath(*parts[i:]))
    try:
        p = p.relative_to(Path.cwd())
    except ValueError:
        pass
    return str(PurePosixPath(p))


def _module_parts(path: Path) -> tuple[str, ...]:
    """Dotted-module components of *path*, anchored at the ``repro`` dir.

    ``.../src/repro/omp/tasking/scheduler.py`` ->
    ``("repro", "omp", "tasking", "scheduler")``; files outside a
    ``repro`` directory get an empty tuple (package-scoped rules skip
    them).
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return tuple(parts[i:])
    return ()


class FileContext:
    """Everything the rules need to know about one source file."""

    __slots__ = (
        "path", "display_path", "source", "lines", "tree",
        "module_parts", "imports",
    )

    def __init__(
        self,
        source: str,
        path: str | Path,
        module_parts: tuple[str, ...] | None = None,
    ):
        self.path = Path(path)
        self.display_path = normalize_path(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.module_parts = (
            module_parts if module_parts is not None else _module_parts(self.path)
        )
        self.imports = self._build_import_table(self.tree)

    # -- package scoping -----------------------------------------------------

    @property
    def module_name(self) -> str:
        """Dotted module name (``repro.sim.engine``), or ``""``."""
        return ".".join(self.module_parts)

    def in_package(self, *packages: str) -> bool:
        """Whether this file lives under any of the given sub-packages of
        ``repro`` (``"sim"``, ``"omp.tasking"``, ...)."""
        if not self.module_parts or self.module_parts[0] != "repro":
            return False
        subpath = ".".join(self.module_parts[1:])
        return any(
            subpath == pkg or subpath.startswith(pkg + ".") for pkg in packages
        )

    # -- source access -------------------------------------------------------

    def snippet(self, line: int) -> str:
        """The stripped source text of 1-based *line* (empty if out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # -- name resolution -----------------------------------------------------

    def _build_import_table(self, tree: ast.Module) -> dict[str, str]:
        """Map local names to the dotted names they import.

        ``import numpy as np`` -> ``{"np": "numpy"}``;
        ``from numpy.random import default_rng`` ->
        ``{"default_rng": "numpy.random.default_rng"}``.  Relative imports
        are resolved against this file's package when known.
        """
        table: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    table[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:  # relative: resolve against our package
                    pkg = list(self.module_parts[:-1])
                    pkg = pkg[: len(pkg) - (node.level - 1)] if node.level > 1 else pkg
                    base = ".".join(pkg + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base else alias.name
        return table

    def resolve(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to an imported dotted name.

        Returns ``None`` when the chain does not start at an imported
        name (locals, ``self.x``, computed expressions).
        """
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        chain.append(base)
        return ".".join(reversed(chain))
