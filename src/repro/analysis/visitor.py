"""AST walk core: one pass per file, dispatching nodes to rules.

The analyzer walks the tree exactly once regardless of how many rules
are active, maintaining the structural state every rule needs — parent
stack, enclosing class/function names, loop nesting — so individual
rules stay stateless and cheap.  Rules receive a bound ``report``
callback that captures location, scope and snippet automatically.
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)


class WalkState:
    """Structural context at the current node of the walk."""

    __slots__ = ("parents", "scope_stack", "loop_depth")

    def __init__(self) -> None:
        #: Ancestor nodes, outermost first (excludes the current node).
        self.parents: list[ast.AST] = []
        #: Names of enclosing classes/functions, outermost first.
        self.scope_stack: list[str] = []
        #: Number of enclosing ``for``/``while`` loops.
        self.loop_depth = 0

    def scope_name(self) -> str:
        return ".".join(self.scope_stack) if self.scope_stack else "<module>"

    def enclosing_function(self) -> ast.AST | None:
        """Innermost enclosing FunctionDef/AsyncFunctionDef, if any."""
        for node in reversed(self.parents):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def enclosing_class(self) -> ast.ClassDef | None:
        for node in reversed(self.parents):
            if isinstance(node, ast.ClassDef):
                return node
        return None


class Analyzer:
    """Runs a set of rules over parsed files."""

    __slots__ = ("rules",)

    def __init__(self, rules: tuple[Rule, ...]):
        self.rules = rules

    def run(self, ctx: FileContext) -> list[Finding]:
        """All findings the active rules produce for *ctx*, in source order."""
        active = [rule for rule in self.rules if rule.applies(ctx)]
        if not active:
            return []
        findings: list[Finding] = []
        state = WalkState()

        def make_reporter(rule: Rule):
            def report(
                node: ast.AST,
                message: str,
                fix_hint: str | None = None,
                severity: Severity = Severity.ERROR,
            ) -> None:
                line = getattr(node, "lineno", 1)
                findings.append(
                    Finding(
                        rule=rule.id,
                        path=ctx.display_path,
                        line=line,
                        col=getattr(node, "col_offset", 0),
                        message=message,
                        scope=state.scope_name(),
                        snippet=ctx.snippet(line),
                        fix_hint=rule.fix_hint if fix_hint is None else fix_hint,
                        severity=severity,
                    )
                )

            return report

        reporters = [(rule, make_reporter(rule)) for rule in active]
        # per-node dispatch lists, computed once per file
        dispatch: dict[type, list[tuple[Rule, object]]] = {}
        for rule, report in reporters:
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append((rule, report))

        for rule, _report in reporters:
            rule.begin_file(ctx)
        self._walk(ctx.tree, ctx, state, dispatch)
        for rule, report in reporters:
            rule.end_file(ctx, state, report)

        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def _walk(
        self,
        node: ast.AST,
        ctx: FileContext,
        state: WalkState,
        dispatch: dict[type, list],
    ) -> None:
        subscribed = dispatch.get(type(node))
        if subscribed:
            for rule, report in subscribed:
                rule.visit(node, ctx, state, report)

        is_scope = isinstance(node, _SCOPE_NODES)
        is_loop = isinstance(node, _LOOP_NODES)
        state.parents.append(node)
        if is_scope:
            state.scope_stack.append(node.name)
        if is_loop:
            state.loop_depth += 1
        try:
            for child in ast.iter_child_nodes(node):
                self._walk(child, ctx, state, dispatch)
        finally:
            if is_loop:
                state.loop_depth -= 1
            if is_scope:
                state.scope_stack.pop()
            state.parents.pop()
