"""Committed baseline of intentional rule exceptions.

Some findings are deliberate (the engine micro-benchmarks read
``time.perf_counter`` because they *measure* wall time) — the baseline
records them, each with a mandatory human-readable reason, so the lint
run stays a hard gate for everything else.  Entries match findings by
line-number-free identity (rule, normalized path, normalized snippet),
so unrelated edits never orphan an exception; entries that no longer
match anything are reported as *stale* so the file cannot accumulate
dead weight.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding, normalize_snippet
from repro.errors import AnalysisError

BASELINE_VERSION = 1

#: Conventional baseline filename, looked up automatically by the CLI.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineEntry:
    """One intentional exception."""

    __slots__ = ("rule", "path", "snippet", "reason")

    def __init__(self, rule: str, path: str, snippet: str, reason: str):
        if not reason or not reason.strip():
            raise AnalysisError(
                f"baseline entry for {rule} at {path} has no reason; every "
                f"intentional exception must say why it is intentional"
            )
        self.rule = rule
        self.path = path
        self.snippet = normalize_snippet(snippet)
        self.reason = reason

    def identity(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BaselineEntry":
        try:
            return cls(
                rule=data["rule"],
                path=data["path"],
                snippet=data["snippet"],
                reason=data.get("reason", ""),
            )
        except KeyError as exc:
            raise AnalysisError(f"baseline entry missing field {exc}") from None

    @classmethod
    def from_finding(cls, finding: Finding, reason: str) -> "BaselineEntry":
        rule, path, snippet = finding.identity()
        return cls(rule=rule, path=path, snippet=snippet, reason=reason)


class Baseline:
    """A set of :class:`BaselineEntry` with match-use tracking."""

    __slots__ = ("entries", "_index", "_used")

    def __init__(self, entries: list[BaselineEntry] | None = None):
        self.entries = list(entries or [])
        self._index: dict[tuple[str, str, str], BaselineEntry] = {
            e.identity(): e for e in self.entries
        }
        self._used: set[tuple[str, str, str]] = set()

    def match(self, finding: Finding) -> BaselineEntry | None:
        """The entry suppressing *finding*, or None; marks the entry used."""
        entry = self._index.get(finding.identity())
        if entry is not None:
            self._used.add(entry.identity())
        return entry

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that matched no finding in the runs since construction —
        the violation was fixed (or moved); the entry should be removed."""
        return [e for e in self.entries if e.identity() not in self._used]

    # -- persistence ---------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        p = Path(path)
        try:
            data = json.loads(p.read_text())
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {p}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline {p} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise AnalysisError(
                f"baseline {p} has no 'entries' key (expected the "
                f"repro-omp lint baseline schema)"
            )
        return cls([BaselineEntry.from_dict(e) for e in data["entries"]])

    def save(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                e.to_dict()
                for e in sorted(self.entries, key=BaselineEntry.identity)
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")
