"""Hot-path contract rules: PERF001 (``__slots__`` discipline), PERF002
(no per-iteration closure allocation) and PERF003 (no per-repetition
Python loops in fused-path code).

The PR 5 engine overhaul bought its 2.2-2.8x by making the event loop
allocation-free: slotted instances and one reusable trampoline per
process; the fused rep-axis engine (:mod:`repro.sim.fused`) bought its
speedup by turning the repetition axis into an array dimension.  These
rules keep both disciplines from eroding as the hot modules grow.
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext
from repro.analysis.registry import Reporter, Rule, register_rule
from repro.analysis.visitor import WalkState

#: The simulation hot path: every instance attribute read/write and every
#: allocation in these packages happens O(events) times per run.
HOT_PACKAGES = ("sim", "omp.tasking")

#: Base-class names that make __slots__ pointless or impossible.
_EXEMPT_BASES = {
    "Exception", "BaseException", "Enum", "IntEnum", "StrEnum", "Flag",
    "NamedTuple", "Protocol", "TypedDict", "type", "ABC",
}


def _base_name(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):  # Generic[...] / Protocol[...]
        return _base_name(node.value)
    return ""


def _declares_slots(node: ast.ClassDef) -> bool:
    for item in node.body:
        if isinstance(item, ast.Assign):
            targets = [t.id for t in item.targets if isinstance(t, ast.Name)]
            if "__slots__" in targets:
                return True
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and item.target.id == "__slots__":
                return True
    return False


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "dataclass":
            return deco
    return None


@register_rule
class SlotsDiscipline(Rule):
    """PERF001: hot-path classes must declare ``__slots__``."""

    id = "PERF001"
    title = "hot-path classes must declare __slots__"
    rationale = (
        "Instances in sim/ and omp/tasking/ are touched O(events) times "
        "per run; a __dict__-backed attribute read is a hash lookup where "
        "a slotted one is an indexed load, and every un-slotted instance "
        "costs ~3x the memory.  The PR 5 speedups assumed (and the bench "
        "trajectory tracks) slotted hot-path objects."
    )
    fix_hint = (
        "add __slots__ = (...) to the class, or slots=True to its "
        "@dataclass decorator"
    )
    packages = HOT_PACKAGES
    node_types = (ast.ClassDef,)

    def visit(
        self, node: ast.ClassDef, ctx: FileContext, state: WalkState,
        report: Reporter,
    ) -> None:
        base_names = {_base_name(b) for b in node.bases}
        if base_names & _EXEMPT_BASES or any(
            name.endswith(("Error", "Exception", "Warning")) for name in base_names
        ):
            return
        if _declares_slots(node):
            return
        deco = _dataclass_decorator(node)
        if deco is not None:
            if isinstance(deco, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in deco.keywords
            ):
                return
            report(
                node,
                f"hot-path dataclass {node.name!r} lacks slots=True",
                fix_hint="add slots=True to the @dataclass(...) decorator",
            )
            return
        report(node, f"hot-path class {node.name!r} declares no __slots__")


@register_rule
class NoClosureInLoop(Rule):
    """PERF002: no closure/lambda allocation inside hot-path loops."""

    id = "PERF002"
    title = "no per-iteration closure/lambda allocation in hot loops"
    rationale = (
        "A lambda or def inside a for/while body allocates a fresh "
        "function object every iteration.  On the event hot path that "
        "was the dominant allocation churn before PR 5 (one lambda per "
        "process step); the engine now binds one trampoline per process "
        "precisely to avoid it, and new per-event closures would undo "
        "that win invisibly."
    )
    fix_hint = (
        "hoist the function out of the loop and bind loop variables via "
        "default arguments, or store a reusable callable on the object "
        "(the Process.resume trampoline pattern)"
    )
    packages = HOT_PACKAGES
    node_types = (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(
        self, node: ast.AST, ctx: FileContext, state: WalkState,
        report: Reporter,
    ) -> None:
        if state.loop_depth == 0:
            return
        kind = (
            "lambda" if isinstance(node, ast.Lambda)
            else f"nested function {node.name!r}"
        )
        report(
            node,
            f"{kind} is allocated on every iteration of an enclosing "
            f"hot-path loop",
        )


#: Identifiers that name the repetition/run count.  A ``for`` loop over
#: ``range(<one of these>)`` in fused-path code walks the rep axis in
#: Python — exactly the scalar-engine shape the fused plane exists to
#: replace.
_REP_COUNT_NAMES = frozenset({
    "runs", "n_runs", "num_runs", "outer_reps", "num_times", "reps", "n_reps",
})

#: The module that *is* the fused engine; every loop over the rep axis
#: inside it is suspect regardless of function naming.
_FUSED_MODULE = ("repro", "sim", "fused")


def _range_rep_name(iter_node: ast.AST) -> str | None:
    """The rep-count identifier a ``range(...)`` iteration consumes.

    Returns the offending name when *iter_node* is a ``range(...)`` call
    whose arguments mention a :data:`_REP_COUNT_NAMES` identifier
    (directly, as an attribute like ``config.runs``, or inside arithmetic
    such as ``range(n_reps - 1)``); ``None`` otherwise.  Loops over
    ``range(out.shape[1])``, ``np.flatnonzero(...)``, ``enumerate(...)``
    or plain collections never match — the fused engine's sanctioned
    sequential loops (time-coupled *steps*, not repetitions) use exactly
    those shapes.
    """
    if not isinstance(iter_node, ast.Call):
        return None
    func = iter_node.func
    if not (isinstance(func, ast.Name) and func.id == "range"):
        return None
    for arg in list(iter_node.args) + [kw.value for kw in iter_node.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name) and sub.id in _REP_COUNT_NAMES:
                return sub.id
            if isinstance(sub, ast.Attribute) and sub.attr in _REP_COUNT_NAMES:
                return sub.attr
    return None


@register_rule
class NoRepLoopInFusedPath(Rule):
    """PERF003: no per-repetition Python ``for`` loops in fused-path code."""

    id = "PERF003"
    title = "no per-repetition Python loops in fused-path scopes"
    rationale = (
        "The fused rep-axis engine earns its speedup by evaluating all "
        "repetitions of a run as one (R, ...)-shaped array program; a "
        "Python `for` over range(runs/outer_reps/num_times/...) inside "
        "repro.sim.fused or a *_fused function reintroduces the scalar "
        "per-rep interpreter loop the plane exists to replace, and the "
        "regression is invisible because results stay byte-identical."
    )
    fix_hint = (
        "vectorize over the rep axis (RepStreams draws, (R, n) array "
        "ops); a genuinely sequential *step* loop (time-coupled "
        "iterations) should iterate range(out.shape[1]) over a "
        "pre-drawn (R, steps) array instead of a rep-count name"
    )
    packages = None  # fused scopes are named, not package-bound
    node_types = (ast.For,)

    def visit(
        self, node: ast.For, ctx: FileContext, state: WalkState,
        report: Reporter,
    ) -> None:
        in_fused_module = ctx.module_parts == _FUSED_MODULE
        in_fused_function = any(
            name.endswith("_fused") for name in state.scope_stack
        )
        if not (in_fused_module or in_fused_function):
            return
        name = _range_rep_name(node.iter)
        if name is None:
            return
        where = (
            "repro.sim.fused" if in_fused_module
            else f"fused-path function {state.scope_name()!r}"
        )
        report(
            node,
            f"per-repetition loop over range({name}) in {where} walks "
            f"the rep axis in Python",
        )
