"""Static analysis of the repo's own determinism and hot-path contracts.

The reproduction's value rests on invariants nothing used to enforce
mechanically: bit-identical serial/parallel/cached replays, the RNG
draw-order contract (docs/performance.md), JSON-pure cache keys, and the
allocation discipline of the PR 5 event hot path.  This package checks
them at the cheapest possible time — before the code runs — with an
AST-based rule framework:

=========  =============================================================
DET001     no ambient nondeterminism in simulation code (stdlib random,
           numpy global state, un-seeded default_rng, wall clocks, OS
           entropy, id()-derived values)
DET002     no iteration over set/frozenset in simulation code
           (hash-randomized order is replay-unstable)
DET003     cache-key purity: every field of a frozen config dataclass
           must flow into to_dict() as a JSON-stable value
PERF001    hot-path classes (sim/, omp/tasking/) must declare __slots__
PERF002    no per-iteration closure/lambda allocation in hot-path loops
API001     experiment drivers must register via @experiment
=========  =============================================================

Entry points: ``repro-omp lint`` on the command line,
:func:`~repro.analysis.runner.lint_paths` programmatically,
:func:`~repro.analysis.runner.lint_source` for fixture tests.
Intentional exceptions live in the committed ``lint-baseline.json``
(see :mod:`repro.analysis.baseline` and docs/static-analysis.md).
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineEntry,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import (
    RULES,
    Rule,
    available_rules,
    get_rules,
    register_rule,
)
from repro.analysis.runner import (
    LintReport,
    format_json,
    format_text,
    iter_python_files,
    lint_paths,
    lint_source,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "Severity",
    "available_rules",
    "format_json",
    "format_text",
    "get_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register_rule",
]
