"""Findings model: what a rule reports and how a report is identified.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.identity` deliberately excludes the line number: baselined
exceptions (see :mod:`repro.analysis.baseline`) must survive unrelated
edits above them, so a finding is identified by *what* it is (rule, file,
normalized source line) rather than *where exactly* it sits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the lint run (unless baselined); ``WARNING``
    findings are reported but never affect the exit code — used for
    advisory signals like stale baseline entries.
    """

    ERROR = "error"
    WARNING = "warning"


def normalize_snippet(text: str) -> str:
    """Collapse a source line to its whitespace-insensitive form.

    Baseline matching compares snippets through this normalization so a
    re-indent (e.g. moving code into a conditional) does not orphan an
    intentional exception.
    """
    return " ".join(text.split())


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    rule:
        Rule identifier, e.g. ``"DET001"``.
    path:
        Normalized posix path of the offending file (see
        :func:`repro.analysis.context.normalize_path`).
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        What is wrong, specifically (names the offending symbol/field).
    scope:
        Dotted in-file scope (``"Engine.spawn"``), or ``"<module>"``.
    snippet:
        The stripped source line the finding points at.
    fix_hint:
        How to fix it (from the rule; may be refined per finding).
    severity:
        :class:`Severity`; only ``ERROR`` findings affect the exit code.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    scope: str = "<module>"
    snippet: str = ""
    fix_hint: str = ""
    severity: Severity = field(default=Severity.ERROR)

    def identity(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.path, normalize_snippet(self.snippet))

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "scope": self.scope,
            "message": self.message,
            "snippet": self.snippet,
            "fix_hint": self.fix_hint,
        }

    def render(self) -> str:
        """One text-format block: location line, snippet, hint."""
        parts = [
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.scope}] {self.message}"
        ]
        if self.snippet:
            parts.append(f"    {self.snippet}")
        if self.fix_hint:
            parts.append(f"    hint: {self.fix_hint}")
        return "\n".join(parts)
