"""NUMA memory-system substrate.

Provides the bandwidth model behind BabelStream:

* :class:`~repro.mem.bandwidth.MemorySpec` — per-NUMA-domain capacity,
  per-core link limit, remote-access penalties;
* :class:`~repro.mem.bandwidth.BandwidthModel` — a fair-share contention
  solver giving each thread its achieved bandwidth;
* :class:`~repro.mem.pages.PagePlacement` — first-touch page homes, the
  reason unpinned BabelStream threads end up streaming over the
  interconnect after migrations (Figure 4c/4f).
"""

from repro.mem.bandwidth import BandwidthModel, MemorySpec
from repro.mem.pages import PagePlacement

__all__ = ["MemorySpec", "BandwidthModel", "PagePlacement"]
