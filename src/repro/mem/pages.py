"""First-touch page placement.

Linux backs an anonymous page on the NUMA domain of the CPU that first
writes it.  BabelStream initializes its arrays inside a parallel region, so
each thread's slice of every array lands on the domain where that thread
ran *during initialization*.  Pinned threads therefore stream from local
memory forever; unbound threads that later migrate stream remotely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MemoryModelError
from repro.topology.hwthread import Machine


@dataclass(frozen=True)
class PagePlacement:
    """Home NUMA domain of each thread's array slice."""

    home_domain: tuple[int, ...]  # indexed by thread id

    @classmethod
    def first_touch(cls, machine: Machine, init_cpus: list[int]) -> "PagePlacement":
        """Pages land where the initializing threads ran."""
        if not init_cpus:
            raise MemoryModelError("first_touch needs at least one thread")
        return cls(tuple(machine.hwthread(c).numa_id for c in init_cpus))

    @classmethod
    def interleaved(cls, machine: Machine, n_threads: int) -> "PagePlacement":
        """``numactl --interleave``-style round-robin homes (ablation aid)."""
        if n_threads <= 0:
            raise MemoryModelError("need at least one thread")
        n = machine.n_numa
        return cls(tuple(i % n for i in range(n_threads)))

    @property
    def n_threads(self) -> int:
        return len(self.home_domain)

    def domain_of(self, thread: int) -> int:
        return self.home_domain[thread]

    def locality_vector(self, machine: Machine, current_cpus: list[int]) -> np.ndarray:
        """1.0 where a thread's pages are local to its current CPU, else 0.0."""
        if len(current_cpus) != self.n_threads:
            raise MemoryModelError(
                f"{len(current_cpus)} cpus for {self.n_threads} threads"
            )
        return np.asarray(
            [
                1.0 if machine.hwthread(c).numa_id == d else 0.0
                for c, d in zip(current_cpus, self.home_domain)
            ]
        )
