"""NUMA bandwidth contention model.

Each NUMA domain owns a memory-controller capacity; each core owns a link
limit; remote streams pay a path penalty *and* consume capacity at their
home domain.  :meth:`BandwidthModel.solve` computes the achieved per-thread
bandwidth by iterative proportional fair sharing (water-filling): threads
start at their core limit and are scaled down uniformly at every
oversubscribed domain until demand fits capacity everywhere.

This reproduces the three regimes BabelStream shows in the paper:

* few threads — each thread pinned at its core link limit (time falls
  roughly 1/n as threads are added, Figure 2);
* many threads — domain capacities saturate (time flattens);
* unpinned / migrated threads — remote paths cut the achievable rate by
  the cross-NUMA / cross-socket factor (min/max spread up to ~6x,
  Figure 4c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MemoryModelError
from repro.mem.pages import PagePlacement
from repro.topology.hwthread import Machine


@dataclass(frozen=True)
class MemorySpec:
    """Static memory-system parameters of a platform.

    Attributes
    ----------
    numa_bw:
        Achievable streaming bandwidth of one NUMA domain's controllers
        (bytes/s).
    core_bw:
        Per-core link limit (bytes/s) — what one thread can stream alone.
    same_socket_remote_factor:
        Multiplier (< 1) on a stream whose pages live in another domain of
        the same socket.
    cross_socket_remote_factor:
        Multiplier on a stream crossing the socket interconnect.
    kernel_launch_overhead:
        Fixed per-kernel-invocation cost (loop setup, barrier), seconds.
    stream_jitter_base / stream_jitter_util:
        Log-normal sigma of per-iteration streaming-time jitter (DRAM
        refresh alignment, page-coloring luck, prefetcher state):
        ``sigma = base + util_coeff * utilization^2`` where utilization is
        the total demand over total domain capacity.  The paper's Figure 3
        shows BabelStream's normalized min/max spreading as thread counts
        approach saturation.
    smt_stream_jitter:
        Additional sigma when teammates share cores (the MT configuration
        destabilizes streaming — Figure 5f).
    """

    numa_bw: float
    core_bw: float
    same_socket_remote_factor: float = 0.7
    cross_socket_remote_factor: float = 0.45
    kernel_launch_overhead: float = 2.0e-6
    stream_jitter_base: float = 0.002
    stream_jitter_util: float = 0.015
    smt_stream_jitter: float = 0.010

    def __post_init__(self) -> None:
        if self.numa_bw <= 0 or self.core_bw <= 0:
            raise MemoryModelError("bandwidths must be positive")
        if not 0 < self.cross_socket_remote_factor <= 1:
            raise MemoryModelError("cross-socket factor outside (0, 1]")
        if not 0 < self.same_socket_remote_factor <= 1:
            raise MemoryModelError("same-socket factor outside (0, 1]")
        if self.kernel_launch_overhead < 0:
            raise MemoryModelError("negative launch overhead")
        if min(self.stream_jitter_base, self.stream_jitter_util,
               self.smt_stream_jitter) < 0:
            raise MemoryModelError("stream jitter sigmas must be non-negative")


class BandwidthModel:
    """Fair-share bandwidth solver over the NUMA topology."""

    def __init__(self, machine: Machine, spec: MemorySpec):
        self.machine = machine
        self.spec = spec

    # -- path classification ---------------------------------------------------

    def path_factor(self, cpu: int, home_domain: int) -> float:
        """Efficiency multiplier for a thread on *cpu* streaming from *home_domain*."""
        t = self.machine.hwthread(cpu)
        if t.numa_id == home_domain:
            return 1.0
        home_socket = self.machine.numa_domains[home_domain].socket_id
        if t.socket_id == home_socket:
            return self.spec.same_socket_remote_factor
        return self.spec.cross_socket_remote_factor

    # -- solver ------------------------------------------------------------------

    def solve(
        self,
        cpus: list[int],
        placement: PagePlacement,
        smt_shared: np.ndarray | None = None,
        iterations: int = 8,
    ) -> np.ndarray:
        """Achieved bandwidth (bytes/s) per thread.

        Parameters
        ----------
        cpus:
            Current CPU of each thread.
        placement:
            Home domain of each thread's pages.
        smt_shared:
            Optional boolean array: thread shares its core with another
            streaming thread (SMT siblings split the core link).
        """
        n = len(cpus)
        if placement.n_threads != n:
            raise MemoryModelError("placement/thread count mismatch")
        spec = self.spec
        factors = np.asarray(
            [self.path_factor(c, placement.domain_of(i)) for i, c in enumerate(cpus)]
        )
        core_limit = np.full(n, spec.core_bw)
        if smt_shared is not None:
            core_limit = np.where(smt_shared, spec.core_bw / 2.0, core_limit)
        # demand starts at the per-core limit scaled by path efficiency
        bw = core_limit * factors
        homes = np.asarray([placement.domain_of(i) for i in range(n)])
        for _ in range(iterations):
            # scale down at each oversubscribed home domain
            scale = np.ones(n)
            for d in range(self.machine.n_numa):
                mask = homes == d
                demand = float(bw[mask].sum())
                if demand > spec.numa_bw:
                    scale[mask] = np.minimum(scale[mask], spec.numa_bw / demand)
            bw = bw * scale
            if np.all(scale >= 1.0 - 1e-12):
                break
        return bw

    def kernel_time(
        self,
        bytes_per_thread: np.ndarray,
        cpus: list[int],
        placement: PagePlacement,
        smt_shared: np.ndarray | None = None,
    ) -> float:
        """Wall time of one barrier-terminated streaming kernel.

        The kernel finishes when the slowest thread finishes its slice.
        """
        bw = self.solve(cpus, placement, smt_shared=smt_shared)
        times = np.asarray(bytes_per_thread, dtype=np.float64) / bw
        return float(times.max()) + self.spec.kernel_launch_overhead

    def utilization(
        self,
        cpus: list[int],
        placement: PagePlacement,
        smt_shared: np.ndarray | None = None,
    ) -> float:
        """Achieved demand over total domain capacity, in [0, 1]."""
        bw = self.solve(cpus, placement, smt_shared=smt_shared)
        homes = {placement.domain_of(i) for i in range(placement.n_threads)}
        capacity = len(homes) * self.spec.numa_bw
        return min(1.0, float(bw.sum()) / capacity)

    def jitter_sigma(
        self,
        cpus: list[int],
        placement: PagePlacement,
        smt_shared: np.ndarray | None = None,
    ) -> float:
        """Log-normal sigma for per-iteration kernel-time jitter."""
        spec = self.spec
        util = self.utilization(cpus, placement, smt_shared=smt_shared)
        sigma = spec.stream_jitter_base + spec.stream_jitter_util * util**2
        if smt_shared is not None and bool(np.asarray(smt_shared).any()):
            sigma += spec.smt_stream_jitter
        return sigma

    def aggregate_bandwidth(
        self,
        total_bytes: float,
        cpus: list[int],
        placement: PagePlacement,
        smt_shared: np.ndarray | None = None,
    ) -> float:
        """Effective node bandwidth for an evenly divided kernel (bytes/s)."""
        n = len(cpus)
        per_thread = np.full(n, total_bytes / n)
        t = self.kernel_time(per_thread, cpus, placement, smt_shared=smt_shared)
        return total_bytes / t
