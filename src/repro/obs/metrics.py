"""Harness metrics: labeled counters, gauges and histograms.

Plane 2 of :mod:`repro.obs` — *how the harness itself behaved*, in wall
time: cache hits, pool worker utilization, per-config wall seconds,
per-axis timing.  These numbers describe the execution machinery, never
the simulation, so they are allowed to read wall clocks; they must never
leak into result artifacts (``RunRecord`` serialization excludes them —
see :mod:`repro.harness.results`).

The registry is deliberately tiny: get-or-create accessors keyed by
``(name, sorted labels)``, plain slotted instrument objects, and a JSON
round-trip.  :func:`repro.harness.report.render_telemetry` renders a
registry for the CLI.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.errors import ReproError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _label_key(labels: Mapping[str, Any]) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ReproError(f"counter increments must be >= 0, got {n}")
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values (count/sum/min/max).

    Full distributions stay in the result artifacts; telemetry only needs
    enough to spot stragglers, so the histogram keeps O(1) state.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create home for the harness's instruments.

    ``registry.counter("cache.hits").inc()`` and
    ``registry.histogram("run_wall_seconds", worker="pid123").observe(w)``
    are the whole API; repeated calls with the same name + labels return
    the same instrument.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram()
        return inst

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready snapshot, entries sorted by (name, labels)."""

        def labels_dict(key: tuple) -> dict:
            return {k: v for k, v in key}

        counters = [
            {"name": name, "labels": labels_dict(lk), "value": c.value}
            for (name, lk), c in sorted(self._counters.items())
        ]
        gauges = [
            {"name": name, "labels": labels_dict(lk), "value": g.value}
            for (name, lk), g in sorted(self._gauges.items())
        ]
        histograms = [
            {
                "name": name, "labels": labels_dict(lk), "count": h.count,
                "total": h.total,
                "min": h.minimum if h.count else None,
                "max": h.maximum if h.count else None,
            }
            for (name, lk), h in sorted(self._histograms.items())
        ]
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsRegistry":
        reg = cls()
        reg.merge_dict(data)
        return reg

    def merge_dict(self, data: Mapping) -> None:
        """Fold a :meth:`to_dict` snapshot into this registry.

        Counters add, gauges take the incoming value (last write wins),
        histograms combine their O(1) summaries.  This is how ``gather``
        accumulates the telemetry each shard recorded into one registry.
        """
        for entry in data.get("counters", ()):
            self.counter(entry["name"], **entry.get("labels", {})).inc(entry["value"])
        for entry in data.get("gauges", ()):
            self.gauge(entry["name"], **entry.get("labels", {})).set(entry["value"])
        for entry in data.get("histograms", ()):
            h = self.histogram(entry["name"], **entry.get("labels", {}))
            count = entry.get("count", 0)
            if not count:
                continue  # instrument exists; nothing to combine
            # combine the O(1) summary state (not the raw stream)
            h.count += count
            h.total += entry.get("total", 0.0)
            incoming_min = entry.get("min", math.inf)
            incoming_max = entry.get("max", -math.inf)
            if incoming_min is not None and incoming_min < h.minimum:
                h.minimum = incoming_min
            if incoming_max is not None and incoming_max > h.maximum:
                h.maximum = incoming_max

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (see :meth:`merge_dict`)."""
        self.merge_dict(other.to_dict())
