"""Trace annotation pass: deterministic traces for any execution mode.

``repro-omp run/sweep --trace out.json`` must produce the identical trace
whether the results came from a serial run, a process pool, or a cache
replay.  Shipping tracers across pool workers (or reconstructing spans
from cached JSON) would make the trace depend on the execution mode; a
re-simulation does not, because every run is a pure function of
``(config, seed)`` — the property the whole parallel harness is built on
(see :mod:`repro.harness.parallel`).

So the trace is produced by a separate *annotation pass*: after the real
execution finishes (however it ran), each config is re-simulated serially
in the parent process with a :class:`~repro.obs.tracer.SpanTracer`
attached.  The pass costs one extra serial simulation per traced config —
trace what you want to look at, not a thousand-config sweep.
"""

from __future__ import annotations

from typing import Sequence

from repro.harness.config import ExperimentConfig
from repro.obs.tracer import SpanTracer

__all__ = ["build_trace", "write_trace"]


def build_trace(configs: Sequence[ExperimentConfig]) -> SpanTracer:
    """Simulate every config serially with tracing on; returns the tracer.

    One Perfetto process group per config (``pid`` = position in
    *configs*, named by the config's display label).
    """
    from repro.harness.runner import Runner  # lazy: heavy import chain

    tracer = SpanTracer()
    for pid, cfg in enumerate(configs):
        tracer.begin_process(pid, cfg.display_label)
        Runner(cfg, tracer=tracer).run()
    return tracer


def write_trace(configs: Sequence[ExperimentConfig], path) -> int:
    """Annotation pass + export; returns the number of trace events."""
    return build_trace(configs).write(path)
