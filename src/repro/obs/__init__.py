"""Observability: simulated-time tracing + harness metrics.

Two planes (see ``docs/observability.md``):

* :mod:`repro.obs.tracer` — span traces in **simulated** time, exported
  as Perfetto-loadable Chrome trace-event JSON;
* :mod:`repro.obs.metrics` — counters/gauges/histograms describing the
  harness's own execution in **wall** time.

:mod:`repro.obs.annotate` (imported lazily by the CLI, not here: it pulls
in the whole harness stack) re-runs configurations serially with a
:class:`~repro.obs.tracer.SpanTracer` attached to produce the trace —
the simulation is a pure function of (config, seed), so the annotation
pass describes pool or cached results exactly.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    CPU_TRACK_BASE,
    NULL_TRACER,
    NullTracer,
    SpanTracer,
    Tracer,
    validate_chrome,
)

__all__ = [
    "CPU_TRACK_BASE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SpanTracer",
    "Tracer",
    "validate_chrome",
]
