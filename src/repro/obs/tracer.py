"""Simulated-time span tracing with Chrome trace-event export.

Two planes of observability live under :mod:`repro.obs`; this module is
plane 1 — *what happened inside the simulation, and when*.  A tracer
receives spans (``[t0, t1)`` activity on a per-thread track), instant
events (point markers), and counter samples (time series), all stamped in
**simulated** time; nothing here ever reads a wall clock, so attaching a
tracer cannot perturb a run.

The default :data:`NULL_TRACER` is a do-nothing singleton whose
``enabled`` flag is ``False``.  The hot paths (engine loop, work-stealing
workers) hoist ``tracing = tracer.enabled`` once per episode and guard
every emission with ``if tracing:`` — the contract lint rule OBS001
enforces (see :mod:`repro.analysis.rules_obs`) — so the null path costs
one attribute read per *episode*, not per event, and allocates nothing.

:class:`SpanTracer` records events and exports Chrome trace-event JSON
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* ``pid`` = configuration index (one process group per swept config,
  named by its display label);
* ``tid`` = simulated OpenMP thread index; per-CPU OS-noise tracks live
  at ``tid = CPU_TRACK_BASE + cpu``;
* successive runs of one config are laid out back-to-back on the
  timeline (each :meth:`SpanTracer.begin_run` advances a time offset), so
  run 3's spans never overlap run 2's;
* counter tracks (``"C"`` events) carry queue depth and busy-thread
  counts.

Timestamps are integer simulated **nanoseconds** internally (exported as
fractional microseconds, the Chrome convention), which keeps the JSON
byte-deterministic: the trace of a config is a pure function of
(config, seed) and therefore identical whether the underlying results
were computed serially, on a process pool, or replayed from cache.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional, Protocol, runtime_checkable

from repro.errors import ReproError

__all__ = [
    "CPU_TRACK_BASE",
    "NULL_TRACER",
    "NullTracer",
    "SpanTracer",
    "Tracer",
    "validate_chrome",
]

#: OS-noise CPU tracks start here (``tid = CPU_TRACK_BASE + cpu``), far
#: above any simulated thread index.
CPU_TRACK_BASE = 10_000

#: Simulated-nanosecond gap inserted between successive runs on the
#: exported timeline, so per-run event clusters stay visually separate.
_RUN_GAP_NS = 1_000_000


def _ns(t: float) -> int:
    """Simulated seconds -> integer simulated nanoseconds."""
    return int(round(t * 1e9))


@runtime_checkable
class Tracer(Protocol):
    """What the instrumented layers require of a tracer.

    ``enabled`` is a plain attribute (not a property) so the hot paths
    can hoist it into a local; every emission method takes simulated
    seconds.  :class:`NullTracer` and :class:`SpanTracer` implement it.
    """

    enabled: bool

    def begin_process(self, pid: int, name: str) -> None: ...
    def begin_run(self, run_index: int) -> None: ...
    def thread_name(self, tid: int, name: str) -> None: ...
    def span(self, tid: int, name: str, t0: float, t1: float,
             cat: str = "sim", args: Optional[Mapping] = None) -> None: ...
    def instant(self, tid: int, name: str, t: float,
                cat: str = "sim", args: Optional[Mapping] = None) -> None: ...
    def counter(self, name: str, t: float, value: float) -> None: ...


class NullTracer:
    """The zero-overhead default: every emission is a no-op.

    Slotted and stateless; one module-level singleton (:data:`NULL_TRACER`)
    is shared by every default argument, so the disabled path allocates
    nothing, ever.
    """

    __slots__ = ()

    enabled = False

    def begin_process(self, pid: int, name: str) -> None:
        pass

    def begin_run(self, run_index: int) -> None:
        pass

    def thread_name(self, tid: int, name: str) -> None:
        pass

    def span(self, tid, name, t0, t1, cat="sim", args=None) -> None:
        pass

    def instant(self, tid, name, t, cat="sim", args=None) -> None:
        pass

    def counter(self, name, t, value) -> None:
        pass


#: The shared do-nothing tracer every instrumented layer defaults to.
NULL_TRACER = NullTracer()


class SpanTracer:
    """Records spans/instants/counters and exports Chrome trace JSON.

    One tracer instance spans a whole annotation pass: call
    :meth:`begin_process` per configuration (sets the current ``pid`` and
    its Perfetto process name) and :meth:`begin_run` per run (lays runs
    out sequentially on the simulated timeline).  Thread names are kept
    first-writer-wins per ``(pid, tid)`` — an unbound team that reforks
    onto new CPUs keeps its original track label.
    """

    __slots__ = ("pid", "_offset_ns", "_max_ns", "_events",
                 "_process_names", "_thread_names")

    enabled = True  # class attribute: a SpanTracer is always recording

    def __init__(self) -> None:
        self.pid = 0
        self._offset_ns = 0
        self._max_ns = 0
        #: (pid, tid, ts_ns, dur_ns|None, ph, name, cat, args|value)
        self._events: list[tuple] = []
        self._process_names: dict[int, str] = {}
        self._thread_names: dict[tuple[int, int], str] = {}

    # -- structure ---------------------------------------------------------

    def begin_process(self, pid: int, name: str) -> None:
        """Start a new process group (one per traced configuration)."""
        self.pid = int(pid)
        self._process_names.setdefault(self.pid, name)
        self._offset_ns = 0
        self._max_ns = 0

    def begin_run(self, run_index: int) -> None:
        """Start a run: shift the time origin past everything emitted so
        far, and drop a ``run`` marker at the new origin."""
        self._offset_ns = self._max_ns + (_RUN_GAP_NS if self._events else 0)
        self.instant(0, "run", 0.0, cat="harness", args={"run": run_index})

    def thread_name(self, tid: int, name: str) -> None:
        self._thread_names.setdefault((self.pid, int(tid)), name)

    # -- emission ----------------------------------------------------------

    def span(self, tid, name, t0, t1, cat="sim", args=None) -> None:
        if t1 < t0:
            raise ReproError(f"span {name!r} ends before it starts: {t0} > {t1}")
        ts = _ns(t0) + self._offset_ns
        end = _ns(t1) + self._offset_ns
        if end > self._max_ns:
            self._max_ns = end
        self._events.append(
            (self.pid, int(tid), ts, end - ts, "X", name, cat,
             dict(args) if args else None)
        )

    def instant(self, tid, name, t, cat="sim", args=None) -> None:
        ts = _ns(t) + self._offset_ns
        if ts > self._max_ns:
            self._max_ns = ts
        self._events.append(
            (self.pid, int(tid), ts, None, "i", name, cat,
             dict(args) if args else None)
        )

    def counter(self, name, t, value) -> None:
        ts = _ns(t) + self._offset_ns
        if ts > self._max_ns:
            self._max_ns = ts
        self._events.append((self.pid, 0, ts, None, "C", name, "counter", value))

    # -- inspection --------------------------------------------------------

    @property
    def n_events(self) -> int:
        return len(self._events)

    def span_names(self) -> set[str]:
        """Distinct names of recorded ``X`` spans (test/validation aid)."""
        return {e[5] for e in self._events if e[4] == "X"}

    # -- export ------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The Chrome trace-event payload (``ts``/``dur`` in microseconds).

        Metadata first, then events sorted by ``(pid, ts, tid, name)`` —
        a canonical order, so equal recordings serialize to equal bytes.
        """
        out: list[dict] = []
        for pid in sorted(self._process_names):
            out.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": self._process_names[pid]},
            })
        for (pid, tid) in sorted(self._thread_names):
            out.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": self._thread_names[(pid, tid)]},
            })
        for pid, tid, ts, dur, ph, name, cat, payload in sorted(
            self._events, key=lambda e: (e[0], e[2], e[1], e[5])
        ):
            ev: dict = {
                "ph": ph, "name": name, "pid": pid, "tid": tid, "ts": ts / 1000,
            }
            if ph == "X":
                ev["dur"] = dur / 1000
                ev["cat"] = cat
                if payload:
                    ev["args"] = payload
            elif ph == "i":
                ev["s"] = "t"  # thread-scoped instant
                ev["cat"] = cat
                if payload:
                    ev["args"] = payload
            else:  # "C"
                ev["args"] = {"value": payload}
            out.append(ev)
        return {"traceEvents": out, "displayTimeUnit": "ns"}

    def write(self, path) -> int:
        """Serialize to *path* (deterministic bytes); returns event count."""
        payload = self.to_chrome()
        Path(path).write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        )
        return len(payload["traceEvents"])


def validate_chrome(payload: Mapping) -> int:
    """Validate a Chrome trace-event payload; returns the event count.

    The schema the tests and the CI ``obs-smoke`` job enforce: a
    ``traceEvents`` list whose entries carry ``ph``/``name``/``pid``/
    ``tid``/``ts`` with the per-phase requirements (complete spans have a
    non-negative ``dur``, counters carry a numeric ``args.value``,
    metadata names a process or thread).  Raises
    :class:`~repro.errors.ReproError` on the first violation.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ReproError("trace has no traceEvents list")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, Mapping):
            raise ReproError(f"{where} is not an object")
        for key in ("ph", "name", "pid", "tid"):
            if key not in ev:
                raise ReproError(f"{where} lacks {key!r}")
        ph = ev["ph"]
        if ph not in ("X", "i", "C", "M"):
            raise ReproError(f"{where} has unknown phase {ph!r}")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ReproError(f"{where} has bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ReproError(f"{where} span has bad dur {dur!r}")
        if ph == "C":
            value = (ev.get("args") or {}).get("value")
            if not isinstance(value, (int, float)):
                raise ReproError(f"{where} counter has no numeric value")
        if ph == "M" and ev["name"] not in ("process_name", "thread_name"):
            raise ReproError(f"{where} has unknown metadata {ev['name']!r}")
    return len(events)
