"""Command-line interface.

Examples
--------
List what's available::

    repro-omp list

Regenerate a paper artifact (quick scale)::

    repro-omp experiment table2 --runs 5 --reps 30 --seed 1

Regenerate at full scale on every core, caching results on disk so a
re-invocation replays instead of re-simulating (see docs/parallel.md)::

    repro-omp experiment figure3 --jobs 0 --cache-dir ~/.cache/repro-omp

Run a custom configuration and save the raw result::

    repro-omp run --platform dardel --benchmark syncbench --threads 128 \
        --proc-bind close --runs 10 --out result.json

Run the tasking micro-benchmark (a fib(14) tree, OS noise ablated) and
read the work-stealing metrics next to the variability report::

    repro-omp run --platform vera --benchmark taskbench --threads 16 \
        --noise quiet --param pattern=fib --param fib_n=14

Compare runtime vendors (see docs/runtimes.md), or run one configuration
under LLVM libomp with passive waiters::

    repro-omp experiment runtime_compare --jobs 0
    repro-omp run --platform dardel --benchmark syncbench --threads 128 \
        --runtime llvm --wait-policy passive

Run a declarative parameter sweep without writing any Python (see
docs/study.md): ``--grid`` axes cross-multiply, ``--zip`` axes tie
equal-length value lists together, and ``--out`` exports the tidy
records as CSV or JSON::

    repro-omp sweep --grid num_threads=4,8 --grid runtime=gnu,llvm \
        --runs 5 --reps 20 --out sweep.csv

Shard one sweep across independent workers (different terminals, or
different hosts sharing one cache directory), then assemble the shards
into a result byte-identical to the unsharded run (see
docs/distributed.md)::

    repro-omp sweep --grid num_threads=4,8,16 --shard 0/2 --cache-dir /shared/cache
    repro-omp sweep --grid num_threads=4,8,16 --shard 1/2 --cache-dir /shared/cache
    repro-omp gather --grid num_threads=4,8,16 --cache-dir /shared/cache \
        --expect-shards 2 --out sweep.csv

Inspect or clean a cache directory::

    repro-omp cache stats --cache-dir /shared/cache
    repro-omp cache gc --cache-dir /shared/cache

Check the tree against the determinism & hot-path contracts (see
docs/static-analysis.md); intentional exceptions live in the committed
``lint-baseline.json``::

    repro-omp lint src
    repro-omp lint src --rule DET001 --format json
    repro-omp lint --list-rules

Run sweeps as a service: one long-lived process executes JSON job specs
over a shared cache and pool, with dedup, SSE progress streams and a
per-client rate limit (see docs/service.md)::

    repro-omp serve --port 8765 --workers 2 --jobs 0 &
    repro-omp sweep --grid num_threads=4,8 --dry-run   # preview, no work
    repro-omp submit spec.json --wait
    repro-omp status j0001-abcdef012345
    repro-omp fetch j0001-abcdef012345 --out records.json

Show a platform description::

    repro-omp platform dardel
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.registry import available_benchmarks
from repro.errors import ReproError
from repro.harness.backend import (
    FUSED_MODES,
    available_backends,
    make_backend,
    parse_shard,
)
from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig
from repro.harness.experiments import (
    EXPERIMENTS,
    available_experiments,
    get_experiment,
)
from repro.harness.parallel import ParallelRunner
from repro.harness.report import (
    render_group_summaries,
    render_shard_summary,
    render_study_overview,
    render_tasking_summary,
    split_tasking_labels,
)
from repro.harness.shard import ShardRunComplete
from repro.harness.study import Study, coerce_token
from repro.omp.vendor import available_runtimes, get_runtime_profile
from repro.platform import available_platforms, get_platform


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    """--jobs / --backend / --shard / --cache-dir / --no-cache, shared by
    experiment, run and sweep."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the run fan-out (0 = all cores; default 1)",
    )
    parser.add_argument(
        "--backend", choices=available_backends(), default="auto",
        help="execution backend (default auto: serial for --jobs 1, a "
             "process pool otherwise; see docs/distributed.md)",
    )
    parser.add_argument(
        "--shard", default=None, metavar="I/N",
        help="execute only shard I of an N-way partition of the configs "
             "(zero-based; requires --cache-dir shared by all shards, then "
             "`repro-omp gather`; see docs/distributed.md)",
    )
    parser.add_argument(
        "--fused", choices=FUSED_MODES, default="auto",
        help="fused rep-axis engine: batch all repetitions of eligible "
             "configs into one array program, byte-identical to scalar "
             "execution (default auto: fuse eligible multi-run configs; "
             "see docs/performance.md)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache results on disk under DIR and replay them on re-invocation",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir: neither read nor write cached results",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """--trace / --telemetry / --telemetry-out, shared by run and sweep."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="export a Chrome trace-event JSON of the simulated timeline "
             "(load in https://ui.perfetto.dev; see docs/observability.md)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="print the harness telemetry section (cache, pool, timings)",
    )
    parser.add_argument(
        "--telemetry-out", dest="telemetry_out", default=None, metavar="PATH",
        help="export the harness metrics registry as JSON",
    )


def _make_cache(args: argparse.Namespace) -> ResultCache | None:
    if args.cache_dir is None or args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _make_backend(args: argparse.Namespace):
    """The ExecutionBackend the --backend/--shard/--jobs flags ask for
    (``None`` keeps the Sweep's own jobs-based default)."""
    shard = parse_shard(args.shard) if args.shard is not None else None
    return make_backend(
        args.backend, jobs=args.jobs, shard=shard,
        fused=getattr(args, "fused", "off"),
    )


def _finish_obs(args: argparse.Namespace, configs, metrics) -> None:
    """Shared run/sweep epilogue: execution summary, trace, telemetry.

    The one-line execution summary (worker count + cache traffic) always
    prints; the trace annotation pass and telemetry exports only on
    request.  *configs* is the full expanded config list in display order
    — the trace's Perfetto process groups follow it.
    """
    import json

    from repro.harness.parallel import resolve_jobs
    from repro.harness.report import render_telemetry

    cache_summary = "disabled"
    if args.cache_dir is not None and not args.no_cache:
        hits = metrics.counter("cache_hits").value
        misses = metrics.counter("cache_misses").value
        stores = metrics.counter("cache_stores").value
        cache_summary = (
            f"{hits:g} hit(s), {misses:g} miss(es), {stores:g} store(s)"
        )
    print(
        f"\nexecution: {resolve_jobs(args.jobs)} worker(s); "
        f"cache: {cache_summary}"
    )
    if args.trace:
        # lazy: the annotation pass re-simulates serially in-process
        from repro.obs.annotate import write_trace

        n_events = write_trace(configs, args.trace)
        print(
            f"wrote {n_events} trace events to {args.trace} "
            f"(open in https://ui.perfetto.dev)"
        )
    if args.telemetry:
        print()
        print(render_telemetry(metrics))
    if args.telemetry_out:
        Path(args.telemetry_out).write_text(
            json.dumps(metrics.to_dict(), indent=1) + "\n"
        )
        print(f"wrote telemetry JSON to {args.telemetry_out}")


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    """Base-configuration flags shared by ``run`` and ``sweep``."""
    parser.add_argument("--platform", choices=available_platforms(), default="vera")
    parser.add_argument("--benchmark", choices=available_benchmarks(),
                        default="syncbench")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--places", default="cores")
    parser.add_argument("--proc-bind", dest="proc_bind", default="close",
                        choices=["false", "true", "close", "spread", "master"])
    parser.add_argument("--schedule", default="static",
                        choices=["static", "dynamic", "guided"])
    parser.add_argument("--chunk", type=int, default=None)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--noise", default="default", choices=["default", "quiet"],
                        help="OS-noise profile (quiet = noise sources ablated)")
    parser.add_argument("--runtime", default="gnu", choices=available_runtimes(),
                        help="OpenMP implementation vendor profile "
                             "(gnu = GCC libgomp, llvm = LLVM libomp)")
    parser.add_argument("--wait-policy", dest="wait_policy", default=None,
                        choices=["active", "passive"],
                        help="OMP_WAIT_POLICY override (default: vendor's policy)")
    parser.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                        help="extra benchmark parameter (repeatable), e.g. "
                             "--param pattern=fib --param fib_n=14")
    parser.add_argument("--freq-log", action="store_true")


def _reps_key(benchmark: str) -> str:
    """The repetition knob of *benchmark* (``--reps`` maps onto it).

    Canonical definition lives in :func:`repro.serve.jobspec.reps_key` so
    the job service maps ``reps`` identically to this CLI."""
    from repro.serve.jobspec import reps_key

    return reps_key(benchmark)


def _config_from_args(
    args: argparse.Namespace, include_reps: bool = True
) -> ExperimentConfig:
    """Build the (base) ExperimentConfig from the shared config flags.

    ``sweep`` passes ``include_reps=False`` and applies ``--reps`` per
    expanded config instead: the knob's name depends on the benchmark,
    which may itself be a swept axis.
    """
    params: dict = {}
    if include_reps and args.reps is not None:
        params[_reps_key(args.benchmark)] = args.reps
    params.update(_parse_param(item) for item in args.param)
    return ExperimentConfig(
        platform=args.platform,
        benchmark=args.benchmark,
        num_threads=args.threads,
        places=None if args.proc_bind == "false" else args.places,
        proc_bind=args.proc_bind,
        schedule=args.schedule,
        schedule_chunk=args.chunk,
        runs=args.runs,
        seed=args.seed,
        noise=args.noise,
        runtime=args.runtime,
        wait_policy=args.wait_policy,
        benchmark_params=params,
        freq_logging=args.freq_log,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-omp",
        description=(
            "Reproduction of 'Analysis and Characterization of Performance "
            "Variability for OpenMP Runtime' (SC-W 2023) on a simulated node."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list platforms, benchmarks and experiments")

    p_platform = sub.add_parser("platform", help="describe a platform preset")
    p_platform.add_argument("name", choices=available_platforms())

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("name", choices=available_experiments())
    p_exp.add_argument("--runs", type=int, default=None, help="runs per config")
    p_exp.add_argument("--reps", type=int, default=None,
                       help="outer repetitions / stream iterations")
    p_exp.add_argument("--seed", type=int, default=42)
    _add_execution_flags(p_exp)

    p_run = sub.add_parser("run", help="run one custom configuration")
    _add_config_flags(p_run)
    p_run.add_argument("--out", default=None, help="save result JSON here")
    _add_execution_flags(p_run)
    _add_obs_flags(p_run)

    p_sweep = sub.add_parser(
        "sweep",
        help="declarative parameter sweep (grid/zip axes over a base config)",
    )
    _add_config_flags(p_sweep)
    p_sweep.add_argument(
        "--grid", action="append", default=[], metavar="KEY=V1,V2,...",
        help="sweep axis whose values cross-multiply with other axes "
             "(repeatable); KEY is a config field or a benchmark parameter",
    )
    p_sweep.add_argument(
        "--zip", action="append", default=[], metavar="KEY=V1,V2,...",
        help="sweep axes tied position-by-position; all --zip lists must "
             "share a length (repeatable)",
    )
    p_sweep.add_argument(
        "--label", default=None, metavar="SERIES",
        help="measurement series to summarize (default: each result's first)",
    )
    p_sweep.add_argument(
        "--group-by", dest="group_by", action="append", default=[],
        metavar="KEY",
        help="axis to aggregate pooled variability over (repeatable; "
             "default: every swept axis)",
    )
    p_sweep.add_argument(
        "--out", default=None, metavar="PATH",
        help="export tidy records here (.json exports JSON, anything "
             "else CSV)",
    )
    p_sweep.add_argument(
        "--dry-run", dest="dry_run", action="store_true",
        help="print the expanded config list (with cache keys and "
             "warm/cold status) as JSON and exit without simulating",
    )
    _add_execution_flags(p_sweep)
    _add_obs_flags(p_sweep)

    p_gather = sub.add_parser(
        "gather",
        help="assemble the shards of a --shard i/N run from their shared "
             "cache dir into one verified result (see docs/distributed.md)",
    )
    _add_config_flags(p_gather)
    # the sweep parser defaults --runs to 10; gather defaults it to None
    # so experiment-mode gather leaves each driver's own default alone
    # (sweep-mode normalizes None back to 10 for spec parity with sweep)
    p_gather.set_defaults(runs=None)
    p_gather.add_argument(
        "--grid", action="append", default=[], metavar="KEY=V1,V2,...",
        help="sweep axis, exactly as passed to the sharded sweep",
    )
    p_gather.add_argument(
        "--zip", action="append", default=[], metavar="KEY=V1,V2,...",
        help="zip axes, exactly as passed to the sharded sweep",
    )
    p_gather.add_argument(
        "--experiment", default=None, choices=available_experiments(),
        metavar="NAME",
        help="gather a sharded `experiment NAME` run instead of a sweep: "
             "verify the manifests, then render the artifact from cache "
             "only (never simulating)",
    )
    p_gather.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="the cache directory every shard wrote into",
    )
    p_gather.add_argument(
        "--expect-shards", dest="expect_shards", type=int, default=None,
        metavar="N",
        help="fail unless the manifests form exactly this partition size "
             "(guards against gathering a stale or mixed cache dir)",
    )
    p_gather.add_argument(
        "--label", default=None, metavar="SERIES",
        help="measurement series to summarize (default: each result's first)",
    )
    p_gather.add_argument(
        "--group-by", dest="group_by", action="append", default=[],
        metavar="KEY",
        help="axis to aggregate pooled variability over (repeatable)",
    )
    p_gather.add_argument(
        "--out", default=None, metavar="PATH",
        help="export tidy records here — byte-identical to what the same "
             "sweep flags export unsharded",
    )
    p_gather.add_argument(
        "--telemetry", action="store_true",
        help="print the merged per-shard harness telemetry",
    )
    p_gather.add_argument(
        "--telemetry-out", dest="telemetry_out", default=None, metavar="PATH",
        help="export the merged metrics registry as JSON",
    )

    p_cache = sub.add_parser(
        "cache",
        help="inspect or clean a result cache directory",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_stats = cache_sub.add_parser(
        "stats",
        help="entry count, bytes, per-version breakdown and hit rate",
    )
    p_cache_stats.add_argument("--cache-dir", required=True, metavar="DIR")
    p_cache_stats.add_argument(
        "--format", dest="fmt", choices=["text", "json"], default="text",
    )
    p_cache_gc = cache_sub.add_parser(
        "gc",
        help="prune entries orphaned by code/schema version bumps "
             "(their keys can never be looked up again)",
    )
    p_cache_gc.add_argument("--cache-dir", required=True, metavar="DIR")

    p_bench = sub.add_parser(
        "bench",
        help="measure engine throughput (events/sec) and record the "
             "numbers to a JSON report",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="~10x smaller workloads (CI smoke)",
    )
    p_bench.add_argument(
        "--out", default="BENCH_engine.json", metavar="PATH",
        help="where to write the JSON report (default: BENCH_engine.json); "
             "the prior report's numbers are preserved in its append-only "
             "trajectory list instead of being clobbered",
    )
    p_bench.add_argument(
        "--stamp", default=None, metavar="LABEL",
        help="label (date, commit id, ...) recorded with this report's "
             "trajectory entry",
    )

    p_lint = sub.add_parser(
        "lint",
        help="static determinism & hot-path contract checks "
             "(see docs/static-analysis.md)",
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--rule", action="append", default=[], metavar="ID",
        help="run only this rule (repeatable), e.g. --rule DET001",
    )
    p_lint.add_argument(
        "--format", dest="fmt", choices=["text", "json"], default="text",
        help="output format (json is what the CI lint job consumes)",
    )
    p_lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline of intentional exceptions (default: "
             "lint-baseline.json in the current directory, if present)",
    )
    p_lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline: report every finding",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the HTTP job service (async sweeps over one shared "
             "pool and cache; see docs/service.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="jobs progressing concurrently (governor worker threads)",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process parallelism of the one shared execution pool "
             "(0 = all cores; default 1 = in-process)",
    )
    p_serve.add_argument(
        "--state-dir", default=".repro-serve", metavar="DIR",
        help="job state, rendered records and (by default) the shared "
             "result cache live here (default: .repro-serve)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="share an existing result cache instead of STATE_DIR/cache",
    )

    p_submit = sub.add_parser(
        "submit",
        help="submit a job spec JSON to a running service",
    )
    p_submit.add_argument(
        "spec", metavar="FILE",
        help="job spec JSON file, or '-' to read the spec from stdin",
    )
    p_submit.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="service base URL (default: http://127.0.0.1:8765)",
    )
    p_submit.add_argument(
        "--client-id", dest="client_id", default=None,
        help="stable client name for the per-client rate limit",
    )
    p_submit.add_argument(
        "--dry-run", dest="dry_run", action="store_true",
        help="expand the spec on the service (cache keys + warm/cold "
             "status) without creating a job",
    )
    p_submit.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches a terminal state",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="--wait deadline (default 300)",
    )

    p_status = sub.add_parser(
        "status",
        help="show one job (or every job) on a running service",
    )
    p_status.add_argument("job_id", nargs="?", default=None, metavar="JOB_ID")
    p_status.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="service base URL (default: http://127.0.0.1:8765)",
    )

    p_fetch = sub.add_parser(
        "fetch",
        help="download a finished job's tidy records",
    )
    p_fetch.add_argument("job_id", metavar="JOB_ID")
    p_fetch.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="service base URL (default: http://127.0.0.1:8765)",
    )
    p_fetch.add_argument(
        "--format", dest="fmt", choices=["json", "csv"], default="json",
        help="records format (default json)",
    )
    p_fetch.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the records here byte-identically (default: stdout)",
    )
    return parser


#: Config fields whose legal *string* values collide with the bool tokens
#: (``proc_bind="false"`` means OS placement, not Python ``False``), so
#: axis values for them are taken verbatim.
_VERBATIM_AXIS_KEYS = frozenset({"proc_bind"})


def _parse_param(item: str) -> tuple[str, object]:
    """``KEY=VALUE`` with the value coerced via
    :func:`~repro.harness.study.coerce_token` — ``true``/``false``/``none``
    (case-insensitive) become ``True``/``False``/``None``, so boolean
    benchmark parameters do not arrive as (always-truthy) strings."""
    key, sep, raw = item.partition("=")
    if not sep or not key:
        raise ReproError(f"--param needs KEY=VALUE, got {item!r}")
    return key, coerce_token(raw)


def _parse_axis(item: str) -> tuple[str, list]:
    """``KEY=V1,V2,...`` for ``--grid`` / ``--zip``; values coerced like
    ``--param`` values (except for keys whose legal string values look
    like booleans, e.g. ``proc_bind=false,close``)."""
    key, sep, raw = item.partition("=")
    if not sep or not key or not raw:
        raise ReproError(f"--grid/--zip need KEY=V1,V2,..., got {item!r}")
    values = raw.split(",")
    if key in _VERBATIM_AXIS_KEYS:
        return key, values
    return key, [coerce_token(v) for v in values]


def _cmd_list() -> int:
    print("platforms:  ", ", ".join(available_platforms()))
    print("benchmarks: ", ", ".join(available_benchmarks()))
    print("runtimes:   ", ", ".join(
        f"{name} ({get_runtime_profile(name).vendor})"
        for name in available_runtimes()
    ))
    print("experiments:")
    width = max(len(name) for name in EXPERIMENTS)
    for name in available_experiments():
        print(f"  {name:<{width}}  {EXPERIMENTS[name].description}")
    return 0


def _cmd_platform(name: str) -> int:
    print(get_platform(name).describe())
    return 0


def _cmd_experiment(name: str, args: argparse.Namespace) -> int:
    spec = get_experiment(name)
    kwargs: dict = {
        "seed": args.seed,
        "jobs": args.jobs,
        "cache": _make_cache(args),
        "backend": _make_backend(args),
    }
    if args.runs is not None:
        kwargs["runs"] = args.runs
    if args.reps is not None:
        # the registry knows each driver's repetition knob(s)
        for key in spec.rep_params:
            kwargs[key] = args.reps
    artifact = spec.driver(**kwargs)
    print(artifact.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry

    config = _config_from_args(args)
    metrics = MetricsRegistry()
    result = ParallelRunner(
        config, jobs=args.jobs, cache=_make_cache(args), metrics=metrics,
        backend=_make_backend(args),
    ).run()
    time_labels, metric_labels = split_tasking_labels(result.labels())
    for label in time_labels:
        print(result.report(label).render())
        print()
        if f"{label}.steals" in metric_labels:
            print(
                render_tasking_summary(
                    label,
                    result.runs_matrix(f"{label}.steals"),
                    result.runs_matrix(f"{label}.failed_steals"),
                    result.runs_matrix(f"{label}.idle_frac"),
                )
            )
            print()
    if args.out:
        result.save(args.out)
        print(f"saved raw result to {args.out}")
    _finish_obs(args, [config], metrics)
    return 0


def _build_sweep_study(args: argparse.Namespace) -> Study:
    """The Study the sweep flags describe — shared verbatim by ``sweep``
    and ``gather`` so a gathered sharded run expands the exact same
    configs (and hence cache keys) the shard workers ran."""
    study = Study(
        _config_from_args(args, include_reps=False),
        name="sweep",
        description="declarative CLI sweep",
    )
    for item in args.grid:
        key, values = _parse_axis(item)
        study = study.grid(**{key: values})
    if args.zip:
        study = study.zip(**dict(_parse_axis(item) for item in args.zip))
    if args.reps is not None:
        # applied per expanded config: the knob's name follows each
        # config's benchmark (which may be a swept axis), and an explicit
        # axis/--param value for the knob wins over --reps.  Shared with
        # the job service so HTTP-submitted sweeps expand identically.
        from repro.serve.jobspec import reps_derive

        study = study.derive(benchmark_params=reps_derive(args.reps))
    return study


def _render_sweep_report(args: argparse.Namespace, result) -> None:
    """Sweep overview + group summaries + optional export, shared by
    ``sweep`` and ``gather`` (identical flags produce identical exports)."""
    axes = ", ".join(result.axes) if result.axes else "(none)"
    print(f"sweep: {len(result)} configuration(s); swept axes: {axes}")
    print()
    print(
        render_study_overview(
            result, label=args.label,
            title="per-configuration pooled variability",
        )
    )
    for axis in args.group_by or result.axes:
        print()
        print(
            render_group_summaries(
                axis,
                result.group_summaries(axis, label=args.label),
                title=f"pooled variability by {axis}",
            )
        )
    if args.out:
        out = Path(args.out)
        if out.suffix.lower() == ".json":
            n_records = result.to_json(out)
        else:
            n_records = result.to_csv(out)
        print(f"\nexported {n_records} tidy records to {out}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.obs.metrics import MetricsRegistry

    study = _build_sweep_study(args)
    if args.dry_run:
        # same payload POST /jobs?dry_run=1 returns: the expanded config
        # list with cache keys and warm/cold status, nothing simulated
        rows = study.preview(_make_cache(args))
        print(json.dumps({"total": len(rows), "configs": rows}, indent=2))
        return 0
    metrics = MetricsRegistry()
    result = study.run(
        jobs=args.jobs, cache=_make_cache(args), metrics=metrics,
        backend=_make_backend(args),
    )
    _render_sweep_report(args, result)
    _finish_obs(args, list(result.configs), metrics)
    return 0


def _cmd_gather(args: argparse.Namespace) -> int:
    import json

    from repro.harness.report import render_gather_summary, render_telemetry
    from repro.harness.shard import (
        ReplayCache,
        load_manifests,
        verify_manifest_entries,
    )
    from repro.obs.metrics import MetricsRegistry

    cache = ResultCache(args.cache_dir)

    if args.experiment is not None:
        # verify the partition + entry digests, then replay the driver
        # from cache only.  Diagnostics go to stderr: stdout carries the
        # artifact alone, byte-comparable with `repro-omp experiment`.
        manifests = load_manifests(cache, args.expect_shards)
        verified = verify_manifest_entries(cache, manifests)
        total_bytes = sum(
            e["bytes"] for p in manifests.values() for e in p["entries"]
        )
        print(
            render_gather_summary(
                len(manifests), verified, total_bytes, verified
            ),
            file=sys.stderr,
        )
        spec = get_experiment(args.experiment)
        kwargs: dict = {
            "seed": args.seed,
            "jobs": 1,
            "cache": ReplayCache(args.cache_dir),
        }
        if args.runs is not None:
            kwargs["runs"] = args.runs
        if args.reps is not None:
            for key in spec.rep_params:
                kwargs[key] = args.reps
        artifact = spec.driver(**kwargs)
        print(artifact.render())
        return 0

    if args.runs is None:
        args.runs = 10  # the sweep parser's default: keep spec parity
    study = _build_sweep_study(args)
    metrics = MetricsRegistry()
    result = study.gather(
        cache, expected_shards=args.expect_shards, metrics=metrics
    )
    print(
        render_gather_summary(
            int(metrics.gauge("manifest_shards").value),
            int(metrics.counter("manifest_entries_verified").value),
            metrics.gauge("manifest_total_bytes").value,
            len(result),
        )
    )
    print()
    _render_sweep_report(args, result)
    if args.telemetry:
        print()
        print(render_telemetry(metrics))
    if args.telemetry_out:
        Path(args.telemetry_out).write_text(
            json.dumps(metrics.to_dict(), indent=1) + "\n"
        )
        print(f"wrote telemetry JSON to {args.telemetry_out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        if args.fmt == "json":
            print(json.dumps(stats, indent=1))
            return 0
        print(f"cache: {stats['cache_dir']}")
        print(
            f"entries: {stats['entries']} "
            f"({stats['total_bytes']:,} bytes)"
        )
        if stats["by_version"]:
            breakdown = ", ".join(
                f"{version}: {count}"
                for version, count in stats["by_version"].items()
            )
            print(f"by producing version: {breakdown}")
        rate = (
            "n/a (no lookups by this process)"
            if stats["hit_rate"] is None
            else f"{stats['hit_rate']:.1%}"
        )
        print(
            f"traffic (this process): {stats['hits']} hit(s), "
            f"{stats['misses']} miss(es), {stats['stores']} store(s); "
            f"hit rate {rate}"
        )
        print(
            f"current key version: code {stats['code_version']}, "
            f"schema {stats['cache_schema']}"
        )
        return 0
    if args.cache_command == "gc":
        counts = cache.gc()
        print(
            f"gc: kept {counts['kept']} entry(ies); removed "
            f"{counts['removed_stale']} stale, "
            f"{counts['removed_corrupt']} corrupt, "
            f"{counts['removed_tmp']} orphaned tmp file(s)"
        )
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_lint(args: argparse.Namespace) -> int:
    # imported lazily: the analysis package is pure stdlib and only
    # needed by this subcommand
    from repro.analysis import (
        DEFAULT_BASELINE_NAME,
        Baseline,
        format_json,
        format_text,
        get_rules,
        lint_paths,
    )

    if args.list_rules:
        for rule in get_rules():
            print(f"{rule.id}  {rule.title}")
            print(f"    why:  {rule.rationale}")
            print(f"    fix:  {rule.fix_hint}")
            scope = ", ".join(rule.packages) if rule.packages else "all files"
            print(f"    scope: {scope}")
        return 0

    baseline = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline = Baseline.load(args.baseline)
        elif Path(DEFAULT_BASELINE_NAME).is_file():
            baseline = Baseline.load(DEFAULT_BASELINE_NAME)

    report = lint_paths(
        args.paths,
        rule_ids=args.rule or None,
        baseline=baseline,
    )
    print(format_json(report) if args.fmt == "json" else format_text(report))
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.sim.bench import run_benchmarks, write_report

    report = run_benchmarks(quick=args.quick)
    report = write_report(report, args.out, stamp=args.stamp)
    eng = report["engine"]
    smoke = report["figure8_smoke"]
    print("engine throughput (events/sec):")
    print(f"  callbacks:     {eng['callback_events_per_sec']:>12,}")
    print(f"  processes:     {eng['process_events_per_sec']:>12,}")
    print(f"  cancel churn:  {eng['cancel_churn_events_per_sec']:>12,}")
    print(
        f"figure8 smoke:   {smoke['events_per_sec']:>12,} "
        f"({smoke['events']} simulated events in {smoke['wall_seconds']:.3f}s)"
    )
    fusion = report.get("rep_fusion")
    if fusion:
        print(
            f"rep fusion:      {fusion['fused_runs_per_sec']:>12,.1f} runs/sec fused "
            f"vs {fusion['scalar_runs_per_sec']:,.1f} scalar "
            f"({fusion['speedup']:.2f}x, R={fusion['runs']} byte-identical)"
        )
    for key, factor in report.get("speedup_vs_baseline", {}).items():
        print(f"  {factor:5.2f}x vs recorded baseline: {key}")
    n_prior = len(report.get("trajectory", []))
    print(
        f"report written to {args.out} "
        f"({n_prior} prior measurement(s) kept in its trajectory)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import JobService, create_http_server

    service = JobService(
        args.state_dir,
        workers=args.workers,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    service.start()
    server = create_http_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    # flushed immediately: supervisors (and the CI smoke job) read the
    # bound address from this line before the first request
    print(f"repro-omp job service on http://{host}:{port}", flush=True)
    print(
        f"state: {service.state_dir}  cache: {service.cache.cache_dir}  "
        f"workers: {service.workers}  pool jobs: {service.pool_jobs}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        service.stop()
    return 0


def _read_spec_file(path: str) -> dict:
    import json

    raw = sys.stdin.read() if path == "-" else Path(path).read_text()
    try:
        return json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ReproError(f"spec file {path!r} is not valid JSON: {exc}")


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServiceClient

    client = ServiceClient(args.url, client_id=args.client_id)
    payload = client.submit(_read_spec_file(args.spec), dry_run=args.dry_run)
    if not args.dry_run and args.wait:
        payload = client.wait(payload["job_id"], timeout=args.timeout)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not args.dry_run and args.wait and payload["state"] != "done":
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServiceClient

    client = ServiceClient(args.url)
    payload = (
        client.job(args.job_id)
        if args.job_id is not None
        else {"jobs": client.jobs()}
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    from repro.serve.client import ServiceClient

    text = ServiceClient(args.url).records(args.job_id, args.fmt)
    if args.out:
        # write_bytes keeps CSV \r\n terminators intact: CI cmp-s this
        # file against a local `repro-omp sweep --out` export
        Path(args.out).write_bytes(text.encode("utf-8"))
        print(f"wrote records to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "platform":
            return _cmd_platform(args.name)
        if args.command == "experiment":
            return _cmd_experiment(args.name, args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "gather":
            return _cmd_gather(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "fetch":
            return _cmd_fetch(args)
    except ShardRunComplete as exc:
        # not a failure: a --shard i/N worker finished its slice and
        # recorded its manifest; the gather step assembles the shards
        print(render_shard_summary(exc.summary))
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
