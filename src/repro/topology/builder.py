"""Programmatic topology construction.

:class:`TopologyBuilder` assembles a :class:`~repro.topology.hwthread.Machine`
from a regular description (sockets × NUMA-per-socket × cores-per-NUMA ×
SMT level) using the Linux CPU numbering convention described in
:mod:`repro.topology.hwthread`.  Irregular machines can be built by calling
:meth:`add_socket` with explicit shapes.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.distance import numa_distance_matrix
from repro.topology.hwthread import Core, HWThread, Machine, NUMADomain, Socket


class TopologyBuilder:
    """Incremental machine builder.

    Examples
    --------
    >>> m = TopologyBuilder("toy").add_sockets(2, numa_per_socket=1,
    ...                                        cores_per_numa=4, smt=2).build()
    >>> m.n_cores, m.n_cpus, m.n_numa
    (8, 16, 2)
    >>> m.cores[0].cpu_ids   # sibling numbering: second thread offset by n_cores
    (0, 8)
    """

    def __init__(self, name: str):
        self.name = name
        self._socket_shapes: list[tuple[int, int]] = []  # (numa_count, cores_per_numa)
        self._smt = 1

    def add_socket(self, numa_count: int, cores_per_numa: int) -> "TopologyBuilder":
        if numa_count <= 0 or cores_per_numa <= 0:
            raise TopologyError("socket must have >=1 NUMA domain and >=1 core")
        self._socket_shapes.append((numa_count, cores_per_numa))
        return self

    def add_sockets(
        self, count: int, numa_per_socket: int, cores_per_numa: int, smt: int = 1
    ) -> "TopologyBuilder":
        if count <= 0:
            raise TopologyError("need at least one socket")
        for _ in range(count):
            self.add_socket(numa_per_socket, cores_per_numa)
        return self.smt_level(smt)

    def smt_level(self, smt: int) -> "TopologyBuilder":
        if smt < 1:
            raise TopologyError(f"SMT level must be >= 1, got {smt}")
        self._smt = smt
        return self

    def build(self) -> Machine:
        if not self._socket_shapes:
            raise TopologyError("no sockets defined")
        smt = self._smt
        n_cores_total = sum(n * c for n, c in self._socket_shapes)

        cores: list[Core] = []
        numa_domains: list[NUMADomain] = []
        sockets: list[Socket] = []

        core_id = 0
        numa_id = 0
        for socket_id, (numa_count, cores_per_numa) in enumerate(self._socket_shapes):
            socket_numa_ids = []
            socket_core_ids = []
            for _ in range(numa_count):
                domain_core_ids = []
                for _ in range(cores_per_numa):
                    cpu_ids = tuple(
                        core_id + k * n_cores_total for k in range(smt)
                    )
                    cores.append(
                        Core(
                            core_id=core_id,
                            cpu_ids=cpu_ids,
                            numa_id=numa_id,
                            socket_id=socket_id,
                        )
                    )
                    domain_core_ids.append(core_id)
                    core_id += 1
                domain_cpu_ids = tuple(
                    cpu for c in domain_core_ids for cpu in cores[c].cpu_ids
                )
                numa_domains.append(
                    NUMADomain(
                        numa_id=numa_id,
                        socket_id=socket_id,
                        core_ids=tuple(domain_core_ids),
                        cpu_ids=domain_cpu_ids,
                    )
                )
                socket_numa_ids.append(numa_id)
                socket_core_ids.extend(domain_core_ids)
                numa_id += 1
            socket_cpu_ids = tuple(
                cpu for c in socket_core_ids for cpu in cores[c].cpu_ids
            )
            sockets.append(
                Socket(
                    socket_id=socket_id,
                    numa_ids=tuple(socket_numa_ids),
                    core_ids=tuple(socket_core_ids),
                    cpu_ids=socket_cpu_ids,
                )
            )

        # hw threads ordered by cpu id
        n_cpus = n_cores_total * smt
        hwthreads: list[HWThread | None] = [None] * n_cpus
        for core in cores:
            for smt_index, cpu in enumerate(core.cpu_ids):
                hwthreads[cpu] = HWThread(
                    cpu_id=cpu,
                    core_id=core.core_id,
                    smt_index=smt_index,
                    numa_id=core.numa_id,
                    socket_id=core.socket_id,
                )
        if any(t is None for t in hwthreads):
            raise TopologyError("internal error: cpu numbering left gaps")

        distance = numa_distance_matrix(
            [d.socket_id for d in numa_domains]
        )
        return Machine(
            name=self.name,
            hwthreads=tuple(hwthreads),  # type: ignore[arg-type]
            cores=tuple(cores),
            numa_domains=tuple(numa_domains),
            sockets=tuple(sockets),
            numa_distance=distance,
        )
