"""Topology presets for the two platforms of the paper (Section 4.1).

* **Dardel** (PDC, HPE Cray EX): each node has two AMD EPYC Zen2 ("Rome")
  2.25 GHz 64-core processors with two hardware threads per core — 128
  cores / 256 logical CPUs — organized as 8 NUMA domains of 16 cores
  (NPS4: each socket is a quad-NUMA domain).  Max boost 3.4 GHz.
* **Vera** (C3SE): each node has two Intel Xeon Gold 6130 2.1 GHz 16-core
  processors — 32 cores, one NUMA domain per socket.  SMT is not available
  to jobs ("Vera does not support SMT"), so the topology is built SMT-1.
  Max turbo 3.7 GHz.

Only the *topology* is built here; frequency, memory and noise parameters
live in :mod:`repro.platform`, which bundles everything into a
:class:`~repro.platform.Platform`.
"""

from __future__ import annotations

from repro.topology.builder import TopologyBuilder
from repro.topology.hwthread import Machine

__all__ = ["dardel_topology", "vera_topology"]


def dardel_topology() -> Machine:
    """2× AMD EPYC 7742-class: 8 NUMA × 16 cores, SMT-2, 256 CPUs."""
    return (
        TopologyBuilder("dardel")
        .add_sockets(2, numa_per_socket=4, cores_per_numa=16, smt=2)
        .build()
    )


def vera_topology() -> Machine:
    """2× Intel Xeon Gold 6130: 2 NUMA × 16 cores, SMT-1, 32 CPUs."""
    return (
        TopologyBuilder("vera")
        .add_sockets(2, numa_per_socket=1, cores_per_numa=16, smt=1)
        .build()
    )
