"""Topology value objects: hardware threads, cores, NUMA domains, sockets,
and the :class:`Machine` aggregate with its lookup tables.

CPU numbering follows the Linux convention used on both paper platforms:
logical CPUs ``0 .. ncores-1`` are the first hardware thread of each core,
and CPUs ``ncores .. 2*ncores-1`` are the SMT siblings in the same core
order (so core *c* owns CPUs ``{c, c + ncores}`` on an SMT-2 machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import TopologyError
from repro.topology.cpuset import CpuSet


@dataclass(frozen=True)
class HWThread:
    """One logical CPU (a hardware thread)."""

    cpu_id: int
    core_id: int
    smt_index: int  # 0 for the first hw thread of the core, 1 for its sibling
    numa_id: int
    socket_id: int


@dataclass(frozen=True)
class Core:
    """A physical core and its SMT siblings (``cpu_ids[0]`` is thread 0)."""

    core_id: int
    cpu_ids: tuple[int, ...]
    numa_id: int
    socket_id: int

    @property
    def smt_level(self) -> int:
        return len(self.cpu_ids)


@dataclass(frozen=True)
class NUMADomain:
    """A NUMA domain: a set of cores sharing a local memory controller."""

    numa_id: int
    socket_id: int
    core_ids: tuple[int, ...]
    cpu_ids: tuple[int, ...]


@dataclass(frozen=True)
class Socket:
    """A processor package."""

    socket_id: int
    numa_ids: tuple[int, ...]
    core_ids: tuple[int, ...]
    cpu_ids: tuple[int, ...]


@dataclass(frozen=True)
class Machine:
    """A complete shared-memory node.

    Construct via :class:`repro.topology.builder.TopologyBuilder` or the
    platform presets; the constructor validates global consistency.
    """

    name: str
    hwthreads: tuple[HWThread, ...]
    cores: tuple[Core, ...]
    numa_domains: tuple[NUMADomain, ...]
    sockets: tuple[Socket, ...]
    numa_distance: tuple[tuple[int, ...], ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if not self.hwthreads:
            raise TopologyError("machine has no hardware threads")
        ids = [t.cpu_id for t in self.hwthreads]
        if ids != list(range(len(ids))):
            raise TopologyError("hwthread cpu_ids must be 0..n-1 in order")
        core_ids = [c.core_id for c in self.cores]
        if core_ids != list(range(len(core_ids))):
            raise TopologyError("core ids must be 0..n-1 in order")
        for t in self.hwthreads:
            core = self.cores[t.core_id]
            if t.cpu_id not in core.cpu_ids:
                raise TopologyError(
                    f"cpu {t.cpu_id} claims core {t.core_id} which does not list it"
                )
            if (t.numa_id, t.socket_id) != (core.numa_id, core.socket_id):
                raise TopologyError(f"cpu {t.cpu_id} disagrees with its core's location")
        seen = set()
        for d in self.numa_domains:
            for c in d.core_ids:
                if c in seen:
                    raise TopologyError(f"core {c} in two NUMA domains")
                seen.add(c)
        if seen != set(core_ids):
            raise TopologyError("NUMA domains do not partition the cores")
        if self.numa_distance:
            n = len(self.numa_domains)
            if len(self.numa_distance) != n or any(len(r) != n for r in self.numa_distance):
                raise TopologyError("numa_distance must be n_domains x n_domains")

    # -- sizes ----------------------------------------------------------------

    @property
    def n_cpus(self) -> int:
        return len(self.hwthreads)

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    @property
    def n_numa(self) -> int:
        return len(self.numa_domains)

    @property
    def n_sockets(self) -> int:
        return len(self.sockets)

    @property
    def smt_level(self) -> int:
        return self.cores[0].smt_level

    # -- lookups ---------------------------------------------------------------

    def hwthread(self, cpu_id: int) -> HWThread:
        try:
            return self.hwthreads[cpu_id]
        except IndexError:
            raise TopologyError(f"no cpu {cpu_id} on {self.name}") from None

    def core_of(self, cpu_id: int) -> Core:
        return self.cores[self.hwthread(cpu_id).core_id]

    def numa_of(self, cpu_id: int) -> NUMADomain:
        return self.numa_domains[self.hwthread(cpu_id).numa_id]

    def socket_of(self, cpu_id: int) -> Socket:
        return self.sockets[self.hwthread(cpu_id).socket_id]

    def siblings_of(self, cpu_id: int) -> tuple[int, ...]:
        """The other hardware threads sharing this CPU's core."""
        core = self.core_of(cpu_id)
        return tuple(c for c in core.cpu_ids if c != cpu_id)

    def all_cpus(self) -> CpuSet:
        return CpuSet(range(self.n_cpus))

    def primary_cpus(self) -> CpuSet:
        """The first hardware thread of every core (the ST cpu pool)."""
        return CpuSet(core.cpu_ids[0] for core in self.cores)

    def distance(self, numa_a: int, numa_b: int) -> int:
        """ACPI SLIT-style distance between two NUMA domains (10 = local)."""
        if not self.numa_distance:
            return 10 if numa_a == numa_b else 20
        return self.numa_distance[numa_a][numa_b]

    # -- derived structure -------------------------------------------------------

    def numa_span(self, cpus: Sequence[int] | CpuSet) -> int:
        """Number of distinct NUMA domains touched by a CPU set."""
        return len({self.hwthread(c).numa_id for c in cpus})

    def socket_span(self, cpus: Sequence[int] | CpuSet) -> int:
        """Number of distinct sockets touched by a CPU set."""
        return len({self.hwthread(c).socket_id for c in cpus})

    def cores_spanned(self, cpus: Sequence[int] | CpuSet) -> int:
        return len({self.hwthread(c).core_id for c in cpus})

    def numa_ids_array(self) -> np.ndarray:
        """``numa_id`` per cpu, as an int array indexed by cpu id."""
        return np.asarray([t.numa_id for t in self.hwthreads], dtype=np.int64)

    def core_ids_array(self) -> np.ndarray:
        """``core_id`` per cpu, as an int array indexed by cpu id."""
        return np.asarray([t.core_id for t in self.hwthreads], dtype=np.int64)

    def summary(self) -> str:
        """Human-readable one-paragraph description (README/CLI use)."""
        return (
            f"{self.name}: {self.n_sockets} socket(s), {self.n_numa} NUMA "
            f"domain(s), {self.n_cores} cores, SMT-{self.smt_level}, "
            f"{self.n_cpus} hardware threads"
        )
