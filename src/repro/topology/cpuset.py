"""CPU sets: immutable sets of logical CPU ids with Linux-style parsing.

The kernel and tools like ``taskset``/``numactl`` describe CPU sets as
comma-separated ranges (``0-15,32,48-63``).  :class:`CpuSet` supports that
syntax plus the set algebra the binding and scheduling code needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import TopologyError

__all__ = ["CpuSet"]


class CpuSet:
    """An immutable, ordered set of non-negative CPU ids."""

    __slots__ = ("_cpus",)

    def __init__(self, cpus: Iterable[int] = ()):
        ids = sorted({int(c) for c in cpus})
        if ids and ids[0] < 0:
            raise TopologyError(f"negative cpu id in {ids[:5]}")
        object.__setattr__(self, "_cpus", tuple(ids))

    def __setattr__(self, name, value):
        raise AttributeError("CpuSet is immutable")

    # -- constructors -------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "CpuSet":
        """Parse ``"0-3,8,10-11"`` (whitespace tolerated, empty = empty set)."""
        text = text.strip()
        if not text:
            return cls()
        cpus: list[int] = []
        for token in text.split(","):
            token = token.strip()
            if not token:
                raise TopologyError(f"empty range token in cpu list {text!r}")
            if "-" in token:
                lo_s, _, hi_s = token.partition("-")
                try:
                    lo, hi = int(lo_s), int(hi_s)
                except ValueError as exc:
                    raise TopologyError(f"bad cpu range {token!r}") from exc
                if hi < lo:
                    raise TopologyError(f"descending cpu range {token!r}")
                cpus.extend(range(lo, hi + 1))
            else:
                try:
                    cpus.append(int(token))
                except ValueError as exc:
                    raise TopologyError(f"bad cpu id {token!r}") from exc
        return cls(cpus)

    @classmethod
    def range(cls, start: int, stop: int) -> "CpuSet":
        """CPUs in ``[start, stop)``."""
        return cls(range(start, stop))

    # -- set protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cpus)

    def __iter__(self) -> Iterator[int]:
        return iter(self._cpus)

    def __contains__(self, cpu: object) -> bool:
        return cpu in set(self._cpus)

    def __getitem__(self, i: int) -> int:
        return self._cpus[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CpuSet):
            return self._cpus == other._cpus
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._cpus)

    def __bool__(self) -> bool:
        return bool(self._cpus)

    # -- algebra -------------------------------------------------------------

    def union(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(set(self._cpus) | set(other._cpus))

    def intersection(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(set(self._cpus) & set(other._cpus))

    def difference(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(set(self._cpus) - set(other._cpus))

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def issubset(self, other: "CpuSet") -> bool:
        return set(self._cpus) <= set(other._cpus)

    def isdisjoint(self, other: "CpuSet") -> bool:
        return set(self._cpus).isdisjoint(other._cpus)

    # -- rendering -----------------------------------------------------------

    def as_tuple(self) -> tuple[int, ...]:
        return self._cpus

    def to_ranges(self) -> list[tuple[int, int]]:
        """Collapse into inclusive ``(lo, hi)`` runs."""
        runs: list[tuple[int, int]] = []
        for cpu in self._cpus:
            if runs and cpu == runs[-1][1] + 1:
                runs[-1] = (runs[-1][0], cpu)
            else:
                runs.append((cpu, cpu))
        return runs

    def __str__(self) -> str:
        parts = []
        for lo, hi in self.to_ranges():
            parts.append(str(lo) if lo == hi else f"{lo}-{hi}")
        return ",".join(parts)

    def __repr__(self) -> str:
        return f"CpuSet('{self}')"
