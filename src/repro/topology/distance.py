"""NUMA distance matrices.

Linux exposes inter-domain distances through the ACPI SLIT table
(``/sys/devices/system/node/node*/distance``).  By convention local access
is 10; same-socket remote domains are slightly above (the paper's Dardel
reports 12 within a socket), and cross-socket access is substantially more
expensive (32 on Dardel, 21 on typical dual-socket Xeons).
"""

from __future__ import annotations

from typing import Sequence

LOCAL_DISTANCE = 10
SAME_SOCKET_DISTANCE = 12
CROSS_SOCKET_DISTANCE = 32


def numa_distance_matrix(
    socket_of_domain: Sequence[int],
    local: int = LOCAL_DISTANCE,
    same_socket: int = SAME_SOCKET_DISTANCE,
    cross_socket: int = CROSS_SOCKET_DISTANCE,
) -> tuple[tuple[int, ...], ...]:
    """Build a SLIT-style symmetric distance matrix.

    Parameters
    ----------
    socket_of_domain:
        ``socket_of_domain[d]`` is the socket hosting NUMA domain ``d``.
    """
    n = len(socket_of_domain)
    rows = []
    for a in range(n):
        row = []
        for b in range(n):
            if a == b:
                row.append(local)
            elif socket_of_domain[a] == socket_of_domain[b]:
                row.append(same_socket)
            else:
                row.append(cross_socket)
        rows.append(tuple(row))
    return tuple(rows)
