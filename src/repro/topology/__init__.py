"""Hardware topology substrate.

Models a shared-memory node the way Linux exposes it: *hardware threads*
(logical CPUs with OS ids) grouped into *cores* (SMT siblings), cores into
*NUMA domains*, domains into *sockets*.  The two platforms of the paper are
provided as presets:

* :func:`~repro.topology.platforms.dardel_topology` — 2× AMD EPYC Zen2
  64-core, SMT-2, 8 NUMA domains of 16 cores, 256 hardware threads.
* :func:`~repro.topology.platforms.vera_topology` — 2× Intel Xeon Gold 6130
  16-core, 2 NUMA domains, 32 hardware threads (SMT disabled, as on Vera).
"""

from repro.topology.hwthread import Core, HWThread, Machine, NUMADomain, Socket
from repro.topology.builder import TopologyBuilder
from repro.topology.cpuset import CpuSet
from repro.topology.distance import numa_distance_matrix
from repro.topology.platforms import dardel_topology, vera_topology

__all__ = [
    "HWThread",
    "Core",
    "NUMADomain",
    "Socket",
    "Machine",
    "TopologyBuilder",
    "CpuSet",
    "numa_distance_matrix",
    "dardel_topology",
    "vera_topology",
]
