"""OS CPU-scheduler substrate.

Models the pieces of Linux CFS behaviour that the paper's unbound
(``OMP_PROC_BIND=false``) experiments exercise:

* **wakeup placement** — where newly woken OpenMP worker threads land
  (idle cores first, like ``select_idle_sibling``), including the
  imperfection that occasionally stacks two runnable threads on one CPU;
* **time sharing** — stacked threads alternate in scheduler slices, so a
  stacked thread's effective speed halves until the balancer fixes it;
* **load balancing** — stacking is resolved after a latency drawn from the
  balancer model (idle/periodic balance);
* **migrations** — unbound threads move between CPUs at a small rate, each
  move costing a cache/TLB refill penalty and, for memory-bound work,
  turning local pages into remote ones.

Bound (pinned) threads bypass all of this except per-fork wake IPIs, which
is precisely why pinning removes most run-to-run variability (Figure 4).
"""

from repro.sched.params import SchedParams
from repro.sched.runqueue import RunqueueState
from repro.sched.wakeup import WakeupPlacer
from repro.sched.balancer import BalancerModel, StackingEpisode
from repro.sched.migration import MigrationEvent, MigrationModel
from repro.sched.model import ForkOutcome, SchedulerModel

__all__ = [
    "SchedParams",
    "RunqueueState",
    "WakeupPlacer",
    "BalancerModel",
    "StackingEpisode",
    "MigrationModel",
    "MigrationEvent",
    "ForkOutcome",
    "SchedulerModel",
]
