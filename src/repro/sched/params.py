"""Scheduler model parameters.

Defaults approximate a stock CFS configuration (``sched_latency`` ≈ 24 ms
with many runnable tasks, ``migration_cost`` ≈ 0.5 ms) and the empirical
observation that unbound OpenMP teams occasionally see multi-millisecond
region delays when a worker is stacked behind another runnable task.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import ms, us


@dataclass(frozen=True)
class SchedParams:
    """Tunable constants of the scheduler model.

    Attributes
    ----------
    wake_ipi_cost:
        Latency to wake a remote idle CPU (IPI + idle-exit), per fork.
    wake_ipi_jitter:
        Uniform half-width around :attr:`wake_ipi_cost`.
    stacking_prob_per_thread:
        Probability that a given unbound worker is stacked on a CPU that
        already hosts a runnable thread at fork time, when idle CPUs still
        exist.  Captures ``select_idle_sibling`` search failures; grows
        with load internally.
    stacking_share:
        CPU share of each thread while two share a CPU (CFS: 0.5).
    balance_latency_median / balance_latency_sigma:
        Log-normal time until load balancing migrates one of the stacked
        threads away (periodic + idle balance combined).
    sched_delay_median / sched_delay_sigma / sched_delay_cap:
        Log-normal extra delay when a woken thread must wait for a CPU
        (no idle CPU found): roughly one scheduler period.
    migration_rate_unbound:
        Spontaneous migrations per thread per second for unbound threads
        (NUMA balancing, periodic balance).
    migration_penalty:
        Cache/TLB refill cost per migration, in seconds of lost work.
    fork_wake_fraction:
        Fraction of the team woken per fork that actually pays the wake
        path (others spin in the OpenMP runtime's thread pool).
    """

    wake_ipi_cost: float = us(3.0)
    wake_ipi_jitter: float = us(2.0)
    stacking_prob_per_thread: float = 0.0015
    stacking_share: float = 0.5
    balance_latency_median: float = ms(12.0)
    balance_latency_sigma: float = 0.8
    sched_delay_median: float = ms(3.0)
    sched_delay_sigma: float = 1.0
    sched_delay_cap: float = ms(80.0)
    migration_rate_unbound: float = 0.5
    migration_penalty: float = us(120.0)
    fork_wake_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.wake_ipi_cost < 0 or self.wake_ipi_jitter < 0:
            raise ConfigurationError("wake costs must be non-negative")
        if self.wake_ipi_jitter > self.wake_ipi_cost:
            raise ConfigurationError("wake jitter exceeds mean")
        if not 0.0 <= self.stacking_prob_per_thread <= 1.0:
            raise ConfigurationError("stacking probability outside [0, 1]")
        if not 0.0 < self.stacking_share <= 1.0:
            raise ConfigurationError("stacking share outside (0, 1]")
        if self.balance_latency_median <= 0 or self.sched_delay_median <= 0:
            raise ConfigurationError("latency medians must be positive")
        if self.balance_latency_sigma < 0 or self.sched_delay_sigma < 0:
            raise ConfigurationError("latency sigmas must be non-negative")
        if self.sched_delay_cap <= 0:
            raise ConfigurationError("delay cap must be positive")
        if self.migration_rate_unbound < 0 or self.migration_penalty < 0:
            raise ConfigurationError("migration parameters must be non-negative")
        if not 0.0 <= self.fork_wake_fraction <= 1.0:
            raise ConfigurationError("fork wake fraction outside [0, 1]")
