"""Load-balancer model: how long stacked threads stay stacked.

When wakeup placement stacks two runnable threads on one CPU, they
time-share (each receiving :attr:`SchedParams.stacking_share` of the CPU)
until periodic/idle load balancing migrates one away.  The reproduction
does not simulate individual balancer invocations; it samples the episode
duration from a log-normal whose median is the configured balance latency —
long enough to wreck a synchronization microbenchmark repetition, short
compared to a BabelStream run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sched.params import SchedParams


@dataclass(frozen=True)
class StackingEpisode:
    """One interval during which *thread* runs at reduced CPU share."""

    thread: int
    start: float
    duration: float
    share: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    def slowdown_factor(self) -> float:
        """Multiplier on execution time while the episode is active."""
        return 1.0 / self.share


class BalancerModel:
    """Samples stacking-episode durations."""

    def __init__(self, params: SchedParams):
        self.params = params

    def episode_duration(self, rng: np.random.Generator) -> float:
        p = self.params
        return float(
            rng.lognormal(mean=np.log(p.balance_latency_median), sigma=p.balance_latency_sigma)
        )

    def episodes_for_placement(
        self,
        cpus: list[int],
        start: float,
        rng: np.random.Generator,
    ) -> list[StackingEpisode]:
        """Episodes for every thread stacked at fork time.

        Threads sharing a CPU each get an episode starting at *start*; the
        episode ends when the balancer resolves the collision.  With more
        than two threads on a CPU the share shrinks accordingly.
        """
        episodes: list[StackingEpisode] = []
        seen: dict[int, list[int]] = {}
        for tid, cpu in enumerate(cpus):
            seen.setdefault(cpu, []).append(tid)
        for cpu, tids in seen.items():
            if len(tids) <= 1:
                continue
            share = max(self.params.stacking_share / (len(tids) - 1), 1.0 / len(tids))
            for tid in tids:
                episodes.append(
                    StackingEpisode(
                        thread=tid,
                        start=start,
                        duration=self.episode_duration(rng),
                        share=min(self.params.stacking_share, share * (len(tids) - 1)),
                    )
                )
        return episodes
