"""Per-CPU runqueue occupancy bookkeeping.

:class:`RunqueueState` is the scheduler model's view of "how many runnable
tasks does each logical CPU host".  It backs both wakeup placement (find an
idle CPU / idle core) and collision detection (who is stacked where).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.topology.hwthread import Machine


class RunqueueState:
    """Mutable runnable-task counts per logical CPU."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self._count = np.zeros(machine.n_cpus, dtype=np.int64)

    # -- mutation -----------------------------------------------------------

    def add(self, cpu: int, k: int = 1) -> None:
        if not 0 <= cpu < self.machine.n_cpus:
            raise SimulationError(f"no cpu {cpu}")
        self._count[cpu] += k

    def remove(self, cpu: int, k: int = 1) -> None:
        if self._count[cpu] < k:
            raise SimulationError(
                f"removing {k} tasks from cpu {cpu} holding {self._count[cpu]}"
            )
        self._count[cpu] -= k

    def move(self, src: int, dst: int) -> None:
        self.remove(src)
        self.add(dst)

    def reset(self) -> None:
        self._count[:] = 0

    # -- queries ------------------------------------------------------------

    def nr_running(self, cpu: int) -> int:
        return int(self._count[cpu])

    def counts(self) -> np.ndarray:
        """A copy of the per-CPU runnable counts."""
        return self._count.copy()

    def idle_cpus(self) -> list[int]:
        """CPUs with an empty runqueue."""
        return np.flatnonzero(self._count == 0).tolist()

    def idle_cores(self) -> list[int]:
        """Cores whose *every* hardware thread is idle."""
        out = []
        for core in self.machine.cores:
            if all(self._count[c] == 0 for c in core.cpu_ids):
                out.append(core.core_id)
        return out

    def stacked_cpus(self) -> list[int]:
        """CPUs hosting more than one runnable task."""
        return np.flatnonzero(self._count > 1).tolist()

    def total_running(self) -> int:
        return int(self._count.sum())

    def load_fraction(self) -> float:
        """Busy CPUs / all CPUs."""
        return float(np.count_nonzero(self._count)) / self.machine.n_cpus
