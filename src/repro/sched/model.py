"""Scheduler model facade used by the OpenMP runtime.

:class:`SchedulerModel` answers the runtime's questions at region forks:

* *bound team*: threads sit on their pinned CPUs; each fork pays only wake
  IPIs for the workers that actually slept.
* *unbound team*: wakeup placement may stack workers (→
  :class:`~repro.sched.balancer.StackingEpisode`), workers that found no
  idle CPU additionally pay a scheduling delay before first running, and
  long regions accumulate migrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.obs.tracer import Tracer
from repro.rng import RepStreams
from repro.sched.balancer import BalancerModel, StackingEpisode
from repro.sched.migration import MigrationEvent, MigrationModel
from repro.sched.params import SchedParams
from repro.sched.runqueue import RunqueueState
from repro.sched.wakeup import WakeupPlacer
from repro.topology.hwthread import Machine


@lru_cache(maxsize=4096)
def wakeup_path_cost(params: SchedParams, n_wakes: int) -> float:
    """Deterministic critical-path cost of *n_wakes* scheduler wakeups.

    Each wake of a sleeping thread traverses the kernel path a spinning
    waiter avoids: futex wake, IPI to the idle CPU, idle-state exit —
    the mean of the per-fork wake draw (:attr:`SchedParams.wake_ipi_cost`).
    Passive-wait-policy runtimes pay this on every signal that reaches a
    sleeping waiter (region fork, barrier release); see
    :class:`repro.omp.constructs.SyncCostModel`.

    A pure function of its (hashable, frozen) arguments, memoized because
    passive-profile sweeps evaluate it per construct instance.
    """
    if n_wakes <= 0:
        return 0.0
    return params.wake_ipi_cost * n_wakes


def wakeup_path_cost_fused(params: SchedParams, n_wakes: np.ndarray) -> np.ndarray:
    """Vectorized :func:`wakeup_path_cost` over an array of wake counts.

    Elementwise bit-identical to the scalar reference (the cost is a single
    multiply, clamped to zero for non-positive counts).
    """
    n = np.asarray(n_wakes)
    return np.where(n > 0, params.wake_ipi_cost * n, 0.0)


@dataclass(frozen=True)
class ForkOutcome:
    """Placement and wake costs of one parallel-region fork."""

    cpus: tuple[int, ...]
    wake_delays: np.ndarray = field(compare=False)
    episodes: tuple[StackingEpisode, ...] = ()

    @property
    def n_threads(self) -> int:
        return len(self.cpus)

    def stacked_threads(self) -> tuple[int, ...]:
        return tuple(sorted({e.thread for e in self.episodes}))


def trace_fork(tracer: Tracer, outcome: ForkOutcome, t0: float) -> None:
    """Emit one fork's scheduler-wakeup picture onto *tracer* at *t0*.

    Each worker whose wake delay is non-zero gets a ``wakeup`` span on its
    thread track (futex wake + IPI + idle exit, plus any runqueue wait for
    stacked unbound threads); stacking episodes additionally get a
    ``stacked`` span covering their reduced-CPU-share interval.  A cold
    annotation helper: called once per fork, guarded on entry.
    """
    if not tracer.enabled:
        return
    delays = outcome.wake_delays
    for i in range(1, outcome.n_threads):
        d = float(delays[i])
        if d > 0.0:
            tracer.span(
                i, "wakeup", t0, t0 + d, cat="sched",
                args={"cpu": int(outcome.cpus[i])},
            )
    for ep in outcome.episodes:
        # episode windows are already absolute (sampled at fork time)
        tracer.span(
            ep.thread, "stacked", ep.start, ep.end, cat="sched",
            args={"share": ep.share},
        )


class SchedulerModel:
    """Fork placement + wake-delay + migration sampling."""

    def __init__(self, machine: Machine, params: SchedParams | None = None):
        self.machine = machine
        self.params = params if params is not None else SchedParams()
        self.placer = WakeupPlacer(machine, self.params)
        self.balancer = BalancerModel(self.params)
        self.migrations = MigrationModel(machine, self.params)

    # -- forks ---------------------------------------------------------------

    def _wake_delays(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Per-thread wake cost; thread 0 (master) never pays it."""
        p = self.params
        delays = np.zeros(n)
        if n > 1:
            woken = rng.random(n - 1) < p.fork_wake_fraction
            ipis = rng.uniform(
                p.wake_ipi_cost - p.wake_ipi_jitter,
                p.wake_ipi_cost + p.wake_ipi_jitter,
                size=n - 1,
            )
            delays[1:] = np.where(woken, ipis, 0.0)
        return delays

    def fork_bound(
        self, team_cpus: list[int], rng: np.random.Generator
    ) -> ForkOutcome:
        """Fork with threads pinned to *team_cpus* (thread 0 = master)."""
        return ForkOutcome(
            cpus=tuple(int(c) for c in team_cpus),
            wake_delays=self._wake_delays(len(team_cpus), rng),
        )

    def fork_bound_fused(
        self, team_cpus: list[int], streams: "RepStreams"
    ) -> np.ndarray:
        """Wake delays of ``R`` bound forks as one ``(R, n)`` array.

        Row ``r`` is bit-identical to
        ``self.fork_bound(team_cpus, streams.generators[r]).wake_delays``:
        both consume one ``random(n-1)`` block then one ``uniform(n-1)``
        block from the same per-run stream.  The vectorized counterpart of
        :meth:`fork_bound` for the fused rep-axis engine (the scalar form
        stays the reference).
        """
        p = self.params
        n = len(team_cpus)
        delays = np.zeros((streams.n_reps, n))
        if n > 1:
            woken = streams.random(n - 1) < p.fork_wake_fraction
            ipis = streams.uniform(
                p.wake_ipi_cost - p.wake_ipi_jitter,
                p.wake_ipi_cost + p.wake_ipi_jitter,
                size=n - 1,
            )
            delays[:, 1:] = np.where(woken, ipis, 0.0)
        return delays

    def fork_unbound(
        self,
        n_threads: int,
        master_cpu: int,
        t_start: float,
        rng: np.random.Generator,
        external_busy: list[int] | None = None,
    ) -> ForkOutcome:
        """Fork with OS-chosen placement (``OMP_PROC_BIND=false``)."""
        cpus = self.placer.place_team(
            n_threads, master_cpu, rng, external_busy=external_busy
        )
        delays = self._wake_delays(n_threads, rng)
        episodes = tuple(self.balancer.episodes_for_placement(cpus, t_start, rng))
        # threads that landed on an occupied CPU also wait for a slice
        p = self.params
        for ep in episodes:
            if ep.thread == 0:
                continue  # master was already running
            extra = min(
                p.sched_delay_cap,
                float(
                    rng.lognormal(np.log(p.sched_delay_median), p.sched_delay_sigma)
                ),
            )
            delays[ep.thread] += extra
        return ForkOutcome(cpus=tuple(cpus), wake_delays=delays, episodes=episodes)

    # -- long-region churn -----------------------------------------------------

    def sample_migrations(
        self,
        cpus: list[int],
        t_start: float,
        t_end: float,
        rng: np.random.Generator,
    ) -> list[MigrationEvent]:
        """Unbound-thread migrations over a long region (e.g. a stream kernel)."""
        return self.migrations.sample(cpus, t_start, t_end, rng)

    def runqueue_for(self, cpus: list[int]) -> RunqueueState:
        """A runqueue view with the given team marked runnable (for tests)."""
        rq = RunqueueState(self.machine)
        for c in cpus:
            rq.add(c)
        return rq
