"""Wakeup placement: where unbound worker threads land.

Mirrors the shape of CFS ``select_task_rq_fair``/``select_idle_sibling``:

1. prefer an idle *core* near the waker (same NUMA domain, then same
   socket, then anywhere), taking its first idle hardware thread;
2. else any idle hardware thread (an SMT sibling of a busy core);
3. else the least-loaded CPU (stacking — the thread will time-share).

A small per-thread stacking probability short-circuits the search even when
idle CPUs exist, modelling the limited search depth of the real scheduler
under fork storms — this is what occasionally hands an unbound OpenMP team
a stacked worker and a multi-millisecond region.
"""

from __future__ import annotations

import numpy as np

from repro.sched.params import SchedParams
from repro.sched.runqueue import RunqueueState
from repro.topology.hwthread import Machine


class WakeupPlacer:
    """Places woken threads onto CPUs given current runqueue state."""

    def __init__(self, machine: Machine, params: SchedParams):
        self.machine = machine
        self.params = params

    def _candidate_order(self, waker_cpu: int) -> list[list[int]]:
        """CPU pools in preference order relative to the waker's position."""
        m = self.machine
        waker = m.hwthread(waker_cpu)
        same_numa = [c for c in m.numa_domains[waker.numa_id].cpu_ids]
        same_socket = [
            c for c in m.sockets[waker.socket_id].cpu_ids if c not in set(same_numa)
        ]
        seen = set(same_numa) | set(same_socket)
        rest = [c for c in range(m.n_cpus) if c not in seen]
        return [same_numa, same_socket, rest]

    def place_one(
        self,
        waker_cpu: int,
        rq: RunqueueState,
        rng: np.random.Generator,
        allow_stacking_shortcut: bool = True,
    ) -> int:
        """Pick a CPU for one woken thread; does **not** update *rq*."""
        m = self.machine
        p = self.params
        # imperfect search: sometimes the scheduler settles for a loaded cpu
        load = rq.load_fraction()
        stacking_prob = min(1.0, p.stacking_prob_per_thread * (1.0 + 8.0 * load))
        if allow_stacking_shortcut and rng.random() < stacking_prob:
            counts = rq.counts()
            return int(rng.integers(0, m.n_cpus))

        pools = self._candidate_order(waker_cpu)
        counts = rq.counts()
        # pass 1: idle core (no hw thread busy) in preference order
        for pool in pools:
            idle_core_cpus = [
                c
                for c in pool
                if all(counts[s] == 0 for s in m.core_of(c).cpu_ids)
                and m.hwthread(c).smt_index == 0
            ]
            if idle_core_cpus:
                return int(rng.choice(idle_core_cpus))
        # pass 2: any idle hw thread
        for pool in pools:
            idle = [c for c in pool if counts[c] == 0]
            if idle:
                return int(rng.choice(idle))
        # pass 3: least loaded cpu, ties broken randomly
        least = counts.min()
        candidates = np.flatnonzero(counts == least)
        return int(rng.choice(candidates))

    def place_team(
        self,
        n_threads: int,
        master_cpu: int,
        rng: np.random.Generator,
        external_busy: list[int] | None = None,
    ) -> list[int]:
        """Place an unbound team of *n_threads* (thread 0 = the master).

        The master stays where it is; workers are woken one by one, each
        placement updating the runqueue view (fork happens sequentially in
        the runtime).  *external_busy* marks CPUs busy with other work.
        """
        rq = RunqueueState(self.machine)
        for cpu in external_busy or ():
            rq.add(cpu)
        rq.add(master_cpu)
        cpus = [master_cpu]
        for _ in range(1, n_threads):
            cpu = self.place_one(master_cpu, rq, rng)
            rq.add(cpu)
            cpus.append(cpu)
        return cpus
