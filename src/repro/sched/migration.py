"""Spontaneous migrations of unbound threads.

NUMA balancing and periodic load balancing move long-running unbound
threads between CPUs at a low rate.  Each migration costs a cache/TLB
refill and — crucially for BabelStream — can move a thread away from the
NUMA domain where its first-touch pages live, turning local streams into
interconnect traffic.  Pinned threads never migrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sched.params import SchedParams
from repro.topology.hwthread import Machine


@dataclass(frozen=True)
class MigrationEvent:
    """Thread *thread* moves from *src_cpu* to *dst_cpu* at time *t*."""

    t: float
    thread: int
    src_cpu: int
    dst_cpu: int
    penalty: float


class MigrationModel:
    """Samples migration events for unbound threads over a window."""

    def __init__(self, machine: Machine, params: SchedParams):
        self.machine = machine
        self.params = params

    def sample(
        self,
        cpus: list[int],
        t_start: float,
        t_end: float,
        rng: np.random.Generator,
    ) -> list[MigrationEvent]:
        """Migration events for a team currently placed on *cpus*.

        Destinations prefer idle CPUs outside the team (the balancer moves
        threads toward idleness); each event carries the refill penalty.
        Events are returned sorted by time; the caller is responsible for
        applying placement changes in order.
        """
        p = self.params
        horizon = t_end - t_start
        if horizon <= 0 or p.migration_rate_unbound == 0:
            return []
        team = set(cpus)
        outside = [c for c in range(self.machine.n_cpus) if c not in team]
        events: list[MigrationEvent] = []
        for tid, cpu in enumerate(cpus):
            n = int(rng.poisson(p.migration_rate_unbound * horizon))
            if n == 0:
                continue
            times = np.sort(t_start + rng.random(n) * horizon)
            for t in times:
                dst_pool = outside if outside else list(range(self.machine.n_cpus))
                dst = int(rng.choice(dst_pool))
                events.append(
                    MigrationEvent(
                        t=float(t),
                        thread=tid,
                        src_cpu=cpu,
                        dst_cpu=dst,
                        penalty=p.migration_penalty,
                    )
                )
                cpu = dst
        events.sort(key=lambda e: e.t)
        return events

    def expected_migrations(self, n_threads: int, duration: float) -> float:
        """Mean number of migrations for a team over *duration* seconds."""
        return n_threads * self.params.migration_rate_unbound * max(0.0, duration)
