"""Deterministic named random-number streams.

Every stochastic component of the simulator (noise sources, the OS
scheduler's placement decisions, frequency dips, ...) draws from its own
named stream derived from a single master seed.  This gives three properties
the reproduction needs:

* **Exact reproducibility** — a master seed fully determines every figure.
* **Stream independence** — adding draws to one subsystem does not perturb
  another subsystem's sequence, so experiments stay comparable across code
  changes that touch unrelated models.
* **Run/repetition separation** — the harness derives per-run and
  per-repetition children so "run 7" is the same realization whether it is
  simulated alone or as part of a sweep.

Streams are identified by a *path* of hashable components, e.g.
``("noise", "daemon", run=3)``.  The path is hashed (SHA-256) together with
the master seed into a 128-bit seed for :class:`numpy.random.PCG64`.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

__all__ = ["RepStreams", "RngFactory", "derive_seed"]


def _encode_component(component: Any) -> bytes:
    """Encode a single path component into bytes for hashing.

    Accepts ints, strings, bools, None and floats (floats are encoded via
    ``repr`` which is exact for Python floats).  Tuples/lists are encoded
    recursively.  Anything else is rejected to avoid silently unstable
    hashes (e.g. objects whose ``repr`` includes a memory address).
    """
    if isinstance(component, bool):  # check before int: bool is an int
        return b"b" + (b"1" if component else b"0")
    if isinstance(component, int):
        return b"i" + str(component).encode()
    if isinstance(component, float):
        return b"f" + repr(component).encode()
    if isinstance(component, str):
        return b"s" + component.encode("utf-8")
    if component is None:
        return b"n"
    if isinstance(component, (tuple, list)):
        inner = b"|".join(_encode_component(c) for c in component)
        return b"t(" + inner + b")"
    raise TypeError(
        f"rng stream path components must be str/int/float/bool/None/tuple, "
        f"got {type(component).__name__}"
    )


def derive_seed(master_seed: int, *path: Any) -> int:
    """Derive a 128-bit integer seed from *master_seed* and a stream path."""
    h = hashlib.sha256()
    h.update(str(int(master_seed)).encode())
    for component in path:
        h.update(b"/")
        h.update(_encode_component(component))
    return int.from_bytes(h.digest()[:16], "little")


class RngFactory:
    """Factory producing independent, reproducible RNG streams.

    Parameters
    ----------
    master_seed:
        The experiment-level seed.  Two factories with the same master seed
        produce identical streams for identical paths.
    prefix:
        Optional path prefix applied to every stream created by this
        factory; used by :meth:`child` to scope subsystems.

    Examples
    --------
    >>> f = RngFactory(42)
    >>> a = f.stream("noise", 0)
    >>> b = f.stream("noise", 0)
    >>> float(a.random()) == float(b.random())
    True
    >>> c = f.stream("noise", 1)
    >>> float(f.stream("noise", 0).random()) != float(c.random())
    True
    """

    __slots__ = ("master_seed", "prefix")

    def __init__(self, master_seed: int, prefix: tuple[Any, ...] = ()):
        self.master_seed = int(master_seed)
        self.prefix = tuple(prefix)

    def stream(self, *path: Any) -> np.random.Generator:
        """Return a fresh :class:`numpy.random.Generator` for *path*.

        Calling this twice with the same path returns two generators that
        produce identical sequences (they are distinct objects, so consuming
        one does not affect the other).
        """
        seed = derive_seed(self.master_seed, *self.prefix, *path)
        return np.random.Generator(np.random.PCG64(seed))

    def child(self, *path: Any) -> "RngFactory":
        """Return a factory whose streams are scoped under *path*."""
        return RngFactory(self.master_seed, self.prefix + tuple(path))

    def rep_streams(self, n_reps: int, *path: Any) -> "RepStreams":
        """Fan one named stream out over the rep (run) axis.

        Row ``r`` of the returned :class:`RepStreams` is exactly the
        generator ``self.child("run", r).stream(*path)`` — i.e. the stream
        the scalar engine hands run ``r`` for this path — so batched draws
        are bit-equal per row to the scalar per-run sequences.
        """
        return RepStreams(
            tuple(self.stream("run", r, *path) for r in range(int(n_reps)))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(master_seed={self.master_seed}, prefix={self.prefix!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RngFactory):
            return NotImplemented
        return (self.master_seed, self.prefix) == (other.master_seed, other.prefix)

    def __hash__(self) -> int:
        return hash((self.master_seed, self.prefix))


class RepStreams:
    """``R`` parallel generators over the rep axis, drawn as ``(R, ...)`` arrays.

    Each row holds its own :class:`numpy.random.Generator`, so a batched
    draw of ``size=k`` from row ``r`` produces exactly the same floats as
    ``k`` sequential scalar draws from the scalar engine's stream for run
    ``r`` (NumPy's distribution fills are sequential per generator; the
    equivalence is locked by ``tests/test_rng.py``).  Consuming a draw
    advances every row by the same number of variates, mirroring the
    scalar engine consuming one variate per rep.
    """

    __slots__ = ("generators",)

    def __init__(self, generators: tuple[np.random.Generator, ...]):
        self.generators = tuple(generators)

    @property
    def n_reps(self) -> int:
        return len(self.generators)

    def _stack(self, rows: list) -> np.ndarray:
        return np.asarray(rows, dtype=np.float64)

    def random(self, size: int | None = None) -> np.ndarray:
        return self._stack([g.random(size) for g in self.generators])

    def uniform(
        self, low: float, high: float, size: int | None = None
    ) -> np.ndarray:
        return self._stack(
            [g.uniform(low, high, size=size) for g in self.generators]
        )

    def lognormal(
        self, mean: float, sigma: float, size: int | None = None
    ) -> np.ndarray:
        return self._stack(
            [g.lognormal(mean=mean, sigma=sigma, size=size) for g in self.generators]
        )

    def normal(
        self, loc: float, scale: float, size: int | None = None
    ) -> np.ndarray:
        return self._stack(
            [g.normal(loc=loc, scale=scale, size=size) for g in self.generators]
        )
